"""Ablation A1 — broadcast variables vs per-task closure shipping (§IV-C).

The paper: naive per-task shipping of shared data makes the master's
bandwidth the bottleneck; broadcast variables send it once per node.
We run YAFIM both ways and compare the modeled network volume and the
replayed time on the paper cluster.
"""

from __future__ import annotations

from conftest import write_report
from repro.bench.harness import replay_yafim, run_comparison
from repro.bench.reporting import format_table
from repro.cluster import PAPER_CLUSTER
from repro.datasets import mushroom_like


def _run(use_broadcast: bool):
    # Small DFS blocks put the run in the regime the paper worries about:
    # many more tasks than nodes, where per-task shipping multiplies the
    # master's outbound volume.
    return run_comparison(
        mushroom_like(scale=0.15, seed=7),
        0.35,
        num_partitions=8,
        dfs_block_size=2 * 1024,
        yafim_kwargs={"use_broadcast": use_broadcast},
    ).yafim


def test_ablation_broadcast(benchmark):
    with_bc, without_bc = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    assert with_bc.itemsets == without_bc.itemsets

    bc_bytes = sum(it.broadcast_bytes * PAPER_CLUSTER.nodes for it in with_bc.iterations)
    closure_bytes = sum(it.closure_bytes for it in without_bc.iterations)
    wire_bc = PAPER_CLUSTER.network_seconds(bc_bytes)
    wire_closure = PAPER_CLUSTER.network_seconds(closure_bytes)
    t_bc = replay_yafim(with_bc, PAPER_CLUSTER)
    t_closure = replay_yafim(without_bc, PAPER_CLUSTER)

    table = format_table(
        ["variant", "candidate bytes on wire", "wire time (s)", "replayed time (s)"],
        [
            ("broadcast (paper)", bc_bytes, wire_bc, t_bc),
            ("per-task closures", closure_bytes, wire_closure, t_closure),
        ],
        title="Ablation A1 — broadcast hash tree vs per-task shipping",
    )
    write_report("ablation_broadcast", table)
    benchmark.extra_info["wire_bytes_ratio"] = round(closure_bytes / max(bc_bytes, 1), 2)

    # The deterministic claim (§IV-C): shipping once per node moves fewer
    # bytes — and therefore less wire time — than shipping once per task.
    # (Total replayed times additionally contain measured task durations,
    # whose run-to-run jitter can exceed the wire-time gap at this scale,
    # so the assertion targets the modeled component.)
    assert closure_bytes > 0 and bc_bytes > 0
    assert closure_bytes > bc_bytes, (
        "with tasks >> nodes, per-task shipping must move more bytes"
    )
    assert wire_closure > wire_bc
