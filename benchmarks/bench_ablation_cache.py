"""Ablation A2 — cached transaction RDD vs re-reading every pass (§IV-B).

The paper's core claim: loading transactions into memory once and
re-scanning the cached RDD each iteration is what removes the
per-iteration I/O of MapReduce.  Switching ``cache_transactions`` off
makes every pass re-read and re-parse the DFS file, and the per-pass DFS
read counters prove it.
"""

from __future__ import annotations

from conftest import write_report
from repro.bench.harness import run_comparison
from repro.bench.reporting import format_table
from repro.datasets import mushroom_like


def _run(cache: bool):
    return run_comparison(
        mushroom_like(scale=0.08, seed=7),
        0.35,
        num_partitions=8,
        dfs_block_size=8 * 1024,
        yafim_kwargs={"cache_transactions": cache},
    ).yafim


def test_ablation_cache(benchmark):
    cached, uncached = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    assert cached.itemsets == uncached.itemsets

    rows = []
    for it_c, it_u in zip(cached.iterations, uncached.iterations):
        rows.append(
            (it_c.k, it_c.hdfs_read_bytes, it_u.hdfs_read_bytes, it_c.seconds, it_u.seconds)
        )
    table = format_table(
        ["pass", "DFS read cached (B)", "DFS read uncached (B)", "cached (s)", "uncached (s)"],
        rows,
        title="Ablation A2 — transaction RDD caching",
    )
    write_report("ablation_cache", table)

    # cached: only pass 1 touches the DFS; uncached: every pass re-reads
    assert cached.iterations[0].hdfs_read_bytes > 0
    assert all(it.hdfs_read_bytes == 0 for it in cached.iterations[1:])
    assert all(it.hdfs_read_bytes > 0 for it in uncached.iterations)
    total_reread = sum(it.hdfs_read_bytes for it in uncached.iterations)
    benchmark.extra_info["reread_amplification"] = round(
        total_reread / cached.iterations[0].hdfs_read_bytes, 1
    )
    assert total_reread >= len(uncached.iterations) * cached.iterations[0].hdfs_read_bytes * 0.9
    assert uncached.total_seconds > cached.total_seconds
