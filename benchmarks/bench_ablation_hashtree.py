"""Ablation A3 — hash tree vs flat candidate-list scanning (§IV-A).

The hash tree bounds ``subset(C_k, t)`` to the slots covered by the
transaction; a flat list checks every candidate against every
transaction.  The gap shows on the candidate-heavy sparse dataset
(T10I4-style at 0.25% support, where |C2| is in the tens of thousands).
"""

from __future__ import annotations

from conftest import write_report
from repro.bench.harness import run_comparison
from repro.bench.reporting import format_table
from repro.datasets import t10i4d100k_like


def _run(use_tree: bool):
    return run_comparison(
        t10i4d100k_like(scale=0.006, seed=7),
        0.0025,
        num_partitions=8,
        max_length=3,
        yafim_kwargs={"use_hash_tree": use_tree},
    ).yafim


def test_ablation_hashtree(benchmark):
    tree, flat = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    assert tree.itemsets == flat.itemsets

    rows = [
        (it_t.k, it_t.n_candidates, it_t.seconds, it_f.seconds,
         it_f.seconds / max(it_t.seconds, 1e-9))
        for it_t, it_f in zip(tree.iterations, flat.iterations)
    ]
    table = format_table(
        ["pass", "candidates", "hash tree (s)", "flat list (s)", "tree speedup"],
        rows,
        title="Ablation A3 — candidate matching data structure",
    )
    write_report("ablation_hashtree", table)
    benchmark.extra_info["total_tree_speedup"] = round(
        flat.total_seconds / tree.total_seconds, 2
    )

    # the tree must win overall, and decisively on the candidate-heavy pass
    assert tree.total_seconds < flat.total_seconds
    heavy = max(tree.iterations, key=lambda it: it.n_candidates)
    flat_heavy = next(it for it in flat.iterations if it.k == heavy.k)
    assert flat_heavy.seconds > 2 * heavy.seconds, (
        f"expected >2x tree win on pass {heavy.k} "
        f"({heavy.n_candidates} candidates)"
    )
