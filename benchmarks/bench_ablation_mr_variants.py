"""Ablation A4 — SPC vs FPC vs DPC job-combining strategies (related work).

Lin et al.'s variants trade MapReduce job count against speculative
candidate volume.  All three must produce identical itemsets; FPC/DPC run
fewer jobs (fewer startups in replay) but count more candidates per job.
"""

from __future__ import annotations

from conftest import write_report
from repro.bench.harness import replay_mr
from repro.bench.reporting import format_table
from repro.cluster import PAPER_CLUSTER
from repro.core import DPC, FPC, SPC
from repro.datasets import mushroom_like
from repro.hdfs import MiniDfs
from repro.mapreduce import JobRunner


def _run_variants():
    ds = mushroom_like(scale=0.06, seed=7)
    out = {}
    with MiniDfs(n_datanodes=3, block_size=16 * 1024, replication=2) as dfs:
        ds.write_to_dfs(dfs, "/t.txt")
        for label, factory in (
            ("SPC", lambda r: SPC(r)),
            ("FPC(3)", lambda r: FPC(r, passes=3)),
            ("DPC", lambda r: DPC(r, candidate_budget=20_000)),
        ):
            runner = JobRunner(dfs, backend="serial")
            result = factory(runner).run("/t.txt", 0.35)
            out[label] = (result, runner.jobs_run)
    return out


def test_ablation_mr_variants(benchmark):
    results = benchmark.pedantic(_run_variants, rounds=1, iterations=1)

    spc_itemsets = results["SPC"][0].itemsets
    rows = []
    for label, (res, jobs) in results.items():
        assert res.itemsets == spc_itemsets, f"{label} output differs"
        candidates = sum(it.n_candidates for it in res.iterations if it.n_candidates > 0)
        rows.append(
            (label, jobs, candidates, res.total_seconds, replay_mr(res, PAPER_CLUSTER))
        )
    table = format_table(
        ["variant", "MR jobs", "candidates counted", "measured (s)", "replayed (s)"],
        rows,
        title="Ablation A4 — MapReduce level-combining strategies",
    )
    write_report("ablation_mr_variants", table)

    jobs = {label: j for label, (_r, j) in results.items()}
    cands = {
        label: sum(it.n_candidates for it in r.iterations if it.n_candidates > 0)
        for label, (r, _j) in results.items()
    }
    # combining levels must reduce job count and increase candidate volume
    assert jobs["FPC(3)"] < jobs["SPC"]
    assert cands["FPC(3)"] >= cands["SPC"]
    # fewer jobs -> fewer startup penalties in the replay
    replayed = {label: replay_mr(r, PAPER_CLUSTER) for label, (r, _j) in results.items()}
    assert replayed["FPC(3)"] < replayed["SPC"]
    benchmark.extra_info["jobs"] = jobs
