"""Ablation A7 — one-phase vs k-phase MapReduce FIM (related work §III).

The paper: one-phase algorithms "generate many redundant itemsets during
processing, which may lead memory overflow and too much execution time".
Quantified here: identical outputs, but the single-job subset-enumeration
approach counts and shuffles far more than level-wise SPC does across
all its jobs combined — the redundancy grows with transaction width.
"""

from __future__ import annotations

from conftest import write_report
from repro.bench.reporting import format_table
from repro.core import SPC
from repro.core.one_phase import OnePhaseMR
from repro.datasets import medical_cases
from repro.hdfs import MiniDfs
from repro.mapreduce import JobRunner

CAP = 3  # lattice depth both systems mine


def _run_both():
    ds = medical_cases(n_cases=1200, seed=7)
    with MiniDfs(n_datanodes=3, block_size=8 * 1024, replication=2) as dfs:
        ds.write_to_dfs(dfs, "/t.txt")
        one_runner = JobRunner(dfs)
        one = OnePhaseMR(one_runner, max_length=CAP).run("/t.txt", 0.05)
        spc_runner = JobRunner(dfs)
        spc = SPC(spc_runner).run("/t.txt", 0.05, max_length=CAP)
    return one, spc, one_runner.jobs_run, spc_runner.jobs_run


def test_ablation_one_phase(benchmark):
    one, spc, one_jobs, spc_jobs = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    assert one.itemsets == spc.itemsets, "both must mine the same family"

    spc_counted = sum(it.n_candidates for it in spc.iterations if it.n_candidates > 0)
    spc_shuffle = sum(it.shuffle_bytes for it in spc.iterations)
    one_counted = one.iterations[0].n_candidates
    one_shuffle = one.iterations[0].shuffle_bytes
    rows = [
        ("one-phase", one_jobs, one_counted, one_shuffle, one.total_seconds),
        ("SPC (k-phase)", spc_jobs, spc_counted, spc_shuffle, spc.total_seconds),
    ]
    table = format_table(
        ["algorithm", "MR jobs", "itemsets counted", "shuffle bytes", "measured (s)"],
        rows,
        title=f"Ablation A7 — one-phase vs k-phase (depth <= {CAP})",
    )
    write_report("ablation_one_phase", table)
    benchmark.extra_info["count_blowup"] = round(one_counted / max(spc_counted, 1), 1)

    # the trade: one job instead of k, paid for with redundant counting
    assert one_jobs < spc_jobs
    assert one_counted > 2 * spc_counted
    assert one_shuffle > spc_shuffle
