"""Ablation A8 — R-Apriori's candidate-free second pass (YAFIM follow-up).

Rathee et al. (2015) showed YAFIM's pass 2 dominates on sparse datasets:
with m frequent items, apriori_gen materialises C(m, 2) pair candidates
and a hash tree over them, while counting pairs needs no candidates at
all.  We run YAFIM and R-Apriori on the sparse Quest-style dataset and
compare pass-2 time and broadcast volume — later passes are identical by
construction.
"""

from __future__ import annotations

from conftest import write_report
from repro.bench.reporting import format_table
from repro.core.rapriori import RApriori
from repro.core.yafim import Yafim
from repro.datasets import t10i4d100k_like
from repro.engine import Context


def _run(miner_cls):
    ds = t10i4d100k_like(scale=0.01, seed=7)
    with Context(backend="serial") as ctx:
        return miner_cls(ctx, num_partitions=8).run(ds.transactions, 0.0025, max_length=3)


def test_ablation_rapriori(benchmark):
    yafim, rapriori = benchmark.pedantic(
        lambda: (_run(Yafim), _run(RApriori)), rounds=1, iterations=1
    )
    assert yafim.itemsets == rapriori.itemsets

    rows = []
    for res in (yafim, rapriori):
        p2 = next(it for it in res.iterations if it.k == 2)
        rows.append(
            (res.algorithm, p2.n_candidates, p2.broadcast_bytes, p2.seconds, res.total_seconds)
        )
    table = format_table(
        ["miner", "pass-2 candidates", "pass-2 broadcast (B)", "pass-2 (s)", "total (s)"],
        rows,
        title="Ablation A8 — R-Apriori candidate-free pass 2 [T10I4, sup=0.25%]",
    )
    write_report("ablation_rapriori", table)

    ya_p2 = next(it for it in yafim.iterations if it.k == 2)
    ra_p2 = next(it for it in rapriori.iterations if it.k == 2)
    benchmark.extra_info["pass2_speedup"] = round(ya_p2.seconds / ra_p2.seconds, 2)
    # R-Apriori ships only the frequent-item set, not a pair hash tree
    assert ra_p2.broadcast_bytes < ya_p2.broadcast_bytes / 5
    # and pass 2 gets faster (no tree construction, no tree walks)
    assert ra_p2.seconds < ya_p2.seconds
