"""Ablation A5 — sensitivity to the support threshold.

Not a paper figure, but the natural robustness check behind every number
in section V: the paper picked one threshold per dataset; this sweep
shows how YAFIM's work grows as the threshold drops (more candidates,
more passes) and verifies the outputs nest (monotonicity of the frequent
family), which pins down that the thresholds in Table I were mined
consistently.
"""

from __future__ import annotations

from conftest import write_report
from repro.bench.reporting import format_table, sparkline
from repro.bench.sweeps import partition_sweep, support_sweep
from repro.datasets import mushroom_like

SUPPORTS = [0.6, 0.5, 0.4, 0.35, 0.3]


def test_ablation_support_sweep(benchmark):
    ds = mushroom_like(scale=0.08, seed=7)
    points = benchmark.pedantic(
        lambda: support_sweep(ds, SUPPORTS, num_partitions=8),
        rounds=1,
        iterations=1,
    )
    rows = [(p.value, p.n_itemsets, p.n_passes, p.seconds) for p in points]
    table = format_table(
        ["minsup", "itemsets", "passes", "wall (s)"],
        rows,
        title=(
            "Ablation A5 — support-threshold sweep [mushroom]  "
            f"(itemsets: {sparkline([p.n_itemsets for p in points])})"
        ),
    )
    write_report("ablation_support_sweep", table)

    # deterministic shape: lower support => superset family, >= passes
    counts = [p.n_itemsets for p in points]
    passes = [p.n_passes for p in points]
    assert all(a <= b for a, b in zip(counts, counts[1:]))
    assert all(a <= b for a, b in zip(passes, passes[1:]))
    # the paper's threshold (35%) sits in a clearly multi-level regime
    at_paper = next(p for p in points if abs(p.value - 0.35) < 1e-9)
    assert at_paper.n_passes >= 5
    benchmark.extra_info["itemsets_at_paper_threshold"] = at_paper.n_itemsets


def test_ablation_partition_sweep(benchmark):
    ds = mushroom_like(scale=0.08, seed=7)
    points = benchmark.pedantic(
        lambda: partition_sweep(ds, [1, 2, 4, 8, 16, 32], 0.35),
        rounds=1,
        iterations=1,
    )
    rows = [(int(p.value), p.n_itemsets, p.seconds) for p in points]
    table = format_table(
        ["partitions", "itemsets", "wall (s)"],
        rows,
        title="Ablation A6 — partition-count sweep [mushroom]",
    )
    write_report("ablation_partition_sweep", table)
    # output must be partition-count independent
    assert len({p.n_itemsets for p in points}) == 1
