"""Approximate fast tier vs exact YAFIM, plus the served closed loop.

The fast tier (``repro.core.approx``) trades the exact miner's k full
passes for ``n_samples`` independent samples mined at a relaxed
threshold plus ONE exact verification pass.  Two claims back it:

* **algorithmic**: on the dense seed datasets the fast tier is >= 3x
  faster than exact YAFIM at the paper's operating point (mushroom,
  sup 0.35) while reporting *recall 1.0* whenever its negative-border
  check verifies the run (``verified_exact``) — and *precision 1.0*
  unconditionally, because the verification pass counts every
  candidate against the full dataset;
* **served**: behind the serving tier, a closed loop of interactive
  submissions routed to the fast tier completes with p95 latency below
  the batch (exact) tier's p50 — the sub-second-interactive story.

The sweep mines each dataset exactly once (the oracle) and then at a
grid of sample sizes, recording wall-clock, recall/precision against
the oracle, and the provenance the miner reports (sample sizes, border
violations, verified flag).  ``BENCH_approx.json`` lands at the repo
root.

Run standalone (CI uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_approx.py --smoke
    PYTHONPATH=src python benchmarks/bench_approx.py

or under pytest-benchmark along with the other figures.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.approx import ApproxMiner
from repro.core.registry import MiningConfig
from repro.core.yafim import Yafim
from repro.datasets import chess_like, mushroom_like
from repro.engine.context import Context
from repro.serve import LocalClient, MiningService

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_approx.json")

BACKEND = "processes"
N_WORKERS = 2
N_PARTITIONS = 6
#: one sample per executor — phase 1 completes in a single round
N_SAMPLES = N_WORKERS
#: threshold relaxation r: mild, because the seed datasets' pattern
#: supports sit well away from the operating threshold — a deep
#: relaxation would only inflate the sample families (and with them the
#: verification pass) without buying extra safety
RATIO = 0.9
SEED = 7

#: sample sizes swept per dataset (fraction of the full transaction list)
SAMPLE_FRACS = (0.05, 0.1, 0.2)

#: serving closed loop: distinct supports -> distinct jobs (no memoization
#: inside a leg), submitted one at a time through the in-process client.
#: The band sits entirely inside the interactive-pain region around the
#: paper's mushroom operating point — the jobs the planner routes to the
#: fast tier; high-support jobs are cheap either way and would not be
#: routed, so including them would only dilute the batch tier's median
#: with jobs the fast tier never sees.
SERVE_SUPPORTS = (0.340, 0.342, 0.344, 0.346, 0.348, 0.350, 0.352, 0.354, 0.356, 0.358)


def _mine_exact(transactions, min_support: float):
    t0 = time.perf_counter()
    with Context(backend=BACKEND, parallelism=N_WORKERS) as ctx:
        result = Yafim(ctx, num_partitions=N_PARTITIONS).run(transactions, min_support)
    return time.perf_counter() - t0, result


def _mine_approx(transactions, min_support: float, sample_frac: float):
    t0 = time.perf_counter()
    with Context(backend=BACKEND, parallelism=N_WORKERS) as ctx:
        result = ApproxMiner(
            ctx,
            n_samples=N_SAMPLES,
            ratio=RATIO,
            sample_frac=sample_frac,
            seed=SEED,
            num_partitions=N_PARTITIONS,
            candidate_store="bitmap",
        ).run(transactions, min_support)
    return time.perf_counter() - t0, result


def _sweep_dataset(name: str, transactions, min_support: float) -> dict:
    """One dataset: the exact oracle run, then the sample-size grid."""
    exact_wall, exact = _mine_exact(transactions, min_support)
    oracle = exact.itemsets

    legs = []
    for frac in SAMPLE_FRACS:
        wall, result = _mine_approx(transactions, min_support, frac)
        found = set(result.itemsets) & set(oracle)
        recall = len(found) / len(oracle) if oracle else 1.0
        precision = len(found) / len(result.itemsets) if result.itemsets else 1.0

        # correctness invariants, independent of timing: the verification
        # pass counts on the full dataset, so everything reported is truly
        # frequent with its exact count (precision 1.0), and a verified
        # run missed nothing (recall 1.0)
        assert precision == 1.0, f"{name}@{frac}: precision {precision} < 1.0"
        for iset in found:
            assert result.itemsets[iset] == oracle[iset], (
                f"{name}@{frac}: approx count differs for {iset}"
            )
        if result.verified_exact:
            assert recall == 1.0, (
                f"{name}@{frac}: verified run with recall {recall} < 1.0"
            )

        legs.append(
            {
                "sample_frac": frac,
                "wall_seconds": round(wall, 4),
                "speedup_vs_exact": round(exact_wall / max(wall, 1e-9), 2),
                "recall": round(recall, 4),
                "precision": round(precision, 4),
                "n_itemsets": result.num_itemsets,
                "verified_exact": result.verified_exact,
                "border_violations": len(result.border_violations),
                "candidates_verified": result.candidates_verified,
                "sample_sizes": list(result.sample_sizes),
            }
        )
    return {
        "dataset": name,
        "min_support": min_support,
        "n_transactions": len(transactions),
        "n_samples": N_SAMPLES,
        "ratio": RATIO,
        "seed": SEED,
        "exact": {"wall_seconds": round(exact_wall, 4), "n_itemsets": exact.num_itemsets},
        "approx": legs,
    }


def _percentile(sorted_vals: list, q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[idx]


def _served_config(support: float, approx: bool, sample_frac: float) -> MiningConfig:
    return MiningConfig(
        min_support=support,
        approx=approx,
        approx_samples=N_SAMPLES,
        approx_ratio=RATIO,
        sample_frac=sample_frac,
        backend=BACKEND,
        parallelism=N_WORKERS,
        num_partitions=N_PARTITIONS,
        candidate_store="bitmap",
        # options flow to the miner ctor; "seed" only exists on
        # the approx runner, exact YAFIM would reject it
        options={"seed": SEED} if approx else {},
    )


def _served_leg(transactions, supports, approx: bool, sample_frac: float) -> dict:
    """Closed-loop latency through the in-process client: one job at a
    time, a distinct support per job (so nothing memoizes inside the
    leg), a fresh service per leg (so the tiers share no cache).  One
    untimed warmup job (at a support outside the band) spawns the
    executor pool first, so the percentiles measure the steady state
    both tiers actually serve from rather than a one-off process-spawn
    that would land on whichever tier ran first."""
    latencies = []
    verified = 0
    with MiningService(n_workers=N_WORKERS) as svc:
        client = LocalClient(svc)
        warm = client.submit(transactions, _served_config(0.6, approx, sample_frac))
        warm.wait(600)
        assert warm.state.value == "done", warm.error
        for support in supports:
            config = _served_config(support, approx, sample_frac)
            t0 = time.perf_counter()
            job = client.submit(transactions, config)
            job.wait(600)
            latencies.append(time.perf_counter() - t0)
            assert job.state.value == "done", (support, job.error)
            if getattr(job.result, "verified_exact", False):
                verified += 1
    ordered = sorted(latencies)
    return {
        "tier": "fast" if approx else "batch",
        "jobs": len(latencies),
        "verified_exact_jobs": verified,
        "mean_s": round(sum(latencies) / len(latencies), 5),
        "p50_s": round(_percentile(ordered, 0.50), 5),
        "p95_s": round(_percentile(ordered, 0.95), 5),
        "max_s": round(ordered[-1], 5),
    }


def run_approx_bench(smoke: bool = False) -> dict:
    datasets = {
        "mushroom": (mushroom_like(scale=0.1 if smoke else 0.8, seed=7), 0.35),
        "chess": (chess_like(scale=0.3 if smoke else 1.0, seed=7), 0.85),
    }
    report = {
        "benchmark": "approx",
        "smoke": smoke,
        "backend": BACKEND,
        "n_workers": N_WORKERS,
        "n_partitions": N_PARTITIONS,
        "sample_fracs": list(SAMPLE_FRACS),
        "datasets": {},
    }
    for name, (ds, min_support) in datasets.items():
        report["datasets"][name] = _sweep_dataset(name, ds.transactions, min_support)

    # Headline claim: >= 3x over exact YAFIM on mushroom at sup 0.35 from
    # a leg that *also* proved itself exact (verified, recall 1.0).
    # Timing is only meaningful on the full-size run; --smoke records the
    # sweep (correctness asserted above) without gating on wall-clock.
    mushroom = report["datasets"]["mushroom"]
    verified_legs = [leg for leg in mushroom["approx"] if leg["verified_exact"]]
    report["mushroom_best_verified_speedup"] = max(
        (leg["speedup_vs_exact"] for leg in verified_legs), default=0.0
    )
    if not smoke:
        assert verified_legs, "mushroom: no sample size verified exact"
        for leg in verified_legs:
            assert leg["recall"] == 1.0, leg
        assert report["mushroom_best_verified_speedup"] >= 3.0, (
            f"fast tier {report['mushroom_best_verified_speedup']}x < 3x "
            "over exact YAFIM on mushroom"
        )

    # Served closed loop: the fast tier must beat the batch tier's
    # MEDIAN even at its own p95.  The service's warm executor pool
    # amortizes process startup for both tiers alike, which also shrinks
    # exact latency — so the leg runs on a 4x mushroom (the dense
    # generators draw rows i.i.d., so scale > 1 is a genuinely larger
    # same-distribution dataset).  At that size exact YAFIM's k full
    # passes dominate, while the fast tier still pays only its samples
    # plus ONE verification pass.
    serve_ds = mushroom_like(scale=0.1 if smoke else 4.0, seed=7)
    serve_frac = 0.1 if smoke else 0.05
    supports = SERVE_SUPPORTS[:3] if smoke else SERVE_SUPPORTS
    fast = _served_leg(serve_ds.transactions, supports, approx=True, sample_frac=serve_frac)
    batch = _served_leg(serve_ds.transactions, supports, approx=False, sample_frac=serve_frac)
    report["served"] = {
        "dataset": serve_ds.name,
        "n_transactions": len(serve_ds.transactions),
        "supports": list(supports),
        "fast": fast,
        "batch": batch,
        "fast_p95_below_batch_p50": fast["p95_s"] < batch["p50_s"],
    }
    if not smoke:
        assert fast["p95_s"] < batch["p50_s"], (
            f"fast tier p95 {fast['p95_s']}s >= batch p50 {batch['p50_s']}s"
        )

    with open(REPORT_PATH, "w") as f:
        json.dump(report, f, indent=2)
    return report


def test_approx(benchmark):
    report = benchmark.pedantic(run_approx_bench, rounds=1, iterations=1)
    benchmark.extra_info["mushroom_best_verified_speedup"] = report[
        "mushroom_best_verified_speedup"
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small datasets; assert correctness invariants and exit",
    )
    args = parser.parse_args(argv)
    report = run_approx_bench(smoke=args.smoke)
    for name, entry in report["datasets"].items():
        print(
            f"{name} @ sup={entry['min_support']}: exact "
            f"{entry['exact']['wall_seconds']}s, "
            f"{entry['exact']['n_itemsets']} itemsets"
        )
        for leg in entry["approx"]:
            flag = "verified" if leg["verified_exact"] else (
                f"{leg['border_violations']} border violation(s)"
            )
            print(
                f"  frac={leg['sample_frac']}: {leg['wall_seconds']}s "
                f"({leg['speedup_vs_exact']}x), recall {leg['recall']}, "
                f"precision {leg['precision']}, {flag}"
            )
    served = report["served"]
    print(
        f"served ({served['dataset']}, {served['fast']['jobs']} jobs/tier): "
        f"fast p50={served['fast']['p50_s']}s p95={served['fast']['p95_s']}s | "
        f"batch p50={served['batch']['p50_s']}s p95={served['batch']['p95_s']}s"
    )
    print(f"approx ok: report -> {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
