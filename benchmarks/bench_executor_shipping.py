"""Executor task-shipping economics — persistent workers vs per-task pickling.

The process backend used to re-pickle the full task graph — broadcast
hash tree included — for every task.  With persistent workers and the
worker-resident block store (:mod:`repro.engine.workerstore`), a task
ships as a small closure blob plus block *references*; each named block
crosses the IPC channel at most once per worker.  This benchmark runs
the same YAFIM workload on every backend and records:

* wall time per backend,
* serialized bytes shipped per iteration (``IterationStats.shipped_bytes``),
* the processes backend's shipping ledger, including ``naive_block_bytes``
  — what the seed's embed-everything-per-task strategy would have moved,

then writes ``BENCH_executor_shipping.json`` at the repo root.

Run standalone (CI uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_executor_shipping.py --smoke

or under pytest-benchmark along with the other figures.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.yafim import Yafim
from repro.datasets import mushroom_like
from repro.engine.context import Context
from repro.engine.executors import BACKENDS

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_executor_shipping.json")

N_WORKERS = 2
N_PARTITIONS = 6  # > workers, so per-task shipping would multiply bytes


def _mine(backend: str, transactions, min_support: float) -> tuple[dict, dict]:
    t0 = time.perf_counter()
    with Context(backend=backend, parallelism=N_WORKERS) as ctx:
        result = Yafim(ctx, num_partitions=N_PARTITIONS).run(transactions, min_support)
        wall = time.perf_counter() - t0
        ship = getattr(ctx.executor, "shipping_metrics", None)
        record = {
            "backend": backend,
            "wall_seconds": round(wall, 4),
            "n_itemsets": result.num_itemsets,
            "iterations": [
                {"k": it.k, "shipped_bytes": it.shipped_bytes}
                for it in result.iterations
            ],
            "total_shipped_bytes": sum(it.shipped_bytes for it in result.iterations),
        }
        if ship is not None:
            record["shipping"] = {
                "task_bytes": ship.task_bytes,
                "block_bytes_pushed": ship.block_bytes_pushed,
                "block_bytes_pulled": ship.block_bytes_pulled,
                "blocks_pushed": ship.blocks_pushed,
                "blocks_pulled": ship.blocks_pulled,
                "ref_requests": ship.ref_requests,
                "dedup_hits": ship.dedup_hits,
                "dedup_hit_rate": round(ship.dedup_hit_rate, 4),
                "broadcast_blocks_shipped": ship.broadcast_blocks_shipped,
                "broadcast_bytes_shipped": ship.broadcast_bytes_shipped,
                "broadcast_unique_blocks": ship.broadcast_unique_blocks,
                "broadcast_payload_bytes": ship.broadcast_payload_bytes,
                "naive_block_bytes": ship.naive_block_bytes,
                "worker_store_evictions": ship.worker_store_evictions,
            }
        return record, result.itemsets


def run_shipping_bench(smoke: bool = False) -> dict:
    scale = 0.03 if smoke else 0.12
    ds = mushroom_like(scale=scale, seed=7)
    min_support = 0.35

    records = {}
    itemsets = {}
    for backend in BACKENDS:
        records[backend], itemsets[backend] = _mine(
            backend, ds.transactions, min_support
        )

    # Correctness: every backend mines the same itemsets.
    for backend in BACKENDS[1:]:
        assert itemsets[backend] == itemsets[BACKENDS[0]], (
            f"{backend} itemsets differ from {BACKENDS[0]}"
        )

    ship = records["processes"]["shipping"]

    # Zero-redundancy claim: each broadcast payload crosses the IPC channel
    # at most once per worker — bytes scale with workers, not tasks.
    assert ship["broadcast_blocks_shipped"] <= (
        ship["broadcast_unique_blocks"] * N_WORKERS
    ), f"broadcast shipped more than once per worker: {ship}"
    assert ship["broadcast_bytes_shipped"] <= (
        ship["broadcast_payload_bytes"] * N_WORKERS
    ), f"broadcast bytes exceed payload x workers: {ship}"

    # Economy claim: actual block bytes moved beat the seed's per-task
    # embedding model (every referenced block re-serialized per task).
    actual_block_bytes = ship["block_bytes_pushed"] + ship["block_bytes_pulled"]
    assert actual_block_bytes < ship["naive_block_bytes"], (
        f"reference shipping ({actual_block_bytes}B) did not beat per-task "
        f"embedding ({ship['naive_block_bytes']}B)"
    )

    report = {
        "benchmark": "executor_shipping",
        "smoke": smoke,
        "n_workers": N_WORKERS,
        "n_partitions": N_PARTITIONS,
        "dataset": f"mushroom_like(scale={scale})",
        "min_support": min_support,
        "backends": records,
        "bytes_saved_vs_per_task": ship["naive_block_bytes"] - actual_block_bytes,
        "ship_reduction_factor": round(
            ship["naive_block_bytes"] / max(1, actual_block_bytes), 2
        ),
    }
    with open(REPORT_PATH, "w") as f:
        json.dump(report, f, indent=2)
    return report


def test_executor_shipping(benchmark):
    report = benchmark.pedantic(run_shipping_bench, rounds=1, iterations=1)
    benchmark.extra_info["ship_reduction_factor"] = report["ship_reduction_factor"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny dataset; assert shipping invariants and exit",
    )
    args = parser.parse_args(argv)
    report = run_shipping_bench(smoke=args.smoke)
    procs = report["backends"]["processes"]
    print(
        f"executor shipping ok: saved {report['bytes_saved_vs_per_task']}B "
        f"({report['ship_reduction_factor']}x less than per-task embedding), "
        f"dedup_hit_rate={procs['shipping']['dedup_hit_rate']}, "
        f"report -> {REPORT_PATH}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
