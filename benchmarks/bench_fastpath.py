"""Counting fast path vs the seed's counting shape, on the dense datasets.

The fast path (PR: dictionary encoding + in-tree weighted counting +
cross-pass compaction) attacks three costs the seed paid every pass:

* one ``(candidate, 1)`` tuple allocated per match per transaction
  before the map-side combine (``IterationStats.counting_records``),
* k-tuple shuffle keys where a candidate *index* int suffices
  (``IterationStats.shuffle_bytes`` / ``shuffle_records``; Phase I
  drops its shuffle entirely — per-partition counters merge on the
  driver),
* re-scanning dead weight: infrequent items and duplicate/short
  transactions that cannot affect any later pass
  (``CompactionStats``).

This benchmark mines the dense seed datasets twice on the process
backend — all fast-path knobs on vs. all off — verifies identical
output, then writes ``BENCH_fastpath.json`` at the repo root with
per-pass wall-clock, shuffle bytes/records and allocated-pair counts.

Run standalone (CI uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke

or under pytest-benchmark along with the other figures.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.yafim import Yafim
from repro.datasets import chess_like, mushroom_like
from repro.engine.context import Context

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_fastpath.json")

BACKEND = "processes"
N_WORKERS = 2
N_PARTITIONS = 6

BASELINE_KNOBS = dict(
    use_dict_encoding=False, use_in_tree_counting=False, use_compaction=False
)


def _mine(transactions, min_support: float, fastpath: bool) -> tuple[dict, dict]:
    knobs = {} if fastpath else BASELINE_KNOBS
    t0 = time.perf_counter()
    with Context(backend=BACKEND, parallelism=N_WORKERS) as ctx:
        result = Yafim(ctx, num_partitions=N_PARTITIONS, **knobs).run(
            transactions, min_support
        )
    wall = time.perf_counter() - t0
    compaction_seconds = sum(
        it.compaction.seconds for it in result.iterations if it.compaction
    )
    record = {
        "wall_seconds": round(wall, 4),
        "n_itemsets": result.num_itemsets,
        # phase-II cost includes encode/compact work the fast path spends
        # outside the per-pass windows — charged here so the comparison
        # against the baseline's pure pass time stays honest
        "phase2_seconds": round(
            sum(it.seconds for it in result.iterations if it.k >= 2)
            + compaction_seconds,
            4,
        ),
        "passes": [
            {
                "k": it.k,
                "seconds": round(it.seconds, 4),
                "shuffle_bytes": it.shuffle_bytes,
                "shuffle_records": it.shuffle_records,
                "allocated_pairs": it.counting_records,
            }
            for it in result.iterations
        ],
        "shuffle_bytes_total": sum(it.shuffle_bytes for it in result.iterations),
        "shuffle_records_total": sum(it.shuffle_records for it in result.iterations),
        "allocated_pairs_total": sum(it.counting_records for it in result.iterations),
        "compaction": [
            {
                "after_pass": it.k,
                "kind": it.compaction.kind,
                "seconds": round(it.compaction.seconds, 4),
                "txns": [it.compaction.txns_before, it.compaction.txns_after],
                "items": [it.compaction.items_before, it.compaction.items_after],
                "bytes": [it.compaction.bytes_before, it.compaction.bytes_after],
            }
            for it in result.iterations
            if it.compaction is not None
        ],
    }
    return record, result.itemsets


def _compare(name: str, transactions, min_support: float) -> dict:
    fast, fast_itemsets = _mine(transactions, min_support, fastpath=True)
    base, base_itemsets = _mine(transactions, min_support, fastpath=False)

    assert fast_itemsets == base_itemsets, f"{name}: fast path changed the output"

    # Wire-volume claims, pass by pass: Phase I ships nothing (driver-side
    # merge) and every candidate pass ships int-keyed partials instead of
    # k-tuple keys.
    assert len(fast["passes"]) == len(base["passes"])
    for fp, bp in zip(fast["passes"], base["passes"]):
        assert fp["shuffle_bytes"] < bp["shuffle_bytes"], (
            f"{name} pass {fp['k']}: fastpath shuffled {fp['shuffle_bytes']}B, "
            f"baseline {bp['shuffle_bytes']}B"
        )
    assert fast["shuffle_records_total"] < base["shuffle_records_total"], name
    assert fast["allocated_pairs_total"] < base["allocated_pairs_total"], name

    return {
        "min_support": min_support,
        "fastpath": fast,
        "baseline": base,
        "phase2_speedup": round(
            base["phase2_seconds"] / max(fast["phase2_seconds"], 1e-9), 2
        ),
        "allocated_pairs_reduction": round(
            base["allocated_pairs_total"] / max(fast["allocated_pairs_total"], 1), 1
        ),
    }


def run_fastpath_bench(smoke: bool = False) -> dict:
    datasets = {
        "mushroom": (mushroom_like(scale=0.1 if smoke else 0.8, seed=7), 0.35),
        "chess": (chess_like(scale=0.5 if smoke else 1.0, seed=7), 0.85),
    }

    report = {
        "benchmark": "fastpath",
        "smoke": smoke,
        "backend": BACKEND,
        "n_workers": N_WORKERS,
        "n_partitions": N_PARTITIONS,
        "datasets": {},
    }
    for name, (ds, min_support) in datasets.items():
        entry = _compare(ds.name, ds.transactions, min_support)
        entry["dataset"] = ds.name
        report["datasets"][name] = entry

    # Headline claim: >= 2x Phase-II wall-clock on at least one dense
    # seed dataset, with the wire volume strictly reduced (asserted
    # per-pass above).
    best = max(e["phase2_speedup"] for e in report["datasets"].values())
    report["best_phase2_speedup"] = best
    assert best >= 2.0, f"fast path phase-II speedup {best}x < 2x"

    with open(REPORT_PATH, "w") as f:
        json.dump(report, f, indent=2)
    return report


def test_fastpath(benchmark):
    report = benchmark.pedantic(run_fastpath_bench, rounds=1, iterations=1)
    benchmark.extra_info["best_phase2_speedup"] = report["best_phase2_speedup"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset; assert fast-path invariants and exit",
    )
    args = parser.parse_args(argv)
    report = run_fastpath_bench(smoke=args.smoke)
    for name, entry in report["datasets"].items():
        print(
            f"{name}: phase2 {entry['baseline']['phase2_seconds']}s -> "
            f"{entry['fastpath']['phase2_seconds']}s "
            f"({entry['phase2_speedup']}x), allocated pairs "
            f"{entry['baseline']['allocated_pairs_total']} -> "
            f"{entry['fastpath']['allocated_pairs_total']} "
            f"({entry['allocated_pairs_reduction']}x fewer), "
            f"shuffle {entry['baseline']['shuffle_bytes_total']}B -> "
            f"{entry['fastpath']['shuffle_bytes_total']}B"
        )
    print(f"fastpath ok: report -> {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
