"""Counting fast path vs the seed's counting shape, on the dense datasets.

The fast path (PR: dictionary encoding + in-tree weighted counting +
cross-pass compaction) attacks three costs the seed paid every pass:

* one ``(candidate, 1)`` tuple allocated per match per transaction
  before the map-side combine (``IterationStats.counting_records``),
* k-tuple shuffle keys where a candidate *index* int suffices
  (``IterationStats.shuffle_bytes`` / ``shuffle_records``; Phase I
  drops its shuffle entirely — per-partition counters merge on the
  driver),
* re-scanning dead weight: infrequent items and duplicate/short
  transactions that cannot affect any later pass
  (``CompactionStats``).

This benchmark mines the dense seed datasets twice on the process
backend — all fast-path knobs on vs. all off — verifies identical
output, then writes ``BENCH_fastpath.json`` at the repo root with
per-pass wall-clock, shuffle bytes/records and allocated-pair counts.

On top of that sits the candidate-store ablation grid (``--stores``):
the same fast-path run repeated per registered store, reusing the
hash-tree run as the PR-4 reference.  Every store must produce the
identical itemset count; the bitmap store's Phase-II speedup over the
hash tree is the headline number of the vertical counting kernel.

Run standalone (CI uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke
    PYTHONPATH=src python benchmarks/bench_fastpath.py \
        --stores hashtree,trie,flatdict,bitmap

or under pytest-benchmark along with the other figures.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.core.yafim import Yafim
from repro.datasets import chess_like, mushroom_like
from repro.engine.context import Context

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_fastpath.json")

BACKEND = "processes"
N_WORKERS = 2
N_PARTITIONS = 6

BASELINE_KNOBS = dict(
    use_dict_encoding=False, use_in_tree_counting=False, use_compaction=False
)

DEFAULT_STORES = ["hashtree", "trie", "flatdict", "bitmap"]


def _mine(
    transactions, min_support: float, fastpath: bool, store: str | None = None
) -> tuple[dict, dict]:
    knobs = {} if fastpath else dict(BASELINE_KNOBS)
    if store is not None:
        knobs["candidate_store"] = store
    t0 = time.perf_counter()
    with Context(backend=BACKEND, parallelism=N_WORKERS) as ctx:
        result = Yafim(ctx, num_partitions=N_PARTITIONS, **knobs).run(
            transactions, min_support
        )
    wall = time.perf_counter() - t0
    compaction_seconds = sum(
        it.compaction.seconds for it in result.iterations if it.compaction
    )
    record = {
        "wall_seconds": round(wall, 4),
        "n_itemsets": result.num_itemsets,
        # phase-II cost includes encode/compact work the fast path spends
        # outside the per-pass windows — charged here so the comparison
        # against the baseline's pure pass time stays honest
        "phase2_seconds": round(
            sum(it.seconds for it in result.iterations if it.k >= 2)
            + compaction_seconds,
            4,
        ),
        "passes": [
            {
                "k": it.k,
                "seconds": round(it.seconds, 4),
                "shuffle_bytes": it.shuffle_bytes,
                "shuffle_records": it.shuffle_records,
                "allocated_pairs": it.counting_records,
            }
            for it in result.iterations
        ],
        "shuffle_bytes_total": sum(it.shuffle_bytes for it in result.iterations),
        "shuffle_records_total": sum(it.shuffle_records for it in result.iterations),
        "allocated_pairs_total": sum(it.counting_records for it in result.iterations),
        "compaction": [
            {
                "after_pass": it.k,
                "kind": it.compaction.kind,
                "seconds": round(it.compaction.seconds, 4),
                "txns": [it.compaction.txns_before, it.compaction.txns_after],
                "items": [it.compaction.items_before, it.compaction.items_after],
                "bytes": [it.compaction.bytes_before, it.compaction.bytes_after],
            }
            for it in result.iterations
            if it.compaction is not None
        ],
    }
    return record, result.itemsets


def _compare(
    name: str, transactions, min_support: float, fast: dict, fast_itemsets: dict
) -> dict:
    base, base_itemsets = _mine(transactions, min_support, fastpath=False)

    assert fast_itemsets == base_itemsets, f"{name}: fast path changed the output"

    # Wire-volume claims, pass by pass: Phase I ships nothing (driver-side
    # merge) and every candidate pass ships int-keyed partials instead of
    # k-tuple keys.
    assert len(fast["passes"]) == len(base["passes"])
    for fp, bp in zip(fast["passes"], base["passes"]):
        assert fp["shuffle_bytes"] < bp["shuffle_bytes"], (
            f"{name} pass {fp['k']}: fastpath shuffled {fp['shuffle_bytes']}B, "
            f"baseline {bp['shuffle_bytes']}B"
        )
    assert fast["shuffle_records_total"] < base["shuffle_records_total"], name
    assert fast["allocated_pairs_total"] < base["allocated_pairs_total"], name

    return {
        "min_support": min_support,
        "fastpath": fast,
        "baseline": base,
        "phase2_speedup": round(
            base["phase2_seconds"] / max(fast["phase2_seconds"], 1e-9), 2
        ),
        "allocated_pairs_reduction": round(
            base["allocated_pairs_total"] / max(fast["allocated_pairs_total"], 1), 1
        ),
    }


def _store_grid(
    name: str, transactions, min_support: float, stores: list[str]
) -> dict:
    """Store ablation: the fast-path run repeated per candidate store.

    Runs at its own (lower) support than the fastpath-vs-baseline
    comparison: the grid needs a counting-bound Phase II — at the
    baseline comparison's high support the compacted working set is so
    small that per-pass engine overhead drowns any store difference.
    The hash-tree leg (the PR-4 configuration) runs first and is the
    reference every other store is compared against.
    """
    ordered = ["hashtree"] + [s for s in stores if s != "hashtree"]
    runs = {}
    for store in ordered:
        runs[store] = _mine(transactions, min_support, fastpath=True, store=store)
    ht_record, ht_itemsets = runs["hashtree"]

    grid = {}
    for store in stores:
        record, itemsets = runs[store]
        assert len(itemsets) == ht_record["n_itemsets"], (
            f"{name}/{store}: {len(itemsets)} itemsets, "
            f"hashtree found {ht_record['n_itemsets']}"
        )
        assert itemsets == ht_itemsets, f"{name}/{store} changed the output"
        grid[store] = {
            "wall_seconds": record["wall_seconds"],
            "phase2_seconds": record["phase2_seconds"],
            "allocated_pairs_total": record["allocated_pairs_total"],
            "shuffle_records_total": record["shuffle_records_total"],
            "n_itemsets": record["n_itemsets"],
            "phase2_speedup_vs_hashtree": round(
                ht_record["phase2_seconds"] / max(record["phase2_seconds"], 1e-9),
                2,
            ),
        }
    return grid


def run_fastpath_bench(smoke: bool = False, stores: list[str] | None = None) -> dict:
    # (dataset, baseline-comparison support, store-grid support).  The
    # grid support is lower where the compare support leaves Phase II
    # too small to differentiate counting structures (chess at 0.85
    # compacts to a few hundred weighted txns — pure engine overhead).
    datasets = {
        "mushroom": (mushroom_like(scale=0.1 if smoke else 0.8, seed=7), 0.35, 0.35),
        "chess": (chess_like(scale=0.5 if smoke else 1.0, seed=7), 0.85, 0.6),
    }

    stores = list(stores) if stores else list(DEFAULT_STORES)

    report = {
        "benchmark": "fastpath",
        "smoke": smoke,
        "backend": BACKEND,
        "n_workers": N_WORKERS,
        "n_partitions": N_PARTITIONS,
        "stores": stores,
        "datasets": {},
    }
    for name, (ds, min_support, grid_support) in datasets.items():
        fast, fast_itemsets = _mine(ds.transactions, min_support, fastpath=True)
        entry = _compare(ds.name, ds.transactions, min_support, fast, fast_itemsets)
        entry["dataset"] = ds.name
        entry["stores_min_support"] = grid_support
        entry["stores"] = _store_grid(ds.name, ds.transactions, grid_support, stores)
        report["datasets"][name] = entry

    # Headline claim: >= 2x Phase-II wall-clock on at least one dense
    # seed dataset, with the wire volume strictly reduced (asserted
    # per-pass above).
    best = max(e["phase2_speedup"] for e in report["datasets"].values())
    report["best_phase2_speedup"] = best
    assert best >= 2.0, f"fast path phase-II speedup {best}x < 2x"

    # Store-grid claim: on every dense dataset the best new store beats
    # the PR-4 hash tree's Phase-II wall-clock, and the bitmap store's
    # vertical kernel delivers a clear (>= 1.5x) win on at least one.
    # Correctness (identical itemsets per store) is asserted
    # unconditionally in _store_grid; timing is only meaningful on the
    # full-size datasets, so --smoke records the grid without gating.
    new_stores = [s for s in stores if s != "hashtree"]
    if new_stores:
        report["bitmap_phase2_speedup_vs_hashtree"] = {
            name: e["stores"]["bitmap"]["phase2_speedup_vs_hashtree"]
            for name, e in report["datasets"].items()
            if "bitmap" in e["stores"]
        }
        report["best_new_store"] = {
            name: max(
                ((s, e["stores"][s]["phase2_speedup_vs_hashtree"]) for s in new_stores),
                key=lambda kv: kv[1],
            )
            for name, e in report["datasets"].items()
        }
        if not smoke:
            for name, (store, speedup) in report["best_new_store"].items():
                assert speedup > 1.0, (
                    f"{name}: best new store {store} at {speedup}x — "
                    "no store beat the hash tree"
                )
            if "bitmap" in stores:
                for name, speedup in report[
                    "bitmap_phase2_speedup_vs_hashtree"
                ].items():
                    assert speedup > 1.0, (
                        f"{name}: bitmap phase-II {speedup}x vs hashtree — "
                        "vertical kernel did not win"
                    )
                best_bitmap = max(
                    report["bitmap_phase2_speedup_vs_hashtree"].values()
                )
                assert best_bitmap >= 1.5, (
                    f"bitmap best phase-II speedup {best_bitmap}x < 1.5x — "
                    "vertical kernel did not deliver"
                )

    with open(REPORT_PATH, "w") as f:
        json.dump(report, f, indent=2)
    return report


def test_fastpath(benchmark):
    report = benchmark.pedantic(run_fastpath_bench, rounds=1, iterations=1)
    benchmark.extra_info["best_phase2_speedup"] = report["best_phase2_speedup"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small dataset; assert fast-path invariants and exit",
    )
    parser.add_argument(
        "--stores",
        default=",".join(DEFAULT_STORES),
        help="comma-separated candidate stores for the ablation grid "
        f"(default: {','.join(DEFAULT_STORES)})",
    )
    args = parser.parse_args(argv)
    from repro.core.candidatestore import get_store

    stores = [s.strip() for s in args.stores.split(",") if s.strip()]
    for s in stores:
        get_store(s)  # unknown store names fail before any mining
    report = run_fastpath_bench(smoke=args.smoke, stores=stores)
    for name, entry in report["datasets"].items():
        print(
            f"{name}: phase2 {entry['baseline']['phase2_seconds']}s -> "
            f"{entry['fastpath']['phase2_seconds']}s "
            f"({entry['phase2_speedup']}x), allocated pairs "
            f"{entry['baseline']['allocated_pairs_total']} -> "
            f"{entry['fastpath']['allocated_pairs_total']} "
            f"({entry['allocated_pairs_reduction']}x fewer), "
            f"shuffle {entry['baseline']['shuffle_bytes_total']}B -> "
            f"{entry['fastpath']['shuffle_bytes_total']}B"
        )
        for store, rec in entry["stores"].items():
            print(
                f"  store {store:>9} @ sup={entry['stores_min_support']}: "
                f"phase2 {rec['phase2_seconds']}s "
                f"({rec['phase2_speedup_vs_hashtree']}x vs hashtree), "
                f"{rec['n_itemsets']} itemsets"
            )
    print(f"fastpath ok: report -> {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
