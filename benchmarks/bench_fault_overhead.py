"""Extension bench — fault-tolerance overhead (§II-B's lineage claim).

The paper adopts Spark partly because "RDDs can achieve fault-tolerance
based on lineage information rather than replication".  This bench
quantifies both halves on a full YAFIM run:

* a healthy run vs a run with injected task failures (retry overhead),
* a run whose cached transaction partitions are repeatedly dropped
  (lineage-recomputation overhead) — the replication-free recovery path.

Results must be identical in every scenario.
"""

from __future__ import annotations

import time

from conftest import write_report
from repro.bench.reporting import format_table
from repro.core import Yafim
from repro.datasets import mushroom_like
from repro.engine import Context
from repro.engine.storage import BlockId

SUP = 0.35


def _timed_run(configure=None):
    ds = mushroom_like(scale=0.08, seed=7)
    with Context(backend="serial") as ctx:
        if configure:
            configure(ctx)
        t0 = time.perf_counter()
        result = Yafim(ctx, num_partitions=8).run(ds.transactions, SUP)
        wall = time.perf_counter() - t0
        injected = ctx.fault_injector.injected
        retried = sum(1 for t in ctx.event_log.tasks if t.kind.startswith("failed_"))
    return result, wall, injected, retried


class _CacheDropper(Yafim):
    """Drops every cached block before each phase-II iteration."""

    def _build_matcher(self, candidates):
        bm = self.ctx.block_manager
        for block in list(bm._mem):
            bm.drop_block(BlockId(block.rdd_id, block.partition))
        return super()._build_matcher(candidates)


def _timed_cache_loss_run():
    ds = mushroom_like(scale=0.08, seed=7)
    with Context(backend="serial") as ctx:
        t0 = time.perf_counter()
        result = _CacheDropper(ctx, num_partitions=8).run(ds.transactions, SUP)
        wall = time.perf_counter() - t0
    return result, wall


def test_fault_overhead(benchmark):
    def run_all():
        healthy = _timed_run()
        with_failures = _timed_run(
            lambda ctx: (
                # post-completion failures: the work runs, then is lost
                ctx.fault_injector.fail_task(stage_kind="shuffle_map", times=5, when="after"),
                ctx.fault_injector.fail_task(stage_kind="result", times=5, when="after"),
            )
        )
        cache_loss = _timed_cache_loss_run()
        return healthy, with_failures, cache_loss

    healthy, with_failures, cache_loss = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    (h_res, h_wall, _hi, _hr) = healthy
    (f_res, f_wall, f_injected, f_retried) = with_failures
    (c_res, c_wall) = cache_loss

    assert f_res.itemsets == h_res.itemsets, "failures must not change results"
    assert c_res.itemsets == h_res.itemsets, "cache loss must not change results"
    assert f_injected == 10 and f_retried == 10

    rows = [
        ("healthy", h_wall, 0, "—"),
        ("10 injected task failures", f_wall, f_retried, f"{f_wall / h_wall:.2f}x"),
        ("cache dropped every pass", c_wall, 0, f"{c_wall / h_wall:.2f}x"),
    ]
    table = format_table(
        ["scenario", "wall (s)", "retried tasks", "overhead"],
        rows,
        title="Fault-tolerance overhead [mushroom, sup=35%] — identical outputs",
    )
    write_report("fault_overhead", table)
    benchmark.extra_info["failure_overhead"] = round(f_wall / h_wall, 2)
    benchmark.extra_info["cache_loss_overhead"] = round(c_wall / h_wall, 2)

    # recovery is cheap relative to replication-style redundancy: even
    # losing 10 completed tasks or dropping the whole cache every pass
    # costs far less than a 2x replicated execution would
    assert f_wall > h_wall * 0.9  # failures genuinely waste work now
    assert c_wall < 3.0 * h_wall
    assert f_wall < 2.5 * h_wall