"""Fig. 3(a-d) — per-iteration execution time, YAFIM vs MRApriori.

For each of the four benchmark datasets at the paper's support threshold,
reports per-pass execution time for both systems two ways:

* **measured**: wall seconds of the instrumented single-machine runs
  (MRApriori really re-reads the mini-DFS and writes spill/output files
  every pass; YAFIM scans its cached RDD), and
* **replayed**: the same measured tasks projected onto the paper's
  12-node/96-core cluster model, which adds the per-job Hadoop startup
  and distributed I/O costs the paper's absolute numbers include.

Shape assertions: identical outputs, YAFIM faster in total (measured and
replayed), and the replayed per-pass gap widest on late passes —
the paper highlights the last pass (37x on MushRoom, ~55x on Chess).
"""

from __future__ import annotations

import pytest

from conftest import FIG3_WORKLOADS, write_report
from repro.bench.harness import replay_mr_per_pass, replay_yafim_per_pass
from repro.bench.reporting import format_table, sparkline
from repro.cluster import PAPER_CLUSTER


@pytest.mark.parametrize("name", sorted(FIG3_WORKLOADS))
def test_fig3_per_iteration(benchmark, fig3_runs, name):
    run = benchmark.pedantic(lambda: fig3_runs[name], rounds=1, iterations=1)
    assert run.outputs_match, "paper: YAFIM results exactly match MRApriori"

    mr_replay = dict(replay_mr_per_pass(run.mrapriori, PAPER_CLUSTER))
    ya_replay = dict(replay_yafim_per_pass(run.yafim, PAPER_CLUSTER))

    rows = []
    for k, mr_s, ya_s, measured_speedup in run.per_pass():
        rows.append(
            (
                k,
                mr_s,
                ya_s,
                measured_speedup,
                mr_replay[k],
                ya_replay[k],
                mr_replay[k] / max(ya_replay[k], 1e-9),
            )
        )
    table = format_table(
        [
            "pass",
            "MR meas (s)",
            "YAFIM meas (s)",
            "meas x",
            "MR replay (s)",
            "YAFIM replay (s)",
            "replay x",
        ],
        rows,
        title=(
            f"Fig. 3 [{name}] sup={run.min_support:g}  "
            f"(YAFIM curve: {sparkline([r[5] for r in rows])} | "
            f"MR curve: {sparkline([r[4] for r in rows])})"
        ),
    )
    write_report(f"fig3_{name}", table)

    # --- shape assertions -------------------------------------------------
    total_meas_speedup = run.total_speedup
    total_replay_speedup = sum(mr_replay.values()) / sum(ya_replay.values())
    benchmark.extra_info["measured_speedup"] = round(total_meas_speedup, 2)
    benchmark.extra_info["replayed_speedup"] = round(total_replay_speedup, 2)

    assert total_meas_speedup > 1.0, "YAFIM must win in measured wall time"
    assert total_replay_speedup > 5.0, "cluster-replayed speedup far larger"
    # late passes: candidate sets shrink, YAFIM pass time collapses while
    # MR still pays the full job round-trip -> last-pass speedup largest
    last = rows[-1]
    first_phase2 = rows[1] if len(rows) > 1 else rows[0]
    assert last[6] >= first_phase2[6], "replayed speedup must grow toward late passes"
