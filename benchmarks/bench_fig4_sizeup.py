"""Fig. 4(a-d) — sizeup at fixed 48 cores.

The paper replicates each dataset 1-6x, fixes 48 cores (6 nodes x 8),
and shows MRApriori's time growing sharply/near-linearly while YAFIM's
stays nearly flat.  We rerun both systems on the replicated data (real
measured tasks) and replay onto the fixed 48-core cluster model.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import write_report
from repro.bench.harness import sizeup_series
from repro.bench.reporting import format_table, sparkline
from repro.cluster import ClusterSpec
from repro.datasets import (
    chess_like,
    mushroom_like,
    pumsb_star_like,
    t10i4d100k_like,
)

#: 48 cores, as the paper fixes for the sizeup study.  The MR overheads
#: are scaled down ~10x alongside the ~10-100x dataset shrinkage so that
#: neither cost term degenerates: at paper scale both job startup AND
#: per-iteration compute/I/O are material, and the rising MR curve comes
#: from the growing part.  (With full-size overheads on miniature data the
#: constant startup would flatten everything — see DESIGN.md.)
SIZEUP_SPEC = ClusterSpec(
    nodes=6, cores_per_node=8, mr_job_startup_s=0.4, mr_task_overhead_s=0.05
)

FACTORS = [1, 2, 3, 4, 5, 6]
#: T10I4's candidate volume makes each factor ~10x costlier than the other
#: datasets'; four factors keep the growth trend visible within budget.
T10I4_FACTORS = [1, 2, 3, 4]

#: Base sizes chosen so replication crosses the 48-core wave boundary
#: (tasks per stage grow past one scheduling wave) between factor 1 and 6.
WORKLOADS = {
    "mushroom": (lambda: mushroom_like(scale=0.05, seed=7), 0.35, None),
    # scale keeps the 0.25% threshold meaningful (>= 3 transactions);
    # depth capped at 2: the sizeup figure is about data volume, and the
    # full-depth T10I4 run at this relative density takes minutes/factor
    "t10i4d100k": (lambda: t10i4d100k_like(scale=0.012, seed=7), 0.0025, 2),
    "chess": (lambda: chess_like(scale=0.2, seed=7), 0.85, None),
    "pumsb_star": (lambda: pumsb_star_like(scale=0.01, seed=7), 0.65, None),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_fig4_sizeup(benchmark, name):
    make, sup, max_len = WORKLOADS[name]
    factors = T10I4_FACTORS if name == "t10i4d100k" else FACTORS
    series = benchmark.pedantic(
        lambda: sizeup_series(
            make, sup, factors, SIZEUP_SPEC,
            num_partitions=8, max_length=max_len, dfs_block_size=2 * 1024,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [(f, mr, ya, mr / max(ya, 1e-9)) for f, mr, ya in series]
    table = format_table(
        ["replication", "MRApriori (s)", "YAFIM (s)", "ratio"],
        rows,
        title=(
            f"Fig. 4 [{name}] sizeup @48 cores  "
            f"(MR: {sparkline([r[1] for r in rows])} | "
            f"YAFIM: {sparkline([r[2] for r in rows])})"
        ),
    )
    write_report(f"fig4_{name}", table)

    mr_times = np.array([mr for _f, mr, _y in series])
    ya_times = np.array([ya for _f, _m, ya in series])
    benchmark.extra_info["mr_growth"] = round(float(mr_times[-1] / mr_times[0]), 3)
    benchmark.extra_info["yafim_growth"] = round(float(ya_times[-1] / ya_times[0]), 3)

    # --- shape assertions: MR grows, YAFIM near-flat ----------------------
    assert mr_times[-1] > mr_times[0], "MR time must grow with data size"
    mr_abs_growth = mr_times[-1] - mr_times[0]
    ya_abs_growth = ya_times[-1] - ya_times[0]
    assert ya_abs_growth < 0.5 * mr_abs_growth, (
        f"YAFIM must stay much flatter: grew {ya_abs_growth:.3f}s "
        f"vs MR {mr_abs_growth:.3f}s"
    )
    # MR's direction of travel is up: most steps increase (measured task
    # durations jitter between the independent dual runs, so per-step
    # strict monotonicity is not asserted)
    diffs = np.diff(mr_times)
    assert (diffs > 0).sum() >= len(diffs) - 1, "at most one noisy down-step"
