"""Fig. 5(a-d) — node speedup, 4..12 nodes (32..96 cores).

The paper fixes each dataset and varies the worker nodes from 4 to 12,
showing YAFIM's time falling near-linearly with cores.  We replay the
Fig. 3 measured runs (many map tasks per stage, thanks to small DFS
blocks) on cluster models of growing size.
"""

from __future__ import annotations

import pytest

from conftest import FIG3_WORKLOADS, write_report
from repro.bench.harness import speedup_series
from repro.bench.reporting import format_table, sparkline
from repro.cluster import ClusterSpec

NODE_COUNTS = [4, 6, 8, 10, 12]


@pytest.mark.parametrize("name", sorted(FIG3_WORKLOADS))
def test_fig5_speedup(benchmark, fig3_runs, name):
    run = fig3_runs[name]
    series = benchmark.pedantic(
        lambda: speedup_series(run, ClusterSpec(), NODE_COUNTS),
        rounds=1,
        iterations=1,
    )
    ya_times = [ya for _c, _m, ya in series]
    rows = [
        (cores, ya, ya_times[0] * 32 / cores, mr)
        for (cores, mr, ya) in series
    ]
    table = format_table(
        ["cores", "YAFIM (s)", "ideal-linear (s)", "MRApriori (s)"],
        rows,
        title=(
            f"Fig. 5 [{name}] node speedup  "
            f"(YAFIM: {sparkline(ya_times)})"
        ),
    )
    write_report(f"fig5_{name}", table)

    # --- shape assertions ---------------------------------------------------
    # monotone: more nodes never slower
    assert all(a >= b - 1e-9 for a, b in zip(ya_times, ya_times[1:]))
    # near-linear scaling: 3x the cores buys a substantial fraction of 3x
    scaling = ya_times[0] / ya_times[-1]
    benchmark.extra_info["yafim_scaling_4to12_nodes"] = round(scaling, 2)
    assert scaling > 1.6, f"expected near-linear node speedup, got {scaling:.2f}x"
