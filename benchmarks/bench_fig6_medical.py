"""Fig. 6 — the medical application (Sup = 3%).

The paper mines a hospital case dataset at 3% support and reports YAFIM
~25x faster than MRApriori, with YAFIM's per-iteration time *shrinking*
as iterations proceed while MRApriori keeps paying the full job
round-trip.  We mine the synthetic medical-case dataset (correlated
co-prescription bundles; see repro.datasets.medical) the same way.
"""

from __future__ import annotations

from conftest import write_report
from repro.bench.harness import replay_mr_per_pass, replay_yafim_per_pass
from repro.bench.reporting import format_table, sparkline
from repro.cluster import PAPER_CLUSTER


def test_fig6_medical(benchmark, medical_run):
    run = benchmark.pedantic(lambda: medical_run, rounds=1, iterations=1)
    assert run.outputs_match

    mr_replay = dict(replay_mr_per_pass(run.mrapriori, PAPER_CLUSTER))
    ya_replay = dict(replay_yafim_per_pass(run.yafim, PAPER_CLUSTER))
    rows = [
        (k, mr_s, ya_s, mr_replay[k], ya_replay[k])
        for k, mr_s, ya_s, _x in run.per_pass()
    ]
    total_speedup = sum(mr_replay.values()) / sum(ya_replay.values())
    table = format_table(
        ["pass", "MR meas (s)", "YAFIM meas (s)", "MR replay (s)", "YAFIM replay (s)"],
        rows,
        title=(
            f"Fig. 6 [medical] sup=3%  replayed speedup {total_speedup:.1f}x  "
            f"(YAFIM: {sparkline([r[4] for r in rows])})"
        ),
    )
    write_report("fig6_medical", table)
    benchmark.extra_info["replayed_speedup"] = round(total_speedup, 1)

    # --- shape assertions ----------------------------------------------------
    assert run.total_speedup > 1.0
    # the paper's medical case shows an even larger gap than the benchmarks
    assert total_speedup > 10.0
    # "the execution time of each iteration becomes less and less with the
    # increase of iterations": YAFIM's replayed time collapses after its
    # peak (millisecond-scale jitter between late passes is tolerated, so
    # assert the collapse rather than strict monotonicity)
    ya_series = [ya_replay[k] for k, *_ in rows]
    peak = max(ya_series)
    assert ya_series[-1] < 0.5 * peak, "final pass must be far below the peak"
    second_half = ya_series[len(ya_series) // 2 :]
    first_half = ya_series[: len(ya_series) // 2]
    assert sum(second_half) / len(second_half) < sum(first_half) / len(first_half)
    # MR never drops below its job floor (startup + I/O round trip)
    assert min(mr_replay.values()) >= PAPER_CLUSTER.mr_job_startup_s
