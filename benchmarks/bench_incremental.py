"""Incremental sliding-window mining vs full re-mining.

The incremental tier (``repro.core.incremental``) maintains per-level
frequent itemsets, exact counts, and each level's negative border, so an
append of d transactions costs one delta pass over d rows per affected
level — the border bounds where the frequent family can change, and only
a border crossing (or a dictionary shift) forces a level re-mine.  The
claim: at small append fractions (<= 1% of the window, the sliding-feed
regime the tier exists for) an incremental update is **>= 5x** faster
than re-mining the appended window from scratch, while producing results
*identical* to a cold re-mine — same itemsets, same exact counts.

The sweep runs mushroom at the paper's operating support (0.35): for
each append fraction it builds fresh incremental state over the base
window, times the append, times a cold build over the appended window
with the same store and code path, and checks equality.  A sliding leg
(append + retire of the same size) is recorded for the steady-state
window-slide cost.  ``BENCH_incremental.json`` lands at the repo root.

Run standalone (CI uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke
    PYTHONPATH=src python benchmarks/bench_incremental.py

or under pytest-benchmark along with the other figures.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.incremental import IncrementalMiner
from repro.datasets import mushroom_like

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_incremental.json")

SUPPORT = 0.35
STORE = "bitmap"
SEED = 7
#: append sizes as fractions of the base window — all within the <= 1%
#: regime the >= 5x headline claim is scoped to
APPEND_FRACS = (0.002, 0.005, 0.01)


def _cold_build(window: list) -> tuple[float, IncrementalMiner]:
    """Full re-mine of ``window`` through the same store and code path
    the update uses, so the comparison isolates delta-maintenance."""
    t0 = time.perf_counter()
    miner = IncrementalMiner(window, SUPPORT, candidate_store=STORE)
    return time.perf_counter() - t0, miner


def _leg(base: list, delta: list) -> dict:
    """One append fraction: fresh state over base, timed append, timed
    cold re-mine of the appended window, equality check."""
    window = base + delta
    build_wall, miner = _cold_build(base)
    t0 = time.perf_counter()
    update = miner.append(delta)
    update_wall = time.perf_counter() - t0
    cold_wall, cold = _cold_build(window)

    # correctness invariant, independent of timing: the delta-maintained
    # state equals a cold re-mine of the same window, counts included
    incremental_itemsets = miner.itemsets()
    cold_itemsets = cold.itemsets()
    assert incremental_itemsets == cold_itemsets, (
        f"append of {len(delta)} rows diverged from the cold re-mine: "
        f"{len(incremental_itemsets)} vs {len(cold_itemsets)} itemsets"
    )

    return {
        "n_delta": len(delta),
        "append_frac": round(len(delta) / len(base), 5),
        "build_wall_s": round(build_wall, 4),
        "update_wall_s": round(update_wall, 4),
        "full_remine_wall_s": round(cold_wall, 4),
        "speedup_vs_remine": round(cold_wall / max(update_wall, 1e-9), 2),
        "full_rebuild": update.full_rebuild,
        "rebuild_reason": update.rebuild_reason,
        "levels_delta": update.levels_delta,
        "levels_remined": update.levels_remined,
        "delta_candidates": update.delta_candidates,
        "full_candidates": update.full_candidates,
        "n_itemsets": len(incremental_itemsets),
    }


def _slide_leg(base: list, delta: list) -> dict:
    """Steady-state slide: append d rows, retire the d oldest, checked
    against a cold build of the slid window."""
    window = base[len(delta):] + delta
    _, miner = _cold_build(base)
    t0 = time.perf_counter()
    miner.append(delta)
    miner.retire(len(delta))
    slide_wall = time.perf_counter() - t0
    cold_wall, cold = _cold_build(window)
    assert miner.itemsets() == cold.itemsets(), (
        f"slide of {len(delta)} rows diverged from the cold re-mine"
    )
    return {
        "n_delta": len(delta),
        "slide_wall_s": round(slide_wall, 4),
        "full_remine_wall_s": round(cold_wall, 4),
        "speedup_vs_remine": round(cold_wall / max(slide_wall, 1e-9), 2),
        "n_itemsets": len(cold.itemsets()),
    }


def run_incremental_bench(smoke: bool = False) -> dict:
    scale = 0.1 if smoke else 0.8
    base = mushroom_like(scale=scale, seed=SEED).transactions
    # deltas drawn i.i.d. from the same generator: genuinely new rows of
    # the same distribution, not replays of the base window
    pool = mushroom_like(scale=scale, seed=SEED + 4).transactions

    report = {
        "benchmark": "incremental",
        "smoke": smoke,
        "dataset": "mushroom",
        "min_support": SUPPORT,
        "candidate_store": STORE,
        "n_transactions": len(base),
        "append_fracs": list(APPEND_FRACS),
        "appends": [],
    }
    for frac in APPEND_FRACS:
        n_delta = max(1, int(len(base) * frac))
        report["appends"].append(_leg(base, pool[:n_delta]))
    slide_rows = max(1, int(len(base) * APPEND_FRACS[-1]))
    report["slide"] = _slide_leg(base, pool[:slide_rows])

    best = max(leg["speedup_vs_remine"] for leg in report["appends"])
    report["best_append_speedup"] = best

    # Every leg already asserted incremental == cold re-mine above.  The
    # timing invariant: some <= 1% append must beat the full re-mine even
    # at smoke scale; the >= 5x headline is only meaningful on the
    # full-size window, where the re-mine has real work to amortize.
    assert best > 1.0, (
        f"no append fraction beat a full re-mine (best {best}x)"
    )
    if not smoke:
        assert best >= 5.0, (
            f"incremental update {best}x < 5x over full re-mine on "
            f"mushroom at support {SUPPORT}"
        )

    with open(REPORT_PATH, "w") as f:
        json.dump(report, f, indent=2)
    return report


def test_incremental(benchmark):
    report = benchmark.pedantic(run_incremental_bench, rounds=1, iterations=1)
    benchmark.extra_info["best_append_speedup"] = report["best_append_speedup"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small window; assert correctness invariants and exit",
    )
    args = parser.parse_args(argv)
    report = run_incremental_bench(smoke=args.smoke)
    print(
        f"mushroom @ sup={report['min_support']} "
        f"({report['n_transactions']} txns, store={report['candidate_store']}):"
    )
    for leg in report["appends"]:
        mode = (
            f"rebuild ({leg['rebuild_reason']})"
            if leg["full_rebuild"]
            else f"{leg['levels_delta']} delta / {leg['levels_remined']} re-mined"
        )
        print(
            f"  +{leg['n_delta']} rows ({leg['append_frac']:.1%}): update "
            f"{leg['update_wall_s']}s vs re-mine {leg['full_remine_wall_s']}s "
            f"= {leg['speedup_vs_remine']}x  [{mode}]"
        )
    slide = report["slide"]
    print(
        f"  slide +/-{slide['n_delta']} rows: {slide['slide_wall_s']}s vs "
        f"re-mine {slide['full_remine_wall_s']}s = {slide['speedup_vs_remine']}x"
    )
    print(f"best append speedup: {report['best_append_speedup']}x")
    print(f"wrote {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
