"""Incremental sliding-window mining vs full re-mining.

The incremental tier (``repro.core.incremental``) maintains per-level
frequent itemsets, exact counts, and each level's negative border, so an
append of d transactions costs one delta pass over d rows per affected
level — the border bounds where the frequent family can change, and only
a border crossing (or a dictionary shift) forces a level re-mine.  The
claim: at small append fractions (<= 1% of the window, the sliding-feed
regime the tier exists for) an incremental update is **>= 5x** faster
than re-mining the appended window from scratch, while producing results
*identical* to a cold re-mine — same itemsets, same exact counts.

The sweep runs mushroom at the paper's operating support (0.35): for
each append fraction it builds fresh incremental state over the base
window, times the append, times a cold build over the appended window
with the same store and code path, and checks equality.  A sliding leg
(append + retire of the same size) is recorded for the steady-state
window-slide cost.  ``BENCH_incremental.json`` lands at the repo root.

Run standalone (CI uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_incremental.py --smoke
    PYTHONPATH=src python benchmarks/bench_incremental.py

or under pytest-benchmark along with the other figures.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.incremental import IncrementalMiner
from repro.datasets import mushroom_like

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_incremental.json")

SUPPORT = 0.35
STORE = "bitmap"
SEED = 7
#: append sizes as fractions of the base window — all within the <= 1%
#: regime the >= 5x headline claim is scoped to
APPEND_FRACS = (0.002, 0.005, 0.01)


def _cold_build(window: list) -> tuple[float, IncrementalMiner]:
    """Full re-mine of ``window`` through the same store and code path
    the update uses, so the comparison isolates delta-maintenance."""
    t0 = time.perf_counter()
    miner = IncrementalMiner(window, SUPPORT, candidate_store=STORE)
    return time.perf_counter() - t0, miner


def _leg(base: list, delta: list) -> dict:
    """One append fraction: fresh state over base, timed append, timed
    cold re-mine of the appended window, equality check."""
    window = base + delta
    build_wall, miner = _cold_build(base)
    t0 = time.perf_counter()
    update = miner.append(delta)
    update_wall = time.perf_counter() - t0
    cold_wall, cold = _cold_build(window)

    # correctness invariant, independent of timing: the delta-maintained
    # state equals a cold re-mine of the same window, counts included
    incremental_itemsets = miner.itemsets()
    cold_itemsets = cold.itemsets()
    assert incremental_itemsets == cold_itemsets, (
        f"append of {len(delta)} rows diverged from the cold re-mine: "
        f"{len(incremental_itemsets)} vs {len(cold_itemsets)} itemsets"
    )

    return {
        "n_delta": len(delta),
        "append_frac": round(len(delta) / len(base), 5),
        "build_wall_s": round(build_wall, 4),
        "update_wall_s": round(update_wall, 4),
        "full_remine_wall_s": round(cold_wall, 4),
        "speedup_vs_remine": round(cold_wall / max(update_wall, 1e-9), 2),
        "full_rebuild": update.full_rebuild,
        "rebuild_reason": update.rebuild_reason,
        "levels_delta": update.levels_delta,
        "levels_remined": update.levels_remined,
        "delta_candidates": update.delta_candidates,
        "full_candidates": update.full_candidates,
        "n_itemsets": len(incremental_itemsets),
    }


def _slide_leg(base: list, delta: list) -> dict:
    """Steady-state slide: append d rows, retire the d oldest, checked
    against a cold build of the slid window."""
    window = base[len(delta):] + delta
    _, miner = _cold_build(base)
    t0 = time.perf_counter()
    miner.append(delta)
    miner.retire(len(delta))
    slide_wall = time.perf_counter() - t0
    cold_wall, cold = _cold_build(window)
    assert miner.itemsets() == cold.itemsets(), (
        f"slide of {len(delta)} rows diverged from the cold re-mine"
    )
    return {
        "n_delta": len(delta),
        "slide_wall_s": round(slide_wall, 4),
        "full_remine_wall_s": round(cold_wall, 4),
        "speedup_vs_remine": round(cold_wall / max(slide_wall, 1e-9), 2),
        "n_itemsets": len(cold.itemsets()),
    }


#: streaming leg: how many tiny appends the ingest buffer coalesces
K_APPENDS = 20
#: per-append delta size as a fraction of the base window
STREAM_FRAC = 0.001


def _streaming_leg(base: list, pool: list, smoke: bool) -> dict:
    """The ingest-buffer claim: folding K tiny appends into ONE delta
    update beats K individual update passes at the same final window.

    Each individual pass pays the per-update fixed cost (level walk,
    candidate regeneration, border bookkeeping) for a handful of rows;
    the coalesced pass pays it once for K times the rows.  Both paths
    must land on identical itemsets — coalescing is a latency/ingest
    trade, never a correctness one.
    """
    per = max(1, int(len(base) * STREAM_FRAC))
    deltas = [pool[i * per : (i + 1) * per] for i in range(K_APPENDS)]
    deltas = [d for d in deltas if d]
    flat = [txn for delta in deltas for txn in delta]

    _, individual = _cold_build(base)
    t0 = time.perf_counter()
    for delta in deltas:
        individual.append(delta)
    individual_wall = time.perf_counter() - t0

    _, coalesced = _cold_build(base)
    t0 = time.perf_counter()
    coalesced.append(flat)
    coalesced_wall = time.perf_counter() - t0

    assert individual.itemsets() == coalesced.itemsets(), (
        f"coalesced append of {len(flat)} rows diverged from "
        f"{len(deltas)} individual passes over the same rows"
    )
    speedup = round(individual_wall / max(coalesced_wall, 1e-9), 2)
    assert speedup > 1.0, (
        f"coalescing {len(deltas)} appends did not beat individual "
        f"passes ({speedup}x)"
    )
    if not smoke:
        assert speedup >= 5.0, (
            f"coalesced ingest {speedup}x < 5x over {len(deltas)} "
            f"individual update passes"
        )
    return {
        "k_appends": len(deltas),
        "rows_per_append": per,
        "individual_wall_s": round(individual_wall, 4),
        "coalesced_wall_s": round(coalesced_wall, 4),
        "coalesce_speedup": speedup,
        "n_itemsets": len(coalesced.itemsets()),
    }


def _policy_leg(base: list, pool: list) -> dict:
    """Window-policy invariant through the serving layer: a stream of
    appends under ``max_window`` never grows past the bound, and the
    final warm result equals a cold mine of the policy-trimmed tail."""
    from repro.core.registry import MiningConfig
    from repro.serve import MiningService

    max_window = len(base)
    per = max(1, int(len(base) * STREAM_FRAC) * 4)
    cfg = MiningConfig(
        min_support=SUPPORT, backend="serial", incremental=True,
        candidate_store=STORE,
    )
    with MiningService(n_workers=1, result_ttl_s=60.0) as svc:
        svc.create_dataset("stream", base, max_window=max_window)
        peak = len(base)
        for i in range(8):
            delta = pool[i * per : (i + 1) * per]
            if not delta:
                break
            info = svc.append_dataset("stream", delta)
            assert info["n_transactions"] <= max_window, (
                f"window {info['n_transactions']} exceeded "
                f"max_window={max_window}"
            )
            peak = max(peak, info["n_transactions"])
        job = svc.submit(None, cfg, dataset_id="stream")
        assert job.wait(600.0)
        entry = svc.dataset_registry.get("stream")
        window = list(entry.transactions)
        retired = entry.retires
    _, cold = _cold_build(window)
    assert job.result.itemsets == cold.itemsets(), (
        "post-retire warm result diverged from a cold mine of the "
        "trimmed window"
    )
    return {
        "max_window": max_window,
        "peak_window": peak,
        "retired_transactions": retired,
        "n_itemsets": len(cold.itemsets()),
    }


def run_incremental_bench(smoke: bool = False, streaming: bool = False) -> dict:
    scale = 0.1 if smoke else 0.8
    base = mushroom_like(scale=scale, seed=SEED).transactions
    # deltas drawn i.i.d. from the same generator: genuinely new rows of
    # the same distribution, not replays of the base window
    pool = mushroom_like(scale=scale, seed=SEED + 4).transactions

    report = {
        "benchmark": "incremental",
        "smoke": smoke,
        "dataset": "mushroom",
        "min_support": SUPPORT,
        "candidate_store": STORE,
        "n_transactions": len(base),
        "append_fracs": list(APPEND_FRACS),
        "appends": [],
    }
    for frac in APPEND_FRACS:
        n_delta = max(1, int(len(base) * frac))
        report["appends"].append(_leg(base, pool[:n_delta]))
    slide_rows = max(1, int(len(base) * APPEND_FRACS[-1]))
    report["slide"] = _slide_leg(base, pool[:slide_rows])
    if streaming:
        report["streaming"] = _streaming_leg(base, pool, smoke)
        report["streaming"]["policy"] = _policy_leg(base, pool)

    best = max(leg["speedup_vs_remine"] for leg in report["appends"])
    report["best_append_speedup"] = best

    # Every leg already asserted incremental == cold re-mine above.  The
    # timing invariant: some <= 1% append must beat the full re-mine even
    # at smoke scale; the >= 5x headline is only meaningful on the
    # full-size window, where the re-mine has real work to amortize.
    assert best > 1.0, (
        f"no append fraction beat a full re-mine (best {best}x)"
    )
    if not smoke:
        assert best >= 5.0, (
            f"incremental update {best}x < 5x over full re-mine on "
            f"mushroom at support {SUPPORT}"
        )

    with open(REPORT_PATH, "w") as f:
        json.dump(report, f, indent=2)
    return report


def test_incremental(benchmark):
    report = benchmark.pedantic(run_incremental_bench, rounds=1, iterations=1)
    benchmark.extra_info["best_append_speedup"] = report["best_append_speedup"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small window; assert correctness invariants and exit",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="also run the streaming-ingest leg: coalesced vs individual "
        "appends, plus the max_window policy invariant",
    )
    args = parser.parse_args(argv)
    report = run_incremental_bench(smoke=args.smoke, streaming=args.streaming)
    print(
        f"mushroom @ sup={report['min_support']} "
        f"({report['n_transactions']} txns, store={report['candidate_store']}):"
    )
    for leg in report["appends"]:
        mode = (
            f"rebuild ({leg['rebuild_reason']})"
            if leg["full_rebuild"]
            else f"{leg['levels_delta']} delta / {leg['levels_remined']} re-mined"
        )
        print(
            f"  +{leg['n_delta']} rows ({leg['append_frac']:.1%}): update "
            f"{leg['update_wall_s']}s vs re-mine {leg['full_remine_wall_s']}s "
            f"= {leg['speedup_vs_remine']}x  [{mode}]"
        )
    slide = report["slide"]
    print(
        f"  slide +/-{slide['n_delta']} rows: {slide['slide_wall_s']}s vs "
        f"re-mine {slide['full_remine_wall_s']}s = {slide['speedup_vs_remine']}x"
    )
    if "streaming" in report:
        stream = report["streaming"]
        print(
            f"  coalesce {stream['k_appends']}x{stream['rows_per_append']} rows: "
            f"{stream['coalesced_wall_s']}s vs {stream['individual_wall_s']}s "
            f"individual = {stream['coalesce_speedup']}x"
        )
        policy = stream["policy"]
        print(
            f"  policy max_window={policy['max_window']}: peak "
            f"{policy['peak_window']}, retired "
            f"{policy['retired_transactions']} (warm == cold re-mine)"
        )
    print(f"best append speedup: {report['best_append_speedup']}x")
    print(f"wrote {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
