"""Extension bench — the parallel-miner design space on one engine.

The paper's related work spans three parallel FIM designs: level-wise
Apriori (YAFIM), prefix-distributed Eclat (Dist-Eclat) and sharded
pattern growth (PFP).  All three are implemented on this library's
engine; this bench runs them on the same workloads and reports the
trade-offs the literature describes: shuffle rounds vs candidate work vs
local-memory pressure.  Outputs must be identical everywhere.
"""

from __future__ import annotations

import time

import pytest

from conftest import write_report
from repro.bench.reporting import format_table
from repro.core import DistEclat, Yafim
from repro.core.pfp import PFP
from repro.datasets import medical_cases, mushroom_like, retail_like
from repro.engine import Context

WORKLOADS = {
    "mushroom(dense)": (lambda: mushroom_like(scale=0.08, seed=7), 0.35),
    "medical(bundled)": (lambda: medical_cases(n_cases=1500, seed=7), 0.05),
    "retail(powerlaw)": (lambda: retail_like(n_transactions=2000, n_items=400, seed=7), 0.03),
}


def _run_all(make, sup):
    ds = make()
    out = {}
    for label, factory in (
        ("yafim", lambda c: Yafim(c, num_partitions=8)),
        ("dist_eclat", lambda c: DistEclat(c, num_partitions=8)),
        ("pfp", lambda c: PFP(c, n_groups=8, num_partitions=8)),
    ):
        with Context(backend="serial") as ctx:
            t0 = time.perf_counter()
            result = factory(ctx).run(ds.transactions, sup)
            wall = time.perf_counter() - t0
            shuffles = len(
                {t.stage_id for t in ctx.event_log.tasks if t.kind == "shuffle_map"}
            )
        out[label] = (result, wall, shuffles)
    return out


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_parallel_miners(benchmark, name):
    make, sup = WORKLOADS[name]
    results = benchmark.pedantic(lambda: _run_all(make, sup), rounds=1, iterations=1)

    reference = results["yafim"][0].itemsets
    rows = []
    for label, (result, wall, shuffles) in results.items():
        assert result.itemsets == reference, f"{label} output differs"
        rows.append((label, result.num_itemsets, len(result.iterations), shuffles, wall))
    table = format_table(
        ["miner", "itemsets", "phases", "shuffle rounds", "wall (s)"],
        rows,
        title=f"Parallel miners [{name}] sup={sup:g} — identical outputs",
    )
    write_report(f"parallel_miners_{name.split('(')[0]}", table)

    # structural claims from the literature:
    yafim_shuffles = results["yafim"][2]
    assert results["dist_eclat"][2] == 1, "Dist-Eclat: single shuffle"
    assert results["pfp"][2] == 2, "PFP: counting + sharding"
    assert yafim_shuffles >= 3, "YAFIM: one shuffle per level"
