"""Extension bench — serving-layer throughput and memoization payoff.

The serving layer's claim is the YAFIM claim moved up one level: repeated
work over resident data beats re-doing the setup per request.  Two
measurements back it:

* jobs/sec under concurrent submission through the in-process client vs
  the same jobs run strictly one-shot (fresh context each time).  Mining
  is pure-Python CPU work, so GIL-bound worker threads cannot beat
  sequential wall-clock — the claim under test is *bounded overhead*:
  queueing + lifecycle + caching must cost little even in the worst case
  for threads;
* cold-vs-memoized latency for an identical resubmission — the result
  cache's whole value proposition, and where the >=5x acceptance bar sits.

On top sits the **sharded-router bench** (``main()`` /
``BENCH_serve_shards.json``): a closed-loop multi-client workload of K
distinct datasets resubmitted round-robin, run against a 1-shard and an
N-shard :class:`~repro.serve.router.ShardRouter` with the *same total
worker count* and a per-shard result cache smaller than K.  One shard
must cycle K keys through its LRU (capacity misses -> re-mining); N
shards consistent-hash the keyspace so each holds its share resident —
cache *affinity*, the router's reason to exist.  The report records
jobs/s, p50/p95/p99 latency and reject rate per leg, plus an overload
leg (queue_limit=1) proving admission control answers 429 while queue
depth stays bounded.

Run standalone (CI uses ``--smoke``)::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --shards 4
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

from repro.bench.reporting import format_table
from repro.core.api import mine_frequent_itemsets
from repro.core.registry import MiningConfig
from repro.datasets import mushroom_like
from repro.serve import LocalClient, MiningService, RejectedError, ShardRouter

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_PATH = os.path.join(REPO_ROOT, "BENCH_serve_shards.json")

#: distinct supports -> distinct jobs (no memoization inside the sweep)
SUPPORTS = (0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75)
N_WORKERS = 4


def _configs():
    return [MiningConfig(min_support=s, backend="serial") for s in SUPPORTS]


def _one_shot_baseline(txns) -> float:
    t0 = time.perf_counter()
    for cfg in _configs():
        mine_frequent_itemsets(txns, config=cfg)
    return time.perf_counter() - t0


def _served_concurrent(txns) -> tuple[float, dict]:
    with MiningService(n_workers=N_WORKERS) as svc:
        client = LocalClient(svc)
        results = {}

        def run_one(cfg):
            results[cfg.min_support] = client.mine(txns, cfg, timeout=300)

        t0 = time.perf_counter()
        threads = [threading.Thread(target=run_one, args=(c,)) for c in _configs()]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0

        # identical resubmission: result-cache hit
        cfg = _configs()[0]
        t0 = time.perf_counter()
        cold_equal = client.mine(txns, cfg, timeout=300)
        memo_s = time.perf_counter() - t0
        assert cold_equal.itemsets == results[cfg.min_support].itemsets
        stats = svc.metrics()
    return elapsed, {"memo_s": memo_s, "results": results, "metrics": stats}


def test_serve_throughput(benchmark):
    from conftest import write_report

    ds = mushroom_like(scale=0.05, seed=11)
    txns = ds.transactions

    def run():
        base_s = _one_shot_baseline(txns)
        served_s, extra = _served_concurrent(txns)
        return base_s, served_s, extra

    base_s, served_s, extra = benchmark.pedantic(run, rounds=1, iterations=1)

    n = len(SUPPORTS)
    cold_per_job = base_s / n
    memo_s = extra["memo_s"]
    rows = [
        ("one-shot sequential", n, base_s, n / base_s, ""),
        ("served, concurrent", n, served_s, n / served_s,
         f"{(served_s / base_s - 1) * 100:+.0f}% wall vs one-shot"),
        ("memoized resubmit", 1, memo_s, "",
         f"{cold_per_job / max(memo_s, 1e-9):.0f}x vs cold job"),
    ]
    table = format_table(
        ["mode", "jobs", "wall (s)", "jobs/s", "speedup"],
        rows,
        title=(
            f"Serving throughput [mushroom scale=0.05] "
            f"{N_WORKERS} workers, supports {SUPPORTS[0]:g}..{SUPPORTS[-1]:g}"
        ),
    )
    hit_rate = extra["metrics"]["result_cache"]["hit_rate"]
    table += f"\nresult-cache hit rate after resubmit: {hit_rate:.2f}"
    write_report("serve_throughput", table)

    # serving overhead stays bounded, and memoization must be >= 5x
    assert served_s < base_s * 1.5, "serving layer overhead exceeds 50%"
    assert cold_per_job / max(memo_s, 1e-9) >= 5.0, "memoized rerun < 5x faster"


# ---------------------------------------------------------------------------
# Sharded-router bench: cache affinity under a repeat-dataset workload
# ---------------------------------------------------------------------------

#: distinct datasets in the workload; must exceed RESULT_CACHE_ENTRIES so
#: a single shard's LRU thrashes while N shards' partitions each fit
K_DATASETS = 12
#: per-shard result-cache capacity (the thrash/fit pivot)
RESULT_CACHE_ENTRIES = 4
WORKERS_TOTAL = 8
N_CLIENTS = 6
SHARD_QUEUE_LIMIT = 64
SHARD_SUPPORT = 0.35


def _percentile(sorted_vals: list, q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, round(q * (len(sorted_vals) - 1)))
    return sorted_vals[idx]


def _shard_datasets(smoke: bool) -> list:
    scale = 0.02 if smoke else 0.04
    return [
        mushroom_like(scale=scale, seed=100 + i).transactions
        for i in range(K_DATASETS)
    ]


def _closed_loop_leg(
    n_shards: int, datasets: list, jobs_per_client: int
) -> dict:
    """N closed-loop clients, each cycling the dataset list round-robin
    (offset by client id), against a router with ``n_shards`` shards and
    the same total worker count.  Returns throughput + latency stats."""
    cfg = MiningConfig(min_support=SHARD_SUPPORT, backend="serial")
    latencies: list[float] = []
    rejects = 0
    lock = threading.Lock()
    router = ShardRouter(
        n_shards=n_shards,
        n_workers=max(1, WORKERS_TOTAL // n_shards),
        queue_limit=SHARD_QUEUE_LIMIT,
        result_cache_entries=RESULT_CACHE_ENTRIES,
    )
    client = LocalClient(router)
    try:
        def run_client(cid: int):
            nonlocal rejects
            for j in range(jobs_per_client):
                txns = datasets[(cid + j) % len(datasets)]
                t0 = time.perf_counter()
                while True:
                    try:
                        job = router.submit(txns, cfg)
                        break
                    except RejectedError as err:
                        with lock:
                            rejects += 1
                        time.sleep(err.retry_after_s)
                client.wait(job.job_id, 300)
                with lock:
                    latencies.append(time.perf_counter() - t0)

        t0 = time.perf_counter()
        threads = [
            threading.Thread(target=run_client, args=(i,)) for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        metrics = router.metrics()
    finally:
        router.shutdown()

    jobs = len(latencies)
    latencies.sort()
    hits = sum(
        s["service"]["result_cache"]["hits"] for s in metrics["shards"]
    )
    misses = sum(
        s["service"]["result_cache"]["misses"] for s in metrics["shards"]
    )
    return {
        "shards": n_shards,
        "workers_per_shard": max(1, WORKERS_TOTAL // n_shards),
        "jobs": jobs,
        "wall_seconds": round(wall, 4),
        "jobs_per_s": round(jobs / wall, 2),
        "p50_s": round(_percentile(latencies, 0.50), 5),
        "p95_s": round(_percentile(latencies, 0.95), 5),
        "p99_s": round(_percentile(latencies, 0.99), 5),
        "rejects": rejects,
        "reject_rate": round(rejects / max(1, jobs + rejects), 4),
        "result_cache_hit_rate": round(hits / max(1, hits + misses), 4),
        "jobs_spilled": metrics["router"]["jobs_spilled"],
    }


def _routing_determinism(datasets: list, n_shards: int) -> dict:
    """Same fingerprint -> same home shard, across router instances."""
    r1 = ShardRouter(n_shards=n_shards, n_workers=1)
    r2 = ShardRouter(n_shards=n_shards, n_workers=1)
    try:
        homes1 = [r1.home_shard(d) for d in datasets]
        homes2 = [r2.home_shard(d) for d in datasets]
        assert homes1 == homes2, "home-shard assignment is not deterministic"
        spread = {h: homes1.count(h) for h in set(homes1)}
    finally:
        r1.shutdown()
        r2.shutdown()
    return {"deterministic": True, "spread": spread}


def _overload_leg(datasets: list) -> dict:
    """queue_limit=1, 1 slow worker, a burst of distinct jobs: admission
    control must answer with rejections while queue depth stays bounded."""
    cfg = MiningConfig(min_support=0.2, backend="serial")
    router = ShardRouter(n_shards=1, n_workers=1, queue_limit=1)
    rejected = 0
    max_depth = 0
    accepted = []
    try:
        for txns in datasets:
            try:
                accepted.append(router.submit(txns, cfg))
            except RejectedError as err:
                rejected += 1
                assert err.retry_after_s > 0
            max_depth = max(max_depth, router.queue_depth())
        for job in accepted:
            router.wait(job.job_id, 300)
        jobs_rejected = router.metrics()["router"]["jobs_rejected"]
    finally:
        router.shutdown()
    assert rejected > 0, "overload produced no 429s"
    assert max_depth <= 1, f"queue depth {max_depth} exceeded queue_limit=1"
    return {
        "submitted": len(datasets),
        "accepted": len(accepted),
        "rejected": rejected,
        "router_jobs_rejected": jobs_rejected,
        "max_queue_depth": max_depth,
    }


def run_shard_bench(shards: int = 4, smoke: bool = False) -> dict:
    datasets = _shard_datasets(smoke)
    jobs_per_client = 6 if smoke else 24
    report = {
        "benchmark": "serve_shards",
        "smoke": smoke,
        "k_datasets": K_DATASETS,
        "result_cache_entries_per_shard": RESULT_CACHE_ENTRIES,
        "workers_total": WORKERS_TOTAL,
        "clients": N_CLIENTS,
        "jobs_per_client": jobs_per_client,
        "routing": _routing_determinism(datasets, shards),
        "legs": {},
    }
    for n in (1, shards):
        report["legs"][str(n)] = _closed_loop_leg(n, datasets, jobs_per_client)
    one, many = report["legs"]["1"], report["legs"][str(shards)]
    report["throughput_speedup"] = round(
        many["jobs_per_s"] / max(one["jobs_per_s"], 1e-9), 2
    )
    report["overload"] = _overload_leg(datasets)

    # acceptance: affinity must buy >= 2x jobs/s on the repeat-dataset
    # workload (smoke still records the ratio but does not gate — at
    # tiny scale fixed overheads dominate the cache effect)
    if not smoke:
        assert report["throughput_speedup"] >= 2.0, (
            f"{shards}-shard throughput only "
            f"{report['throughput_speedup']}x of 1 shard"
        )
    with open(REPORT_PATH, "w") as f:
        json.dump(report, f, indent=2)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small datasets, fewer jobs; skips the >=2x gate",
    )
    args = parser.parse_args(argv)
    report = run_shard_bench(shards=args.shards, smoke=args.smoke)
    rows = [
        (
            leg["shards"], leg["jobs"], leg["wall_seconds"], leg["jobs_per_s"],
            leg["p50_s"], leg["p95_s"], leg["p99_s"],
            leg["reject_rate"], leg["result_cache_hit_rate"],
        )
        for leg in report["legs"].values()
    ]
    print(format_table(
        ["shards", "jobs", "wall (s)", "jobs/s", "p50 (s)", "p95 (s)",
         "p99 (s)", "rej rate", "hit rate"],
        rows,
        title=(
            f"Sharded serving [K={report['k_datasets']} datasets, "
            f"cache={report['result_cache_entries_per_shard']}/shard, "
            f"{report['workers_total']} workers total]"
        ),
    ))
    ov = report["overload"]
    print(
        f"throughput speedup: {report['throughput_speedup']}x   "
        f"overload: {ov['rejected']}/{ov['submitted']} rejected, "
        f"max queue depth {ov['max_queue_depth']}"
    )
    print(f"serve shards ok: report -> {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
