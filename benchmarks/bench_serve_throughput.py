"""Extension bench — serving-layer throughput and memoization payoff.

The serving layer's claim is the YAFIM claim moved up one level: repeated
work over resident data beats re-doing the setup per request.  Two
measurements back it:

* jobs/sec under concurrent submission through the in-process client vs
  the same jobs run strictly one-shot (fresh context each time).  Mining
  is pure-Python CPU work, so GIL-bound worker threads cannot beat
  sequential wall-clock — the claim under test is *bounded overhead*:
  queueing + lifecycle + caching must cost little even in the worst case
  for threads;
* cold-vs-memoized latency for an identical resubmission — the result
  cache's whole value proposition, and where the >=5x acceptance bar sits.
"""

from __future__ import annotations

import threading
import time

from conftest import write_report
from repro.bench.reporting import format_table
from repro.core.api import mine_frequent_itemsets
from repro.core.registry import MiningConfig
from repro.datasets import mushroom_like
from repro.serve import LocalClient, MiningService

#: distinct supports -> distinct jobs (no memoization inside the sweep)
SUPPORTS = (0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75)
N_WORKERS = 4


def _configs():
    return [MiningConfig(min_support=s, backend="serial") for s in SUPPORTS]


def _one_shot_baseline(txns) -> float:
    t0 = time.perf_counter()
    for cfg in _configs():
        mine_frequent_itemsets(txns, config=cfg)
    return time.perf_counter() - t0


def _served_concurrent(txns) -> tuple[float, dict]:
    with MiningService(n_workers=N_WORKERS) as svc:
        client = LocalClient(svc)
        results = {}

        def run_one(cfg):
            results[cfg.min_support] = client.mine(txns, cfg, timeout=300)

        t0 = time.perf_counter()
        threads = [threading.Thread(target=run_one, args=(c,)) for c in _configs()]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0

        # identical resubmission: result-cache hit
        cfg = _configs()[0]
        t0 = time.perf_counter()
        cold_equal = client.mine(txns, cfg, timeout=300)
        memo_s = time.perf_counter() - t0
        assert cold_equal.itemsets == results[cfg.min_support].itemsets
        stats = svc.metrics()
    return elapsed, {"memo_s": memo_s, "results": results, "metrics": stats}


def test_serve_throughput(benchmark):
    ds = mushroom_like(scale=0.05, seed=11)
    txns = ds.transactions

    def run():
        base_s = _one_shot_baseline(txns)
        served_s, extra = _served_concurrent(txns)
        return base_s, served_s, extra

    base_s, served_s, extra = benchmark.pedantic(run, rounds=1, iterations=1)

    n = len(SUPPORTS)
    cold_per_job = base_s / n
    memo_s = extra["memo_s"]
    rows = [
        ("one-shot sequential", n, base_s, n / base_s, ""),
        ("served, concurrent", n, served_s, n / served_s,
         f"{(served_s / base_s - 1) * 100:+.0f}% wall vs one-shot"),
        ("memoized resubmit", 1, memo_s, "",
         f"{cold_per_job / max(memo_s, 1e-9):.0f}x vs cold job"),
    ]
    table = format_table(
        ["mode", "jobs", "wall (s)", "jobs/s", "speedup"],
        rows,
        title=(
            f"Serving throughput [mushroom scale=0.05] "
            f"{N_WORKERS} workers, supports {SUPPORTS[0]:g}..{SUPPORTS[-1]:g}"
        ),
    )
    hit_rate = extra["metrics"]["result_cache"]["hit_rate"]
    table += f"\nresult-cache hit rate after resubmit: {hit_rate:.2f}"
    write_report("serve_throughput", table)

    # serving overhead stays bounded, and memoization must be >= 5x
    assert served_s < base_s * 1.5, "serving layer overhead exceeds 50%"
    assert cold_per_job / max(memo_s, 1e-9) >= 5.0, "memoized rerun < 5x faster"
