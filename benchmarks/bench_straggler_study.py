"""Extension bench — straggler sensitivity via the discrete-event replay.

The cheap list-schedule replay assumes every task runs at its measured
speed; real clusters see stragglers (slow disks, hot nodes) that stretch
stage makespans disproportionately — the phenomenon speculative
execution exists for.  This bench feeds YAFIM's *measured* task set into
the event-driven simulator and sweeps the straggler rate, quantifying
how much headroom the paper's near-linear speedup story has before
stragglers erase it.
"""

from __future__ import annotations

from conftest import write_report
from repro.bench.reporting import format_table, sparkline
from repro.cluster import PAPER_CLUSTER, SimTask, simulate_stage_events
from repro.core import Yafim
from repro.datasets import mushroom_like
from repro.engine import Context

RATES = [0.0, 0.05, 0.1, 0.2, 0.4]
FACTOR = 5.0  # a straggling task runs 5x slower


def _measured_tasks():
    ds = mushroom_like(scale=0.12, seed=7)
    with Context(backend="serial") as ctx:
        Yafim(ctx, num_partitions=64).run(ds.transactions, 0.35)
        return [
            SimTask(duration_s=t.duration_s, input_bytes=t.input_bytes)
            for t in ctx.event_log.tasks
            if t.kind in ("shuffle_map", "result")
        ]


def test_straggler_study(benchmark):
    tasks = benchmark.pedantic(_measured_tasks, rounds=1, iterations=1)
    assert len(tasks) > 96, "need multiple scheduling waves for the study"

    rows = []
    baseline = None
    for rate in RATES:
        stats = simulate_stage_events(tasks, PAPER_CLUSTER, rate, FACTOR, seed=11)
        if baseline is None:
            baseline = stats.makespan_s
        rows.append(
            (
                f"{rate:.0%}",
                stats.straggled_tasks,
                stats.makespan_s,
                stats.makespan_s / baseline,
                f"{stats.utilization:.0%}",
            )
        )
    table = format_table(
        ["straggler rate", "straggled tasks", "makespan (s)", "stretch", "utilization"],
        rows,
        title=(
            "Straggler sensitivity [mushroom tasks on the paper cluster, 5x slowdown]  "
            f"({sparkline([r[2] for r in rows])})"
        ),
    )
    write_report("straggler_study", table)

    stretches = [r[3] for r in rows]
    benchmark.extra_info["stretch_at_40pct"] = round(stretches[-1], 2)
    # more stragglers never help, and the curve genuinely moves
    assert all(a <= b + 1e-9 for a, b in zip(stretches, stretches[1:]))
    assert stretches[-1] > 1.5
