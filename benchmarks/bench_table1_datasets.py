"""Table I — properties of the benchmark datasets.

Regenerates the paper's Table I: for each dataset, the generated item
universe and transaction count at full scale versus the paper's reported
values, plus the benchmark-scale variants the other benches mine.
"""

from __future__ import annotations

import pytest

from conftest import FIG3_WORKLOADS, write_report
from repro.bench.reporting import format_table
from repro.datasets import (
    PAPER_TABLE_1,
    chess_like,
    mushroom_like,
    pumsb_star_like,
    t10i4d100k_like,
)

FULL_SCALE = {
    "mushroom": lambda: mushroom_like(scale=1.0, seed=7),
    "t10i4d100k": lambda: t10i4d100k_like(scale=1.0, seed=7),
    "chess": lambda: chess_like(scale=1.0, seed=7),
    "pumsb_star": lambda: pumsb_star_like(scale=1.0, seed=7),
}


@pytest.mark.parametrize("name", sorted(FULL_SCALE))
def test_table1_full_scale_generation(benchmark, name):
    """Benchmark dataset generation at paper scale and check Table I."""
    ds = benchmark.pedantic(FULL_SCALE[name], rounds=1, iterations=1)
    paper = PAPER_TABLE_1[name]
    stats = ds.stats()
    assert stats.n_transactions == paper.n_transactions
    # generated item universe within 20% of the paper's (the exact value
    # for attribute-style sets; the Quest set realises a subset of codes)
    assert stats.n_distinct_items <= ds.params["n_items"]
    assert stats.n_distinct_items >= 0.5 * paper.n_items
    benchmark.extra_info["items"] = stats.n_distinct_items
    benchmark.extra_info["transactions"] = stats.n_transactions


def test_table1_report(benchmark):
    """Emit the Table I reproduction report."""

    def build():
        rows = []
        for name in sorted(FULL_SCALE):
            paper = PAPER_TABLE_1[name]
            full = FULL_SCALE[name]()
            bench_ds = FIG3_WORKLOADS[name][0]()
            fs, bs = full.stats(), bench_ds.stats()
            rows.append(
                (
                    paper.name,
                    paper.n_items,
                    fs.n_distinct_items,
                    paper.n_transactions,
                    fs.n_transactions,
                    bs.n_transactions,
                    f"{paper.min_support:g}",
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        [
            "dataset",
            "items (paper)",
            "items (gen)",
            "txns (paper)",
            "txns (gen full)",
            "txns (bench scale)",
            "minsup",
        ],
        rows,
        title="Table I — dataset properties (paper vs generated)",
    )
    write_report("table1_datasets", table)
    assert len(rows) == 4
