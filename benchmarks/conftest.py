"""Shared fixtures for the paper-reproduction benchmarks.

Figure 3, 5 and 6 all start from the same paired YAFIM/MRApriori runs, so
those are computed once per session and shared.  Every benchmark writes
its formatted table to ``benchmarks/results/<name>.txt`` (and stdout) so
EXPERIMENTS.md can be regenerated from a run.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import run_comparison
from repro.datasets import (
    chess_like,
    medical_cases,
    mushroom_like,
    pumsb_star_like,
    t10i4d100k_like,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Benchmark-scale dataset builders with the paper's support thresholds.
#: scale shrinks transaction counts (structure preserved) so the whole
#: suite runs in minutes on one machine; see DESIGN.md.
FIG3_WORKLOADS = {
    "mushroom": (lambda: mushroom_like(scale=0.12, seed=7), 0.35),
    "t10i4d100k": (lambda: t10i4d100k_like(scale=0.02, seed=7), 0.0025),
    "chess": (lambda: chess_like(scale=1.0, seed=7), 0.85),
    "pumsb_star": (lambda: pumsb_star_like(scale=0.03, seed=7), 0.65),
}

#: Small DFS blocks give every stage dozens of map tasks — the miniature
#: analogue of the paper's many-HDFS-block inputs — so the cluster replay
#: has parallelism to scale across 32..96 cores (Fig. 5) and scheduling
#: waves that grow with data size (Fig. 4).
FIG3_BLOCK_SIZE = 1024
FIG3_PARTITIONS = 64


@pytest.fixture(scope="session")
def fig3_runs():
    """dataset name -> ComparisonRun at the paper's support threshold."""
    runs = {}
    for name, (make, sup) in FIG3_WORKLOADS.items():
        runs[name] = run_comparison(
            make(), sup, num_partitions=FIG3_PARTITIONS, dfs_block_size=FIG3_BLOCK_SIZE
        )
    return runs


@pytest.fixture(scope="session")
def medical_run():
    ds = medical_cases(n_cases=4000, seed=7)
    return run_comparison(
        ds, 0.03, num_partitions=FIG3_PARTITIONS, dfs_block_size=4 * 1024
    )


def write_report(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")
    print(f"\n{text}\n")
