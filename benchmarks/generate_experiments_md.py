#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the benchmark result tables.

Run the benchmark suite first (it writes ``benchmarks/results/*.txt``),
then::

    python benchmarks/generate_experiments_md.py

The paper-side numbers below are transcribed from the evaluation section
(section V); the measured side is whatever the last benchmark run
produced on this machine.
"""

from __future__ import annotations

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS = os.path.join(HERE, "results")
OUT = os.path.join(os.path.dirname(HERE), "EXPERIMENTS.md")

#: experiment id -> (result file, paper-reported claim)
SECTIONS = [
    (
        "Table I — dataset properties",
        ["table1_datasets"],
        "Paper: MushRoom 119 items / 8,124 txns; T10I4D100K 870 / 100,000; "
        "Chess 75 / 3,196; Pumsb_star 2,088 / 49,046.",
        "Generators match the full-scale row/column counts exactly for the "
        "attribute-style datasets (the Quest generator realises a subset of "
        "its 870-item universe, as the original tool does). Benchmarks mine "
        "scaled-down variants with the same structure; the bench-scale "
        "column records the size actually mined.",
    ),
    (
        "Fig. 3 — per-iteration time, YAFIM vs MRApriori",
        ["fig3_mushroom", "fig3_t10i4d100k", "fig3_chess", "fig3_pumsb_star"],
        "Paper: total speedups ~21x (MushRoom, 297s -> 14s), ~10x (T10I4D100K), "
        "~21x (Chess, 378s -> 18s), ~21x (Pumsb_star); last-pass speedups up to "
        "37x (MushRoom) and ~55x (Chess); ~18x average across benchmarks.",
        "Shape reproduced: identical outputs (asserted), YAFIM wins every "
        "dataset in measured wall time and by an order of magnitude in the "
        "paper-cluster replay, and the per-pass gap is largest on the late "
        "passes where candidate sets shrink but MapReduce still pays the "
        "full job round-trip. Absolute values differ (miniature datasets, "
        "one machine) — see DESIGN.md's substitution table.",
    ),
    (
        "Fig. 4 — sizeup (1..6x data, fixed 48 cores)",
        ["fig4_mushroom", "fig4_t10i4d100k", "fig4_chess", "fig4_pumsb_star"],
        "Paper: MRApriori grows sharply/near-linearly with replication; "
        "YAFIM grows slowly and stays nearly flat on all four datasets.",
        "Shape reproduced: MRApriori's replayed time rises with every "
        "replication factor (growing scheduling waves, per-task overhead "
        "and I/O) while YAFIM's curve stays nearly flat (asserted: YAFIM's "
        "absolute growth < 50% of MRApriori's; in practice far smaller).",
    ),
    (
        "Fig. 5 — node speedup (4..12 nodes x 8 cores)",
        ["fig5_mushroom", "fig5_t10i4d100k", "fig5_chess", "fig5_pumsb_star"],
        "Paper: YAFIM's time falls near-linearly as nodes grow 4 -> 12.",
        "Shape reproduced: monotone decrease on every dataset with "
        "substantial (though sublinear at this miniature task granularity) "
        "scaling; the ideal-linear column quantifies the gap.",
    ),
    (
        "Fig. 6 — medical application (Sup = 3%)",
        ["fig6_medical"],
        "Paper: YAFIM ~25x faster than MRApriori on the hospital case "
        "dataset; YAFIM's per-iteration time shrinks as iterations proceed.",
        "Shape reproduced on the synthetic medical-case workload: replayed "
        "speedup comfortably exceeds the benchmark datasets' (asserted "
        ">10x), and YAFIM's per-pass time collapses after its peak while "
        "MRApriori never drops below the per-job floor.",
    ),
    (
        "Ablations (design choices)",
        [
            "ablation_broadcast",
            "ablation_cache",
            "ablation_hashtree",
            "ablation_mr_variants",
            "ablation_support_sweep",
            "ablation_partition_sweep",
            "ablation_one_phase",
            "ablation_rapriori",
        ],
        "Paper §IV motivates three design choices: broadcast variables "
        "(§IV-C), the in-memory cached transaction RDD (§IV-B) and the "
        "candidate hash tree (§IV-A); related work motivates SPC/FPC/DPC.",
        "A1: broadcasting moves fewer candidate bytes than per-task closure "
        "shipping once tasks outnumber nodes. A2: with caching only pass 1 "
        "touches the DFS; without it every pass re-reads. A3: the hash tree "
        "beats a flat candidate scan by an order of magnitude on the "
        "candidate-heavy sparse dataset. A4: FPC/DPC cut job count (fewer "
        "startups) at the cost of speculative candidates, outputs identical. "
        "A5: lowering the threshold grows the itemset family and pass count "
        "monotonically (the families nest). A6: partition count never "
        "changes the mined itemsets. A7: the one-phase MapReduce "
        "alternative needs a single job but counts and shuffles an order "
        "of magnitude more (the paper's memory-overflow criticism). "
        "A8: R-Apriori's candidate-free second pass (the published YAFIM "
        "follow-up) is faster with ~100x smaller broadcasts on sparse data.",
    ),
    (
        "Extensions beyond the paper",
        [
            "parallel_miners_mushroom",
            "parallel_miners_medical",
            "parallel_miners_retail",
            "fault_overhead",
            "straggler_study",
            "serve_throughput",
        ],
        "The paper's related work surveys the wider parallel-FIM design "
        "space (Dist-Eclat, pattern growth) and motivates Spark partly by "
        "lineage-based fault tolerance (section II-B).",
        "All three parallel designs are implemented on the same engine and "
        "produce identical outputs; the structural claims hold (YAFIM: one "
        "shuffle per level, Dist-Eclat: one shuffle total, PFP: two). "
        "Injected task failures and total cache loss change results not at "
        "all and cost far less than replication would. The discrete-event "
        "replay quantifies straggler headroom: the near-linear speedup "
        "story survives ~5% stragglers and degrades sharply past 10%. "
        "The serving layer (`repro.serve`) lifts the paper's "
        "cache-across-passes idea to cache-across-requests: served "
        "concurrent submission costs no more wall time than one-shot "
        "sequential runs, and an identical resubmission hits the result "
        "cache two orders of magnitude faster than a cold job.",
    ),
]


def main() -> int:
    missing = []
    parts = [
        "# EXPERIMENTS — paper vs measured\n",
        "Every table and figure of the paper's evaluation (section V), "
        "reproduced by `pytest benchmarks/ --benchmark-only`. Tables below "
        "are the exact output of the last benchmark run on this machine "
        "(also in `benchmarks/results/`). 'Replayed' columns project the "
        "measured task records onto the paper's 12-node x 8-core cluster "
        "model; see DESIGN.md for the substitution rationale.\n",
    ]
    for title, files, paper, verdict in SECTIONS:
        parts.append(f"\n## {title}\n")
        parts.append(f"**Paper reports.** {paper}\n")
        parts.append(f"**Reproduction.** {verdict}\n")
        for name in files:
            path = os.path.join(RESULTS, f"{name}.txt")
            if not os.path.exists(path):
                missing.append(name)
                continue
            with open(path) as f:
                parts.append("\n```\n" + f.read().rstrip() + "\n```\n")
    with open(OUT, "w") as f:
        f.write("\n".join(parts))
    print(f"wrote {OUT}")
    if missing:
        print(f"WARNING: missing result files: {missing}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
