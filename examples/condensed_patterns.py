#!/usr/bin/env python3
"""Condensed pattern families on a power-law retail workload.

Mines skewed retail baskets with two different parallel miners (YAFIM and
DistEclat — identical results, different traversals), then condenses the
frequent-itemset family into its maximal and closed forms and inspects
the negative border, i.e. what Apriori counted and threw away.

Run:  python examples/condensed_patterns.py
"""

from repro.bench.reporting import format_table
from repro.core import (
    DistEclat,
    Yafim,
    closed_itemsets,
    generate_rules_parallel,
    maximal_itemsets,
    negative_border,
    support_of,
)
from repro.datasets import retail_like
from repro.engine import Context

print("Generating power-law retail baskets with promotional bundles...")
dataset = retail_like(
    n_transactions=3_000, n_items=400, n_bundles=8, bundle_rate=0.35, seed=11
)
print(f"  {dataset.stats()}")

MINSUP = 0.03

with Context(backend="threads", parallelism=4) as ctx:
    yafim = Yafim(ctx, num_partitions=8).run(dataset.transactions, MINSUP)
    dist_eclat = DistEclat(ctx, num_partitions=8).run(dataset.transactions, MINSUP)
    assert yafim.itemsets == dist_eclat.itemsets, "miners must agree"
    print(
        f"\nYAFIM ({yafim.total_seconds:.2f}s, {len(yafim.iterations)} passes) and "
        f"DistEclat ({dist_eclat.total_seconds:.2f}s, 1 shuffle) agree: "
        f"{yafim.num_itemsets} frequent itemsets ✔"
    )

    # --- condensed representations --------------------------------------
    frequent = yafim.itemsets
    maximal = maximal_itemsets(frequent)
    closed = closed_itemsets(frequent)
    border = negative_border(frequent)
    print(
        format_table(
            ["family", "size", "vs all frequent"],
            [
                ("all frequent", len(frequent), "1.00x"),
                ("closed", len(closed), f"{len(closed) / len(frequent):.2f}x"),
                ("maximal", len(maximal), f"{len(maximal) / len(frequent):.2f}x"),
                ("negative border", len(border), "(wasted Apriori counting)"),
            ],
            title="\nCondensed pattern families",
        )
    )

    print("\nLargest maximal itemsets (the promotional bundles resurface):")
    for iset, count in sorted(maximal.items(), key=lambda kv: (-len(kv[0]), -kv[1]))[:5]:
        print(f"  {iset}  support {count}/{dataset.n_transactions}")

    # support recovery from the closed family alone
    probe = next(iter(maximal))
    assert support_of(probe, closed) == frequent[probe]
    print(f"\nSupport of {probe} recovered exactly from the closed family ✔")

    # --- rules, mined in parallel on the same engine ----------------------
    rules = generate_rules_parallel(
        ctx, frequent, dataset.n_transactions, min_confidence=0.8, min_lift=2.0
    )
    print(f"\nTop parallel-mined rules ({len(rules)} at conf>=0.8, lift>=2):")
    for rule in rules[:6]:
        print(f"  {rule}")
