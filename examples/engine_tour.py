#!/usr/bin/env python3
"""A tour of the RDD engine YAFIM runs on.

Everything the paper's §II-B describes — lazy transformations, lineage,
in-memory caching, broadcast variables — demonstrated directly against
the engine's public API, plus the mini-DFS integration.

Run:  python examples/engine_tour.py
"""

from repro.engine import Context, StorageLevel, debug_string
from repro.hdfs import MiniDfs

with Context(backend="threads", parallelism=4) as ctx:
    # --- transformations are lazy, actions execute -----------------------
    words = ctx.parallelize(
        "the quick brown fox jumps over the lazy dog the end".split(), 4
    )
    counts = (
        words.map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .sort_by(lambda kv: -kv[1])
    )
    print("Word counts:", counts.take(4))

    # --- lineage: the DAG the scheduler cuts into stages -------------------
    print("\nLineage of the wordcount RDD:")
    print(debug_string(counts))

    # --- caching: compute once, reuse across actions (paper §IV-B) --------
    expensive = words.map(lambda w: (w, len(w) ** 2)).persist(StorageLevel.MEMORY_ONLY)
    expensive.count()  # materializes the cache
    expensive.collect()  # served from memory
    m = ctx.block_manager.metrics
    print(f"\nCache: {m.memory_hits} hits, {m.misses} misses after two actions")

    # --- broadcast: one copy per worker, not per task (paper §IV-C) -------
    stopwords = ctx.broadcast({"the", "over"})
    kept = words.filter(lambda w, b=stopwords: w not in b.value).distinct().collect()
    print(f"Broadcast filter kept: {sorted(kept)}")
    print(f"Broadcast transfers: {ctx.broadcast_manager.transfers} (<= 4 workers)")

    # --- accumulators ------------------------------------------------------
    chars = ctx.accumulator(0)
    words.foreach(lambda w, a=chars: a.add(len(w)))
    print(f"Accumulated character count: {chars.value}")

    # --- joins and cogroup ---------------------------------------------------
    prices = ctx.parallelize([("fox", 9.5), ("dog", 3.0)], 2)
    lengths = words.distinct().map(lambda w: (w, len(w)))
    print("Join:", sorted(lengths.join(prices).collect()))

    # --- fault tolerance: injected failures are retried transparently ------
    ctx.fault_injector.fail_task(stage_kind="result", times=2)
    assert words.count() == 11
    print(f"Survived {ctx.fault_injector.injected} injected task failures")

    # --- the mini-DFS round trip -------------------------------------------
    with MiniDfs(n_datanodes=3, block_size=64, replication=2) as dfs:
        counts.map(lambda kv: f"{kv[0]}\t{kv[1]}").save_as_text_file(dfs, "/out")
        back = ctx.text_file(dfs, "/out/part-00000").collect()
        print(f"\nRound-tripped through the mini-DFS: {back[:3]} ...")
        print(f"DFS stored {dfs.metrics.bytes_written} bytes across 3 datanodes")

    # --- every job left an audit trail ---------------------------------------
    log = ctx.event_log
    print(
        f"\nEvent log: {len(log.jobs)} jobs, {len(log.tasks)} tasks, "
        f"{log.total_task_seconds() * 1e3:.1f} ms of task time"
    )
