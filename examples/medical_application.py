#!/usr/bin/env python3
"""The paper's §V-D medical application, end to end.

Generates a synthetic hospital case database (diagnoses, symptoms,
prescriptions with correlated co-prescription bundles), mines it at the
paper's Sup = 3% with both YAFIM and the MapReduce baseline, verifies the
outputs are identical, and extracts the medicine-relationship rules the
application is after.

Run:  python examples/medical_application.py
"""

from repro.bench.harness import replay_mr, replay_yafim, run_comparison
from repro.bench.reporting import format_table
from repro.cluster import PAPER_CLUSTER
from repro.core import generate_rules, top_rules
from repro.datasets import medical_cases

print("Generating 4,000 synthetic patient cases...")
dataset = medical_cases(n_cases=4_000, seed=42)
print(f"  {dataset.stats()}")

print("\nMining at Sup = 3% with YAFIM and MRApriori (this runs both stacks)...")
run = run_comparison(dataset, min_support=0.03, num_partitions=8)
assert run.outputs_match, "the two systems must agree exactly"

rows = [(k, mr, ya, x) for k, mr, ya, x in run.per_pass()]
print(
    format_table(
        ["pass", "MRApriori (s)", "YAFIM (s)", "speedup"],
        rows,
        title=f"\nPer-iteration comparison ({run.yafim.num_itemsets} itemsets found)",
    )
)

mr_cluster = replay_mr(run.mrapriori, PAPER_CLUSTER)
ya_cluster = replay_yafim(run.yafim, PAPER_CLUSTER)
print(
    f"\nReplayed on the paper's 12-node cluster model: "
    f"MRApriori {mr_cluster:.1f}s vs YAFIM {ya_cluster:.1f}s "
    f"({mr_cluster / ya_cluster:.0f}x — the paper reports ~25x)"
)

# --- what the application is actually for: medicine relationships -------
rules = generate_rules(
    run.yafim.itemsets, run.yafim.n_transactions, min_confidence=0.75, min_lift=1.5
)
med_rules = [
    r
    for r in rules
    if all(i.startswith("med") for i in r.antecedent)
    and all(i.startswith(("med", "dx")) for i in r.consequent)
]
print(f"\nTop medicine-relationship rules ({len(med_rules)} above conf 0.75, lift 1.5):")
for rule in top_rules(med_rules, 8):
    print(f"  {rule}")
