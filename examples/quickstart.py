#!/usr/bin/env python3
"""Quickstart: mine frequent itemsets with YAFIM in five lines.

Run:  python examples/quickstart.py
"""

from repro import mine_frequent_itemsets
from repro.core import generate_rules, top_rules

# A classic market-basket toy database.
transactions = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
]

# One call: runs YAFIM (the paper's algorithm) on the built-in RDD engine.
result = mine_frequent_itemsets(transactions, min_support=0.6)

print(f"{result.num_itemsets} frequent itemsets at minsup=0.6:")
for itemset, count in sorted(result.itemsets.items(), key=lambda kv: (-kv[1], kv[0])):
    print(f"  {', '.join(itemset):24s} support {count}/{result.n_transactions}")

# The level-wise trail the paper plots in its figures:
print("\nPer-pass execution:")
for it in result.iterations:
    print(f"  pass {it.k}: {it.n_frequent} frequent itemsets in {it.seconds * 1e3:.1f} ms")

# Post-process into association rules.
rules = generate_rules(result.itemsets, result.n_transactions, min_confidence=0.7)
print(f"\nTop rules (of {len(rules)}):")
for rule in top_rules(rules, 5):
    print(f"  {rule}")

# Cross-check against a different algorithm — identical by construction.
oracle = mine_frequent_itemsets(transactions, min_support=0.6, algorithm="fpgrowth")
assert oracle.itemsets == result.itemsets
print("\nFP-Growth cross-check: identical itemsets ✔")
