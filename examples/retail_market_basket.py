#!/usr/bin/env python3
"""Retail market-basket analysis on IBM Quest synthetic data.

The workload the paper's introduction motivates: a large sparse
transactional database (the T10I4 family from IBM's Quest generator)
mined at a low support threshold.  Compares all the miners in the
library on the same data and shows the YAFIM configuration knobs.

Run:  python examples/retail_market_basket.py
"""

import time

from repro import mine_frequent_itemsets
from repro.bench.reporting import format_table
from repro.core import Yafim
from repro.datasets import quest_generator
from repro.engine import Context

print("Generating a T10.I4 basket database (5,000 transactions, 500 items)...")
dataset = quest_generator(
    n_transactions=5_000,
    avg_transaction_size=10,
    avg_pattern_size=4,
    n_patterns=300,
    n_items=500,
    seed=7,
)
print(f"  {dataset.stats()}")

MINSUP = 0.01

# --- compare every algorithm in the library ------------------------------
rows = []
reference = None
for algorithm in ("apriori", "eclat", "fpgrowth", "yafim"):
    t0 = time.perf_counter()
    result = mine_frequent_itemsets(
        dataset.transactions, MINSUP, algorithm=algorithm, backend="serial"
    )
    elapsed = time.perf_counter() - t0
    if reference is None:
        reference = result.itemsets
    assert result.itemsets == reference, f"{algorithm} disagrees!"
    rows.append((algorithm, result.num_itemsets, result.max_level, elapsed))

print(
    format_table(
        ["algorithm", "itemsets", "max level", "wall (s)"],
        rows,
        title=f"\nAll miners at minsup={MINSUP:g} (identical outputs, checked)",
    )
)

# --- YAFIM knobs -----------------------------------------------------------
# (capped at 3 levels: the flat-list variant is quadratic in candidates —
# that blowup is exactly what ablation A3 in benchmarks/ quantifies)
print("\nYAFIM configuration ablation on this workload (levels <= 3):")
configs = {
    "paper defaults": {},
    "no hash tree": {"use_hash_tree": False},
    "no broadcast": {"use_broadcast": False},
    "no RDD cache": {"cache_transactions": False},
}
rows = []
want_capped = None
for label, kwargs in configs.items():
    with Context(backend="serial") as ctx:
        t0 = time.perf_counter()
        result = Yafim(ctx, num_partitions=8, **kwargs).run(
            dataset.transactions, MINSUP, max_length=3
        )
        rows.append((label, time.perf_counter() - t0, result.num_itemsets))
    want_capped = want_capped or result.itemsets
    assert result.itemsets == want_capped
print(format_table(["configuration", "wall (s)", "itemsets"], rows))

# --- parallel backends -------------------------------------------------------
print("\nParallel executor backends (same answer, different executors):")
for backend, par in (("threads", 4), ("processes", 2)):
    with Context(backend=backend, parallelism=par) as ctx:
        t0 = time.perf_counter()
        result = Yafim(ctx, num_partitions=8).run(dataset.transactions, MINSUP)
        assert result.itemsets == reference
        print(f"  {backend:10s} x{par}: {time.perf_counter() - t0:.2f}s")
