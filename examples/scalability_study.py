#!/usr/bin/env python3
"""Reproduce the paper's scalability methodology on one dataset.

Runs the paired YAFIM/MRApriori measurement on a Chess-shaped dataset,
then replays the measured tasks through the deterministic cluster model
to produce the paper's Fig. 4 (sizeup at 48 cores) and Fig. 5 (node
speedup, 4..12 nodes) curves.

Two knobs matter at miniature scale (see DESIGN.md, design choice 6):
small DFS blocks keep the task count high enough that the replay has
parallelism to scale, and the modeled MapReduce overheads are scaled
down alongside the dataset so the *growing* cost terms stay visible.

Run:  python examples/scalability_study.py
"""

from repro.bench.harness import (
    run_comparison,
    sizeup_series,
    speedup_series,
)
from repro.bench.reporting import format_table, sparkline
from repro.cluster import ClusterSpec
from repro.datasets import chess_like

BASE = lambda: chess_like(scale=0.3, seed=3)  # noqa: E731
SUP = 0.85
BLOCK = 2 * 1024  # ~dozens of map tasks per stage

# --- Fig. 4: sizeup at fixed 48 cores ------------------------------------
print("Sizeup study: replicating the dataset 1..4x at a fixed 48 cores")
spec48 = ClusterSpec(
    nodes=6, cores_per_node=8, mr_job_startup_s=0.4, mr_task_overhead_s=0.05
)
series = sizeup_series(BASE, SUP, [1, 2, 3, 4], spec48, num_partitions=8,
                       dfs_block_size=BLOCK)
rows = [(f, mr, ya) for f, mr, ya in series]
print(
    format_table(
        ["replication", "MRApriori (s)", "YAFIM (s)"],
        rows,
        title=f"  MR:    {sparkline([r[1] for r in rows])}\n"
              f"  YAFIM: {sparkline([r[2] for r in rows])}",
    )
)

# --- Fig. 5: node speedup -----------------------------------------------------
print("\nSpeedup study: same run replayed on 4..12 nodes (8 cores each)")
run = run_comparison(
    chess_like(scale=1.0, seed=3), SUP, num_partitions=64, dfs_block_size=1024
)
series = speedup_series(run, ClusterSpec(), [4, 6, 8, 10, 12])
rows = [(cores, ya, mr) for cores, mr, ya in series]
print(
    format_table(
        ["cores", "YAFIM (s)", "MRApriori (s)"],
        rows,
        title=f"  YAFIM: {sparkline([r[1] for r in rows])}",
    )
)
base_cores, base_ya = series[0][0], series[0][2]
for cores, _mr, ya in series[1:]:
    ideal = cores / base_cores
    print(f"  {cores} cores: speedup {base_ya / ya:.2f}x (ideal {ideal:.2f}x)")
