"""repro — a full reproduction of *YAFIM: A Parallel Frequent Itemset Mining
Algorithm with Spark* (Qiu, Gu, Yuan, Huang — IEEE IPDPSW 2014).

The package is organised as the paper's system stack, built from scratch:

- :mod:`repro.engine` — a mini-Spark: lazy RDDs, lineage, DAG stages,
  shuffle, caching, broadcast variables, multiple executor backends.
- :mod:`repro.hdfs` — a mini-DFS with real local-disk block storage.
- :mod:`repro.mapreduce` — a Hadoop-style MapReduce runtime over the
  mini-DFS (the substrate of the paper's MRApriori baseline).
- :mod:`repro.cluster` — a deterministic cluster cost model used for the
  paper's sizeup/speedup scalability experiments.
- :mod:`repro.core` — YAFIM itself plus the MRApriori/SPC/FPC/DPC
  baselines and association-rule post-processing.
- :mod:`repro.algorithms` — single-node Apriori/Eclat/FP-Growth oracles.
- :mod:`repro.datasets` — IBM Quest-style synthetic generator and
  UCI-shaped dense dataset generators (MushRoom/Chess/Pumsb_star) plus a
  medical-case generator.
- :mod:`repro.bench` — the experiment harness that regenerates every
  table and figure of the paper's evaluation section.

Quickstart::

    from repro import mine_frequent_itemsets
    from repro.datasets import mushroom_like

    ds = mushroom_like(seed=7)
    result = mine_frequent_itemsets(ds.transactions, min_support=0.35)
    print(result.num_itemsets, "frequent itemsets")
"""

__version__ = "1.0.0"


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid import cycles while
    # submodules are still being loaded.
    if name in ("MiningConfig", "MiningResult", "mine_frequent_itemsets"):
        from repro.core import api

        return getattr(api, name)
    if name in ("algorithm_names", "register_algorithm"):
        from repro.core import registry

        return getattr(registry, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "MiningConfig",
    "MiningResult",
    "__version__",
    "algorithm_names",
    "mine_frequent_itemsets",
    "register_algorithm",
]
