"""Single-node reference miners (correctness oracles): Apriori, Eclat, FP-Growth."""

from repro.algorithms.apriori import apriori, count_candidates, frequent_1_itemsets, generate_candidates
from repro.algorithms.common import FrequentItemsets, by_level, max_level, normalize_transactions, support_threshold
from repro.algorithms.eclat import eclat, vertical_layout
from repro.algorithms.fpgrowth import FPTree, fpgrowth

__all__ = [
    "FPTree",
    "FrequentItemsets",
    "apriori",
    "by_level",
    "count_candidates",
    "eclat",
    "fpgrowth",
    "frequent_1_itemsets",
    "generate_candidates",
    "max_level",
    "normalize_transactions",
    "support_threshold",
    "vertical_layout",
]
