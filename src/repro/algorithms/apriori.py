"""Sequential Apriori (Agrawal & Srikant 1994) — the correctness oracle.

Straightforward level-wise implementation: dict-based support counting
and per-transaction candidate checks.  Kept intentionally simple (no hash
tree) so its results cross-check the optimized parallel implementations
through a genuinely different code path.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from itertools import combinations

from repro.algorithms.common import (
    FrequentItemsets,
    normalize_transactions,
    support_threshold,
)
from repro.common.itemset import Itemset


def frequent_1_itemsets(transactions: list[Itemset], threshold: int) -> FrequentItemsets:
    counts: dict = defaultdict(int)
    for txn in transactions:
        for item in txn:
            counts[(item,)] += 1
    return {iset: c for iset, c in counts.items() if c >= threshold}


def generate_candidates(frequent_prev: FrequentItemsets) -> set[Itemset]:
    """F(k-1) x F(k-1) join + downward-closure prune (independent of
    :func:`repro.core.candidates.apriori_gen` by design)."""
    prev = sorted(frequent_prev)
    k_minus_1 = len(prev[0]) if prev else 0
    prev_set = set(prev)
    candidates: set[Itemset] = set()
    for i, a in enumerate(prev):
        for b in prev[i + 1 :]:
            if a[:-1] != b[:-1]:
                break  # sorted order: no further shared prefixes
            cand = a + (b[-1],)
            # prune: all (k-1)-subsets must be frequent
            if all(sub in prev_set for sub in combinations(cand, k_minus_1)):
                candidates.add(cand)
    return candidates


def count_candidates(
    transactions: list[Itemset], candidates: set[Itemset]
) -> dict[Itemset, int]:
    """Count candidate occurrences by enumerating transaction subsets when
    cheap, otherwise by scanning the candidate list."""
    counts: dict = defaultdict(int)
    if not candidates:
        return counts
    k = len(next(iter(candidates)))
    for txn in transactions:
        if len(txn) < k:
            continue
        # Enumerating C(len(txn), k) subsets beats scanning all candidates
        # when transactions are short; otherwise do per-candidate checks.
        txn_set = set(txn)
        n_subsets = _n_choose_k(len(txn), k)
        if n_subsets <= len(candidates) * 2:
            for sub in combinations(txn, k):
                if sub in candidates:
                    counts[sub] += 1
        else:
            for cand in candidates:
                if txn_set.issuperset(cand):
                    counts[cand] += 1
    return counts


def _n_choose_k(n: int, k: int) -> int:
    import math

    if k > n:
        return 0
    return math.comb(n, k)


def apriori(
    transactions: Iterable[Sequence],
    min_support: float,
    max_length: int | None = None,
) -> FrequentItemsets:
    """All frequent itemsets with relative support >= ``min_support``.

    Returns a dict mapping canonical itemsets (sorted tuples) to absolute
    support counts.
    """
    txns = normalize_transactions(transactions)
    threshold = support_threshold(txns, min_support)
    frequent: FrequentItemsets = {}
    level = frequent_1_itemsets(txns, threshold)
    k = 1
    while level:
        frequent.update(level)
        if max_length is not None and k >= max_length:
            break
        candidates = generate_candidates(level)
        counts = count_candidates(txns, candidates)
        level = {iset: c for iset, c in counts.items() if c >= threshold}
        k += 1
    return frequent
