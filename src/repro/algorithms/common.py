"""Shared types and helpers for the single-node reference miners.

These implementations are deliberately *independent* of
:mod:`repro.core` (no shared candidate-generation or hash-tree code) so
they can serve as unbiased correctness oracles for YAFIM and the
MapReduce baselines.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.common.errors import MiningError
from repro.common.itemset import Itemset, canonical_transaction, min_support_count

#: itemset -> absolute support count
FrequentItemsets = dict


def normalize_transactions(transactions: Iterable[Sequence]) -> list[Itemset]:
    """Canonicalize raw transactions into sorted, de-duplicated tuples."""
    return [canonical_transaction(t) for t in transactions]


def support_threshold(transactions: list, min_support: float) -> int:
    if not transactions:
        raise MiningError("cannot mine an empty transaction database")
    return min_support_count(min_support, len(transactions))


def by_level(itemsets: FrequentItemsets) -> dict[int, FrequentItemsets]:
    """Split an itemset->count map by itemset length."""
    levels: dict[int, FrequentItemsets] = {}
    for iset, count in itemsets.items():
        levels.setdefault(len(iset), {})[iset] = count
    return levels


def max_level(itemsets: FrequentItemsets) -> int:
    return max((len(i) for i in itemsets), default=0)
