"""Eclat (Zaki 2000): depth-first mining over vertical tid-sets.

Included because the paper's related-work section positions Dist-Eclat /
BigFIM against Apriori-family algorithms; here it doubles as a second
independent oracle (different traversal order, different counting
mechanism — set intersection instead of subset scans).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.algorithms.common import (
    FrequentItemsets,
    normalize_transactions,
    support_threshold,
)
from repro.common.itemset import Item, Itemset


def vertical_layout(transactions: list[Itemset]) -> dict[Item, frozenset]:
    """item -> frozenset of transaction ids containing it."""
    tidsets: dict[Item, set[int]] = {}
    for tid, txn in enumerate(transactions):
        for item in txn:
            tidsets.setdefault(item, set()).add(tid)
    return {item: frozenset(tids) for item, tids in tidsets.items()}


def eclat(
    transactions: Iterable[Sequence],
    min_support: float,
    max_length: int | None = None,
) -> FrequentItemsets:
    """All frequent itemsets via recursive tid-set intersection."""
    txns = normalize_transactions(transactions)
    threshold = support_threshold(txns, min_support)
    tidsets = vertical_layout(txns)
    frequent: FrequentItemsets = {}

    items = sorted(i for i, tids in tidsets.items() if len(tids) >= threshold)

    def extend(prefix: Itemset, prefix_tids: frozenset, tail: list) -> None:
        for idx, (item, tids) in enumerate(tail):
            new_tids = prefix_tids & tids if prefix else tids
            if len(new_tids) < threshold:
                continue
            new_prefix = prefix + (item,)
            frequent[new_prefix] = len(new_tids)
            if max_length is not None and len(new_prefix) >= max_length:
                continue
            extend(new_prefix, new_tids, tail[idx + 1 :])

    all_tids = frozenset(range(len(txns)))
    extend((), all_tids, [(i, tidsets[i]) for i in items])
    return frequent
