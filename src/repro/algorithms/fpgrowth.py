"""FP-Growth (Han, Pei & Yin 2000): pattern growth without candidates.

Cited by the paper as the canonical candidate-free alternative; here a
third independent oracle and the fast baseline for large/low-support
runs.  Implements the classic FP-tree with header-table node links and
recursive conditional-tree projection.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.algorithms.common import (
    FrequentItemsets,
    normalize_transactions,
    support_threshold,
)
from repro.common.itemset import Item, Itemset


@dataclass
class FPNode:
    item: Item | None
    count: int = 0
    parent: "FPNode | None" = None
    children: dict = field(default_factory=dict)
    link: "FPNode | None" = None  # next node holding the same item


class FPTree:
    """Prefix tree of transactions with items in frequency-descending order."""

    def __init__(self):
        self.root = FPNode(item=None)
        self.header: dict[Item, FPNode] = {}
        self._header_tail: dict[Item, FPNode] = {}

    def insert(self, items: list[Item], count: int = 1) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item=item, parent=node)
                node.children[item] = child
                if item in self._header_tail:
                    self._header_tail[item].link = child
                else:
                    self.header[item] = child
                self._header_tail[item] = child
            child.count += count
            node = child

    def nodes_for(self, item: Item):
        node = self.header.get(item)
        while node is not None:
            yield node
            node = node.link

    def prefix_paths(self, item: Item) -> list[tuple[list[Item], int]]:
        """Conditional-pattern base: (path items, count) per node of item."""
        paths = []
        for node in self.nodes_for(item):
            path: list[Item] = []
            parent = node.parent
            while parent is not None and parent.item is not None:
                path.append(parent.item)
                parent = parent.parent
            if path:
                paths.append((list(reversed(path)), node.count))
        return paths

    @property
    def is_empty(self) -> bool:
        return not self.root.children


def _build_tree(
    weighted_txns: Iterable[tuple[list[Item], int]], threshold: int
) -> tuple[FPTree, dict[Item, int]]:
    counts: dict[Item, int] = defaultdict(int)
    materialized = [(list(items), c) for items, c in weighted_txns]
    for items, c in materialized:
        for item in items:
            counts[item] += c
    keep = {i: c for i, c in counts.items() if c >= threshold}
    # Frequency-descending order with a deterministic tiebreak.
    order = {i: rank for rank, i in enumerate(
        sorted(keep, key=lambda i: (-keep[i], repr(i)))
    )}
    tree = FPTree()
    for items, c in materialized:
        filtered = sorted((i for i in items if i in keep), key=order.__getitem__)
        if filtered:
            tree.insert(filtered, c)
    return tree, keep


def fpgrowth(
    transactions: Iterable[Sequence],
    min_support: float,
    max_length: int | None = None,
) -> FrequentItemsets:
    """All frequent itemsets via recursive FP-tree projection."""
    txns = normalize_transactions(transactions)
    threshold = support_threshold(txns, min_support)
    frequent: FrequentItemsets = {}

    def mine(tree: FPTree, item_counts: dict[Item, int], suffix: Itemset) -> None:
        # Grow patterns item by item, least-frequent first (classic order).
        for item in sorted(item_counts, key=lambda i: (item_counts[i], repr(i))):
            support = item_counts[item]
            pattern = tuple(sorted(suffix + (item,)))
            frequent[pattern] = support
            if max_length is not None and len(pattern) >= max_length:
                continue
            cond_tree, cond_counts = _build_tree(tree.prefix_paths(item), threshold)
            if cond_counts:
                mine(cond_tree, cond_counts, pattern)

    tree, counts = _build_tree(((list(t), 1) for t in txns), threshold)
    mine(tree, counts, ())
    return frequent
