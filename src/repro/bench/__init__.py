"""Benchmark harness: paired runs, cluster replays, text reporting."""

from repro.bench.harness import (
    ComparisonRun,
    replay_mr,
    replay_mr_per_pass,
    replay_yafim,
    replay_yafim_per_pass,
    run_comparison,
    sizeup_series,
    speedup_series,
)
from repro.bench.reporting import format_series, format_table, sparkline, speedup_table
from repro.bench.sweeps import SweepPoint, partition_sweep, support_sweep

__all__ = [
    "ComparisonRun",
    "SweepPoint",
    "format_series",
    "format_table",
    "replay_mr",
    "replay_mr_per_pass",
    "replay_yafim",
    "replay_yafim_per_pass",
    "run_comparison",
    "sizeup_series",
    "partition_sweep",
    "sparkline",
    "speedup_series",
    "speedup_table",
    "support_sweep",
]
