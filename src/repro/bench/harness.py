"""Experiment harness: paired YAFIM/MRApriori runs and cluster replays.

This is the machinery behind every table and figure benchmark:

* :func:`run_comparison` executes YAFIM and MRApriori on the *same*
  mini-DFS transaction file (serial backends, so per-task timings are
  interference-free), asserts the outputs are identical — the paper's
  correctness claim — and returns both measurement trails.
* :func:`replay_yafim` / :func:`replay_mr` project a run's measured task
  records onto a :class:`~repro.cluster.model.ClusterSpec`, which is how
  the sizeup (Fig. 4) and node-speedup (Fig. 5) curves are produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.model import ClusterSpec
from repro.cluster.simulation import (
    simulate_mr_stage,
    simulate_spark_run,
    SimulatedStage,
)
from repro.core.mrapriori import MRApriori
from repro.core.results import MiningRunResult
from repro.core.yafim import Yafim
from repro.datasets.transactions import TransactionDataset
from repro.engine.context import Context
from repro.hdfs.filesystem import MiniDfs
from repro.mapreduce.runner import JobRunner


@dataclass
class ComparisonRun:
    """Paired measurement of both systems on one dataset."""

    dataset_name: str
    min_support: float
    yafim: MiningRunResult
    mrapriori: MiningRunResult

    @property
    def outputs_match(self) -> bool:
        return self.yafim.itemsets == self.mrapriori.itemsets

    @property
    def traces(self) -> list:
        """Both runs' tracers (YAFIM first), ready for chrome-trace export."""
        return [t for t in (self.yafim.trace, self.mrapriori.trace) if t is not None]

    @property
    def total_speedup(self) -> float:
        return self.mrapriori.total_seconds / max(self.yafim.total_seconds, 1e-9)

    def per_pass(self) -> list[tuple[int, float, float, float]]:
        """(k, mr_seconds, yafim_seconds, speedup) per common pass."""
        mr = dict(self.mrapriori.per_iteration_seconds())
        ya = dict(self.yafim.per_iteration_seconds())
        out = []
        for k in sorted(set(mr) & set(ya)):
            out.append((k, mr[k], ya[k], mr[k] / max(ya[k], 1e-9)))
        return out


def run_comparison(
    dataset: TransactionDataset,
    min_support: float,
    num_partitions: int = 4,
    mr_reducers: int = 2,
    dfs_block_size: int = 256 * 1024,
    max_length: int | None = None,
    check_equal: bool = True,
    yafim_kwargs: dict | None = None,
    mr_kwargs: dict | None = None,
) -> ComparisonRun:
    """Run both systems on ``dataset`` at ``min_support`` and pair results."""
    with MiniDfs(n_datanodes=4, block_size=dfs_block_size, replication=2) as dfs:
        dataset.write_to_dfs(dfs, "/transactions.txt")

        with Context(backend="serial") as ctx:
            miner = Yafim(ctx, num_partitions=num_partitions, **(yafim_kwargs or {}))
            yafim_result = miner.run_text_file(
                dfs, "/transactions.txt", min_support, max_length=max_length
            )

        runner = JobRunner(dfs, backend="serial")
        mr = MRApriori(runner, num_reducers=mr_reducers, **(mr_kwargs or {}))
        mr_result = mr.run("/transactions.txt", min_support, max_length=max_length)

    run = ComparisonRun(
        dataset_name=dataset.name,
        min_support=min_support,
        yafim=yafim_result,
        mrapriori=mr_result,
    )
    if check_equal and not run.outputs_match:
        only_y = set(yafim_result.itemsets) - set(mr_result.itemsets)
        only_m = set(mr_result.itemsets) - set(yafim_result.itemsets)
        raise AssertionError(
            f"YAFIM and MRApriori disagree on {dataset.name}: "
            f"{len(only_y)} only-YAFIM, {len(only_m)} only-MR"
        )
    return run


# ---------------------------------------------------------------------------
# Cluster replays
# ---------------------------------------------------------------------------
def replay_yafim(result: MiningRunResult, spec: ClusterSpec) -> float:
    """Projected total seconds of a YAFIM run on ``spec``.

    Stage compute is the list-scheduled makespan of measured task
    durations; the per-iteration broadcast is charged as one value
    transfer per node.
    """
    return sum(t for _k, t in replay_yafim_per_pass(result, spec))


def replay_yafim_per_pass(result: MiningRunResult, spec: ClusterSpec) -> list[tuple[int, float]]:
    out = []
    for it in result.iterations:
        t = simulate_spark_run(it.stage_records, spec).total_s
        # broadcast: one transfer per node; closure shipping (the ablated
        # alternative): one transfer per task
        t += spec.network_seconds(it.broadcast_bytes * spec.nodes)
        t += spec.network_seconds(it.closure_bytes)
        out.append((it.k, t))
    return out


def replay_mr(result: MiningRunResult, spec: ClusterSpec) -> float:
    """Projected total seconds of a MapReduce run on ``spec``.

    Every iteration that carries stage records is one real job (startup +
    map + reduce); FPC/DPC iterations amortized into a combined job carry
    no records and charge nothing extra.
    """
    return sum(t for _k, t in replay_mr_per_pass(result, spec))


def replay_mr_per_pass(result: MiningRunResult, spec: ClusterSpec) -> list[tuple[int, float]]:
    out = []
    for it in result.iterations:
        if not it.stage_records:
            out.append((it.k, 0.0))
            continue
        stages: list[SimulatedStage] = [
            simulate_mr_stage(rec, spec) for rec in it.stage_records
        ]
        total = spec.mr_job_startup_s + sum(s.total_s for s in stages)
        out.append((it.k, total))
    return out


def sizeup_series(
    make_dataset,
    min_support: float,
    factors: list[int],
    spec: ClusterSpec,
    num_partitions: int = 4,
    max_length: int | None = None,
    dfs_block_size: int = 32 * 1024,
) -> list[tuple[int, float, float]]:
    """(factor, mr_seconds, yafim_seconds) for each replication factor.

    ``make_dataset()`` builds the base dataset; each factor runs both
    systems on the replicated data and replays onto the fixed ``spec``
    (the paper fixes 48 cores for Fig. 4).  A small DFS block size keeps
    the split count — and therefore the per-task MapReduce overhead —
    growing with the data, as it does at cluster scale.
    """
    base = make_dataset()
    out = []
    for factor in factors:
        ds = base.replicated(factor) if factor > 1 else base
        run = run_comparison(
            ds,
            min_support,
            num_partitions=num_partitions,
            max_length=max_length,
            dfs_block_size=dfs_block_size,
        )
        out.append((factor, replay_mr(run.mrapriori, spec), replay_yafim(run.yafim, spec)))
    return out


def speedup_series(
    run: ComparisonRun,
    base_spec: ClusterSpec,
    node_counts: list[int],
) -> list[tuple[int, float, float]]:
    """(total_cores, mr_seconds, yafim_seconds) for each node count."""
    out = []
    for n in node_counts:
        spec = base_spec.with_nodes(n)
        out.append(
            (spec.total_cores, replay_mr(run.mrapriori, spec), replay_yafim(run.yafim, spec))
        )
    return out
