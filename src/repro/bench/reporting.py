"""Plain-text tables and series for benchmark output.

The paper's evaluation is figures; a terminal harness reports the same
content as aligned tables plus a crude ASCII sparkline so the shape (who
wins, by what factor, where the curve bends) is visible in CI logs.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(
            " | ".join(
                c.rjust(w) if _is_numeric(c) else c.ljust(w)
                for c, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    try:
        float(text.replace(",", ""))
        return True
    except ValueError:
        return False


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """One-line bar chart (relative magnitudes)."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    top = max(values) or 1.0
    return "".join(blocks[min(8, int(round(8 * v / top)))] for v in values)


def format_series(
    label: str, xs: Sequence, ys: Sequence[float], unit: str = "s"
) -> str:
    """A labelled (x, y) series with a sparkline, one line per point."""
    lines = [f"{label}   {sparkline(list(ys))}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {str(x):>10} : {y:10.4f} {unit}")
    return "\n".join(lines)


def speedup_table(
    xs: Sequence, baseline: Sequence[float], ours: Sequence[float],
    x_name: str = "x", baseline_name: str = "MRApriori", ours_name: str = "YAFIM",
) -> str:
    rows = [
        (x, b, o, b / o if o > 0 else float("inf"))
        for x, b, o in zip(xs, baseline, ours)
    ]
    return format_table(
        [x_name, f"{baseline_name} (s)", f"{ours_name} (s)", "speedup"], rows
    )
