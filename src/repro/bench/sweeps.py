"""Parameter sweeps — support thresholds and partition counts.

Complements :mod:`repro.bench.harness`'s dataset/cluster sweeps with the
two remaining knobs an evaluator turns: the support threshold (the axis
along which level-wise miners degrade) and the partition count (task
granularity vs overhead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.yafim import Yafim
from repro.datasets.transactions import TransactionDataset
from repro.engine.context import Context


@dataclass
class SweepPoint:
    value: float
    seconds: float
    n_itemsets: int
    n_passes: int


def support_sweep(
    dataset: TransactionDataset,
    supports: list[float],
    num_partitions: int = 4,
    max_length: int | None = None,
    yafim_kwargs: dict | None = None,
) -> list[SweepPoint]:
    """YAFIM runtime/output size across decreasing support thresholds.

    Each point runs in a fresh context so cached state never leaks
    between thresholds.
    """
    points = []
    for sup in supports:
        with Context(backend="serial") as ctx:
            t0 = time.perf_counter()
            result = Yafim(
                ctx, num_partitions=num_partitions, **(yafim_kwargs or {})
            ).run(dataset.transactions, sup, max_length=max_length)
            points.append(
                SweepPoint(
                    value=sup,
                    seconds=time.perf_counter() - t0,
                    n_itemsets=result.num_itemsets,
                    n_passes=len(result.iterations),
                )
            )
    return points


def partition_sweep(
    dataset: TransactionDataset,
    partition_counts: list[int],
    min_support: float,
    max_length: int | None = None,
) -> list[SweepPoint]:
    """YAFIM across partition counts (task granularity ablation)."""
    points = []
    for n in partition_counts:
        with Context(backend="serial") as ctx:
            t0 = time.perf_counter()
            result = Yafim(ctx, num_partitions=n).run(
                dataset.transactions, min_support, max_length=max_length
            )
            points.append(
                SweepPoint(
                    value=float(n),
                    seconds=time.perf_counter() - t0,
                    n_itemsets=result.num_itemsets,
                    n_passes=len(result.iterations),
                )
            )
    return points
