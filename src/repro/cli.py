"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``mine``
    Mine frequent itemsets from a transaction file (one space-separated
    transaction per line) or a built-in generated dataset.
``generate``
    Write a generated dataset to a ``.dat`` file.
``compare``
    Run the YAFIM-vs-MRApriori comparison on a generated dataset and
    print the per-pass table (the paper's Fig. 3 view).
``serve``
    Run the multi-tenant mining service (job queue + caches) behind the
    JSON/HTTP front-end, in the foreground.
``submit``
    Submit a mining job to a running server, poll it to completion, and
    print the result like ``mine`` does.

Examples::

    python -m repro generate --dataset mushroom --scale 0.1 --out m.dat
    python -m repro mine --input m.dat --support 0.35 --algorithm yafim
    python -m repro mine --dataset chess --support 0.85 --rules 0.9
    python -m repro compare --dataset medical --support 0.03
    python -m repro serve --port 8080 --workers 4
    python -m repro submit --url http://127.0.0.1:8080 --dataset chess --support 0.85
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ReproError


def _dataset_from_args(args) -> "object":
    from repro.datasets import (
        chess_like,
        medical_cases,
        mushroom_like,
        pumsb_star_like,
        t10i4d100k_like,
    )

    makers = {
        "mushroom": lambda: mushroom_like(scale=args.scale, seed=args.seed),
        "chess": lambda: chess_like(scale=args.scale, seed=args.seed),
        "pumsb_star": lambda: pumsb_star_like(scale=args.scale, seed=args.seed),
        "t10i4d100k": lambda: t10i4d100k_like(scale=args.scale, seed=args.seed),
        "medical": lambda: medical_cases(
            n_cases=max(200, int(5000 * args.scale)), seed=args.seed
        ),
    }
    try:
        return makers[args.dataset]()
    except KeyError:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; choose from {sorted(makers)}"
        ) from None


def _load_transactions(args) -> tuple[str, list]:
    if args.input:
        from repro.datasets import from_lines

        with open(args.input) as f:
            ds = from_lines(args.input, f)
        return ds.name, ds.transactions
    if args.dataset:
        ds = _dataset_from_args(args)
        return ds.name, ds.transactions
    raise SystemExit("provide --input FILE or --dataset NAME")


def _write_trace(traces, path: str) -> None:
    from repro.engine.tracing import export_chrome_trace

    try:
        export_chrome_trace([t for t in traces if t is not None], path)
    except OSError as err:
        raise ReproError(f"cannot write trace file {path!r}: {err}") from err
    print(f"wrote chrome://tracing JSON to {path}")


#: Algorithms accepting the counting fast-path knobs.
_FASTPATH_ALGORITHMS = ("yafim", "rapriori")


def _fastpath_options(args) -> dict:
    """Translate ``--no-fastpath``/``--no-compaction`` into miner options."""
    options = {}
    if getattr(args, "no_fastpath", False):
        options.update(use_dict_encoding=False, use_in_tree_counting=False)
    if getattr(args, "no_compaction", False):
        options["use_compaction"] = False
    if options and getattr(args, "algorithm", "yafim") not in _FASTPATH_ALGORITHMS:
        raise ReproError(
            f"--no-fastpath/--no-compaction apply to "
            f"{'/'.join(_FASTPATH_ALGORITHMS)}, not {args.algorithm!r}"
        )
    return options


def _print_top_itemsets(itemsets: dict, top: int) -> None:
    shown = sorted(itemsets.items(), key=lambda kv: (-kv[1], kv[0]))
    for itemset, count in shown[:top]:
        print(f"  {' '.join(map(str, itemset)):40s} {count}")
    if len(shown) > top:
        print(f"  ... and {len(shown) - top} more")


def _read_delta(path: str) -> list:
    from repro.datasets import from_lines

    with open(path) as f:
        return from_lines(path, f).transactions


def _mine_with_appends(args, txns) -> int:
    """``mine --append-file``: build incremental state over the base
    window, fold each delta file in (one delta pass per affected level),
    and report update cost against a cold re-mine of the final window."""
    import time

    from repro.core.incremental import IncrementalMiner

    store = args.candidate_store if args.candidate_store != "hashtree" else "bitmap"
    t0 = time.perf_counter()
    miner = IncrementalMiner(
        txns, args.support, max_length=args.max_length, candidate_store=store
    )
    build_s = time.perf_counter() - t0
    print(
        f"built incremental state over {miner.n_transactions} txns "
        f"in {build_s:.3f}s (store={store})"
    )
    window = list(txns)
    update_total = 0.0
    for path in args.append_file:
        delta = _read_delta(path)
        window.extend(delta)
        t0 = time.perf_counter()
        miner.append(delta)
        update_s = time.perf_counter() - t0
        update_total += update_s
        up = miner.last_update
        mode = (
            f"full rebuild: {up.rebuild_reason}"
            if up.full_rebuild
            else f"{up.levels_delta} delta / {up.levels_remined} re-mined levels"
        )
        print(
            f"append {path}: +{len(delta)} txns -> v{up.version} "
            f"in {update_s:.3f}s ({mode})"
        )
    result = miner.result()
    print(result.summary())
    _print_top_itemsets(result.itemsets, args.top)
    t0 = time.perf_counter()
    IncrementalMiner(
        window, args.support, max_length=args.max_length, candidate_store=store
    )
    cold_s = time.perf_counter() - t0
    print(
        f"updates {update_total:.3f}s vs full re-mine {cold_s:.3f}s "
        f"({cold_s / max(update_total, 1e-9):.1f}x)"
    )
    if args.trace_out:
        _write_trace([result.trace], args.trace_out)
    return 0


def cmd_mine(args) -> int:
    from repro.core.api import MiningConfig, mine_frequent_itemsets

    name, txns = _load_transactions(args)
    if args.append_file:
        return _mine_with_appends(args, txns)
    result = mine_frequent_itemsets(
        txns,
        config=MiningConfig(
            min_support=args.support,
            algorithm=args.algorithm,
            max_length=args.max_length,
            backend=args.backend,
            parallelism=args.parallelism,
            num_partitions=args.num_partitions,
            candidate_store=args.candidate_store,
            approx=args.approx,
            approx_samples=args.approx_samples,
            approx_ratio=args.approx_ratio,
            sample_frac=args.sample_frac,
            incremental=args.incremental,
            options=_fastpath_options(args),
        ),
    )
    print(result.summary())
    _print_top_itemsets(result.itemsets, args.top)
    if args.rules is not None:
        from repro.core.rules import generate_rules, top_rules

        rules = generate_rules(
            result.itemsets, result.n_transactions, min_confidence=args.rules
        )
        print(f"\n{len(rules)} rules at confidence >= {args.rules:g}:")
        for rule in top_rules(rules, args.top):
            print(f"  {rule}")
    if args.trace_out:
        _write_trace([result.trace], args.trace_out)
    return 0


def cmd_generate(args) -> int:
    ds = _dataset_from_args(args)
    with open(args.out, "w") as f:
        for line in ds.to_lines():
            f.write(line + "\n")
    print(f"wrote {ds.n_transactions} transactions to {args.out}  ({ds.stats()})")
    return 0


def cmd_compare(args) -> int:
    from repro.bench.harness import replay_mr, replay_yafim, run_comparison
    from repro.bench.reporting import format_table
    from repro.cluster import PAPER_CLUSTER

    ds = _dataset_from_args(args)
    print(f"running YAFIM and MRApriori on {ds.name} at minsup={args.support:g} ...")
    store_kwargs = (
        {"candidate_store": args.candidate_store}
        if args.candidate_store != "hashtree"
        else {}
    )
    run = run_comparison(
        ds, args.support, num_partitions=args.parallelism or 8,
        max_length=args.max_length,
        yafim_kwargs={**_fastpath_options(args), **store_kwargs} or None,
        mr_kwargs=store_kwargs or None,
    )
    rows = [(k, mr, ya, x) for k, mr, ya, x in run.per_pass()]
    print(format_table(["pass", "MRApriori (s)", "YAFIM (s)", "speedup"], rows))
    mr_c = replay_mr(run.mrapriori, PAPER_CLUSTER)
    ya_c = replay_yafim(run.yafim, PAPER_CLUSTER)
    print(
        f"outputs identical: {run.outputs_match}   "
        f"measured speedup {run.total_speedup:.2f}x   "
        f"paper-cluster replay {mr_c / ya_c:.1f}x"
    )
    if args.trace_out:
        _write_trace(run.traces, args.trace_out)
    return 0


def cmd_serve(args) -> int:
    from repro.serve.http import MiningServer

    server = MiningServer(
        host=args.host,
        port=args.port,
        quiet=args.quiet,
        shards=args.shards,
        queue_limit=args.queue_limit,
        planner=args.planner,
        n_workers=args.workers,
        dataset_cache_bytes=args.dataset_cache_bytes,
        result_cache_entries=args.result_cache_entries,
        result_ttl_s=args.result_ttl,
        default_timeout_s=args.job_timeout,
    )
    tier = (
        f"shards={args.shards}, workers/shard={args.workers}, "
        f"queue_limit={args.queue_limit}, planner={'on' if args.planner else 'off'}"
        if args.shards > 1 or args.planner
        else f"workers={args.workers}, queue_limit={args.queue_limit}"
    )
    print(
        f"serving on {server.url}  "
        f"({tier}, result_ttl={args.result_ttl:g}s; Ctrl-C to stop)",
        flush=True,
    )
    server.serve_forever()
    return 0


def cmd_submit(args) -> int:
    from repro.core.registry import MiningConfig
    from repro.serve.client import HttpClient
    from repro.serve.http import itemsets_from_payload
    from repro.serve.jobs import ApiError

    if args.append and not args.dataset_id:
        raise ReproError("--append requires --dataset-id")
    client = HttpClient(args.url)
    config = MiningConfig(
        min_support=args.support,
        algorithm=args.algorithm,
        max_length=args.max_length,
        backend=args.backend,
        parallelism=args.parallelism,
        num_partitions=args.num_partitions,
        candidate_store=args.candidate_store,
        approx=args.approx,
        approx_samples=args.approx_samples,
        approx_ratio=args.approx_ratio,
        sample_frac=args.sample_frac,
        incremental=args.incremental,
        options=_fastpath_options(args),
    )
    submit_kwargs = dict(
        priority=args.priority,
        timeout_s=args.timeout,
        max_retries=args.max_retries,
        tenant=args.tenant,
    )
    if args.dataset_id:
        try:
            client.dataset_info(args.dataset_id)
        except ApiError as err:
            if err.code != "unknown_dataset":
                raise
            _, txns = _load_transactions(args)
            info = client.create_dataset(
                args.dataset_id,
                txns,
                max_window=args.max_window,
                max_age_s=args.max_age,
                flush_rows=args.flush_rows,
                flush_age_s=args.flush_age,
            )
            policy = ", ".join(
                f"{k}={v}" for k, v in info.get("policy", {}).items() if v is not None
            )
            print(
                f"registered dataset {args.dataset_id!r} "
                f"(v{info['version']}, {info['n_transactions']} txns"
                + (f", {policy}" if policy else "") + ")"
            )
        if args.append:
            info = client.append_dataset(
                args.dataset_id, _read_delta(args.append), flush=args.flush
            )
            if info.get("flushed", True):
                print(
                    f"appended -> v{info['version']} "
                    f"({info['n_transactions']} txns, "
                    f"{info['invalidated_results']} stale cached result(s) dropped)"
                )
            else:
                print(
                    f"buffered ({info['buffered']} staged row(s), "
                    f"window still v{info['version']})"
                )
        snapshot = client.submit(None, config, dataset=args.dataset_id, **submit_kwargs)
    else:
        _, txns = _load_transactions(args)
        snapshot = client.submit(txns, config, **submit_kwargs)
    job_id = snapshot["job_id"]
    print(f"submitted {job_id} (state={snapshot['state']}, via={snapshot['via']})")
    if args.no_wait:
        return 0
    final = client.wait(job_id, timeout=args.poll_timeout)
    if final["state"] != "done":
        print(f"error: job {job_id} ended {final['state']}: {final.get('error')}",
              file=sys.stderr)
        return 2
    payload = client.result_detail(job_id)
    itemsets = itemsets_from_payload(payload)
    print(
        f"{payload['algorithm']}: {payload['num_itemsets']} frequent itemsets "
        f"(minsup={payload['min_support']:g}, |D|={payload['n_transactions']}, "
        f"via={payload['via']}, run={final.get('run_seconds')}s)"
    )
    approx = payload.get("approx")
    if approx:
        tag = (
            "verified exact" if approx["verified_exact"]
            else f"{len(approx['border_violations'])} border violation(s)"
        )
        print(
            f"  approx: {approx['n_samples']} samples x {approx['sample_frac']:g} "
            f"at r={approx['ratio']:g}, {approx['candidates_verified']} "
            f"candidates verified -> {tag}"
        )
    shown = sorted(itemsets.items(), key=lambda kv: (-kv[1], kv[0]))
    for itemset, count in shown[: args.top]:
        print(f"  {' '.join(map(str, itemset)):40s} {count}")
    if len(shown) > args.top:
        print(f"  ... and {len(shown) - args.top} more")
    return 0


def cmd_watch(args) -> int:
    """``watch``: follow a dataset's frequent-itemset family over the
    ``/changes`` long-poll, printing one line per version transition."""
    from repro.serve.client import HttpClient

    client = HttpClient(args.url)
    info = client.dataset_info(args.dataset_id)
    since = args.since if args.since is not None else info["version"]
    print(
        f"watching {args.dataset_id!r} from v{since} "
        f"(support={args.support:g}, store={args.candidate_store}, "
        f"poll={args.poll_timeout:g}s)"
    )
    polls = 0
    while args.max_polls is None or polls < args.max_polls:
        polls += 1
        payload = client.dataset_changes(
            args.dataset_id,
            since=since,
            min_support=args.support,
            max_length=args.max_length,
            candidate_store=args.candidate_store,
            timeout_s=args.poll_timeout,
        )
        version = payload["version"]
        if payload.get("reset"):
            family = payload["family"]
            print(f"v{version}: reset — full family, {len(family)} itemsets")
            for itemset, count in family[: args.top]:
                print(f"  = {' '.join(map(str, itemset)):40s} {count}")
        elif version == since:
            print(f"v{version}: no change after {args.poll_timeout:g}s")
        else:
            added, removed, changed = (
                payload["added"], payload["removed"], payload["changed"]
            )
            print(
                f"v{since} -> v{version}: +{len(added)} -{len(removed)} "
                f"~{len(changed)} itemsets ({payload['n_transactions']} txns)"
            )
            for itemset, count in added[: args.top]:
                print(f"  + {' '.join(map(str, itemset)):40s} {count}")
            for itemset, count in removed[: args.top]:
                print(f"  - {' '.join(map(str, itemset)):40s} {count}")
            for itemset, old, new in changed[: args.top]:
                print(f"  ~ {' '.join(map(str, itemset)):40s} {old} -> {new}")
        since = version
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="YAFIM reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--dataset", help="generated dataset name")
        p.add_argument("--scale", type=float, default=0.05, help="dataset scale")
        p.add_argument("--seed", type=int, default=0)

    # CLI choices derive from the registries (algorithms, candidate
    # stores, and the engine's BACKENDS tuple), so `register_algorithm` /
    # `register_store` plug new names into the flags without touching
    # this file, and a typo fails at parse time with the valid choices.
    from repro.core.candidatestore import store_names
    from repro.core.registry import algorithm_names
    from repro.engine.executors import BACKENDS

    def fastpath_knobs(p):
        p.add_argument(
            "--no-fastpath", action="store_true",
            help="disable dictionary encoding + in-tree counting "
            "(YAFIM/R-Apriori counting fast path)",
        )
        p.add_argument(
            "--no-compaction", action="store_true",
            help="disable cross-pass transaction dedup/compaction",
        )
        p.add_argument(
            "--candidate-store", default="hashtree", choices=store_names(),
            help="candidate store for Phase-II counting "
            "(bitmap = vertical tid-bitmap kernel)",
        )

    def mining_knobs(p):
        p.add_argument("--support", type=float, required=True)
        p.add_argument("--algorithm", default="yafim", choices=algorithm_names())
        p.add_argument("--max-length", type=int, default=None)
        p.add_argument("--backend", default="threads", choices=BACKENDS)
        p.add_argument("--parallelism", type=int, default=None)
        fastpath_knobs(p)
        p.add_argument(
            "--num-partitions", type=int, default=None,
            help="partitions for the transaction RDD and shuffles",
        )
        p.add_argument(
            "--approx", action="store_true",
            help="sampling fast tier: mine relaxed-threshold samples in "
            "parallel, verify candidates in one exact full-data pass",
        )
        p.add_argument(
            "--approx-samples", type=int, default=4,
            help="independent samples the fast tier mines (n_p)",
        )
        p.add_argument(
            "--approx-ratio", type=float, default=0.8,
            help="threshold relaxation r: samples mine at r * support",
        )
        p.add_argument(
            "--sample-frac", type=float, default=0.1,
            help="fraction of the database each sample draws",
        )
        p.add_argument(
            "--incremental", action="store_true",
            help="incremental tier: delta-maintained counts with "
            "border-bounded re-mining (candidate store defaults to bitmap)",
        )
        p.add_argument("--top", type=int, default=15, help="itemsets/rules to print")

    mine = sub.add_parser("mine", help="mine frequent itemsets")
    common(mine)
    mine.add_argument("--input", help="transaction file (one txn per line)")
    mining_knobs(mine)
    mine.add_argument(
        "--append-file", action="append", default=None, metavar="FILE",
        help="after mining the base window incrementally, append this "
        "file's transactions as a delta update (repeatable; reports "
        "update cost vs a full re-mine)",
    )
    mine.add_argument(
        "--rules", type=float, default=None, metavar="CONF",
        help="also emit association rules at this confidence",
    )
    mine.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the run's chrome://tracing JSON here",
    )
    mine.set_defaults(func=cmd_mine)

    gen = sub.add_parser("generate", help="write a generated dataset to a file")
    common(gen)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=cmd_generate)

    cmp_ = sub.add_parser("compare", help="YAFIM vs MRApriori per-pass comparison")
    common(cmp_)
    cmp_.add_argument("--support", type=float, required=True)
    cmp_.add_argument("--max-length", type=int, default=None)
    cmp_.add_argument("--parallelism", type=int, default=None)
    fastpath_knobs(cmp_)
    cmp_.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write both runs' chrome://tracing JSON here",
    )
    cmp_.set_defaults(func=cmd_compare)

    serve = sub.add_parser("serve", help="run the mining service over HTTP")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 = ephemeral")
    serve.add_argument("--workers", type=int, default=4, help="worker threads")
    serve.add_argument(
        "--shards", type=int, default=1,
        help="mining-service shards behind a consistent-hash router "
        "(each gets --workers threads and its own caches)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=None,
        help="bounded queue per service/shard; full queues answer 429 "
        "(default: unbounded single service, 32 per routed shard)",
    )
    serve.add_argument(
        "--planner", action="store_true",
        help="choose backend/partitions/candidate-store per job from "
        "dataset stats, calibrated by completed runs",
    )
    serve.add_argument(
        "--dataset-cache-bytes", type=int, default=64 * 1024 * 1024,
        help="byte budget for the cross-job dataset cache",
    )
    serve.add_argument(
        "--result-cache-entries", type=int, default=256,
        help="LRU size of the result memoizer",
    )
    serve.add_argument(
        "--result-ttl", type=float, default=300.0,
        help="seconds a memoized result stays fresh",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None,
        help="default per-job timeout in seconds (none = unbounded)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logs",
    )
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser("submit", help="submit a job to a running server")
    common(submit)
    submit.add_argument("--input", help="transaction file (one txn per line)")
    submit.add_argument(
        "--url", default="http://127.0.0.1:8080", help="server base URL",
    )
    mining_knobs(submit)
    submit.add_argument(
        "--dataset-id", default=None, metavar="NAME",
        help="submit against a named server-side dataset (registered "
        "from the local transactions on first use); appends keep its "
        "warm incremental state on one home shard",
    )
    submit.add_argument(
        "--append", default=None, metavar="FILE",
        help="with --dataset-id: append this file's transactions to the "
        "dataset (new version, stale cached results dropped) before "
        "submitting",
    )
    submit.add_argument(
        "--max-window", type=int, default=None, metavar="N",
        help="with --dataset-id (on first registration): retire the "
        "oldest transactions whenever the window exceeds N",
    )
    submit.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="with --dataset-id (on first registration): retire "
        "transactions older than this many seconds",
    )
    submit.add_argument(
        "--flush-rows", type=int, default=None, metavar="N",
        help="with --dataset-id (on first registration): buffer appends "
        "and fold them into one update every N staged rows",
    )
    submit.add_argument(
        "--flush-age", type=float, default=None, metavar="SECONDS",
        help="with --dataset-id (on first registration): flush the "
        "ingest buffer when its oldest staged row is this old",
    )
    submit.add_argument(
        "--flush", action="store_true",
        help="with --append: force the ingest buffer through now instead "
        "of waiting for a flush trigger",
    )
    submit.add_argument("--priority", type=int, default=0, help="lower runs first")
    submit.add_argument(
        "--tenant", default="default",
        help="tenant label for fair-share scheduling and per-tenant metrics",
    )
    submit.add_argument(
        "--timeout", type=float, default=None, help="server-side job timeout (s)",
    )
    submit.add_argument(
        "--max-retries", type=int, default=0,
        help="retries for transient engine faults",
    )
    submit.add_argument(
        "--no-wait", action="store_true", help="print the job id and exit",
    )
    submit.add_argument(
        "--poll-timeout", type=float, default=300.0,
        help="seconds to poll before giving up",
    )
    submit.set_defaults(func=cmd_submit)

    watch = sub.add_parser(
        "watch", help="follow a dataset's itemset-family change feed"
    )
    watch.add_argument(
        "--url", default="http://127.0.0.1:8080", help="server base URL",
    )
    watch.add_argument(
        "--dataset-id", required=True, metavar="NAME",
        help="named server-side dataset to watch",
    )
    watch.add_argument("--support", type=float, required=True)
    watch.add_argument("--max-length", type=int, default=None)
    watch.add_argument(
        "--candidate-store", default="bitmap", choices=store_names(),
        help="candidate store of the watched mining key",
    )
    watch.add_argument(
        "--since", type=int, default=None, metavar="VERSION",
        help="start from this version (default: the current one)",
    )
    watch.add_argument(
        "--poll-timeout", type=float, default=20.0,
        help="seconds each long-poll waits for the next version",
    )
    watch.add_argument(
        "--max-polls", type=int, default=None,
        help="stop after this many polls (default: forever)",
    )
    watch.add_argument("--top", type=int, default=15, help="itemsets to print per diff")
    watch.set_defaults(func=cmd_watch)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
