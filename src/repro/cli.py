"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``mine``
    Mine frequent itemsets from a transaction file (one space-separated
    transaction per line) or a built-in generated dataset.
``generate``
    Write a generated dataset to a ``.dat`` file.
``compare``
    Run the YAFIM-vs-MRApriori comparison on a generated dataset and
    print the per-pass table (the paper's Fig. 3 view).

Examples::

    python -m repro generate --dataset mushroom --scale 0.1 --out m.dat
    python -m repro mine --input m.dat --support 0.35 --algorithm yafim
    python -m repro mine --dataset chess --support 0.85 --rules 0.9
    python -m repro compare --dataset medical --support 0.03
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ReproError


def _dataset_from_args(args) -> "object":
    from repro.datasets import (
        chess_like,
        medical_cases,
        mushroom_like,
        pumsb_star_like,
        t10i4d100k_like,
    )

    makers = {
        "mushroom": lambda: mushroom_like(scale=args.scale, seed=args.seed),
        "chess": lambda: chess_like(scale=args.scale, seed=args.seed),
        "pumsb_star": lambda: pumsb_star_like(scale=args.scale, seed=args.seed),
        "t10i4d100k": lambda: t10i4d100k_like(scale=args.scale, seed=args.seed),
        "medical": lambda: medical_cases(
            n_cases=max(200, int(5000 * args.scale)), seed=args.seed
        ),
    }
    try:
        return makers[args.dataset]()
    except KeyError:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; choose from {sorted(makers)}"
        ) from None


def _load_transactions(args) -> tuple[str, list]:
    if args.input:
        from repro.datasets import from_lines

        with open(args.input) as f:
            ds = from_lines(args.input, f)
        return ds.name, ds.transactions
    if args.dataset:
        ds = _dataset_from_args(args)
        return ds.name, ds.transactions
    raise SystemExit("provide --input FILE or --dataset NAME")


def _write_trace(traces, path: str) -> None:
    from repro.engine.tracing import export_chrome_trace

    try:
        export_chrome_trace([t for t in traces if t is not None], path)
    except OSError as err:
        raise ReproError(f"cannot write trace file {path!r}: {err}") from err
    print(f"wrote chrome://tracing JSON to {path}")


def cmd_mine(args) -> int:
    from repro.core.api import MiningConfig, mine_frequent_itemsets

    name, txns = _load_transactions(args)
    result = mine_frequent_itemsets(
        txns,
        config=MiningConfig(
            min_support=args.support,
            algorithm=args.algorithm,
            max_length=args.max_length,
            backend=args.backend,
            parallelism=args.parallelism,
            num_partitions=args.num_partitions,
        ),
    )
    print(result.summary())
    shown = sorted(result.itemsets.items(), key=lambda kv: (-kv[1], kv[0]))
    for itemset, count in shown[: args.top]:
        print(f"  {' '.join(map(str, itemset)):40s} {count}")
    if len(shown) > args.top:
        print(f"  ... and {len(shown) - args.top} more")
    if args.rules is not None:
        from repro.core.rules import generate_rules, top_rules

        rules = generate_rules(
            result.itemsets, result.n_transactions, min_confidence=args.rules
        )
        print(f"\n{len(rules)} rules at confidence >= {args.rules:g}:")
        for rule in top_rules(rules, args.top):
            print(f"  {rule}")
    if args.trace_out:
        _write_trace([result.trace], args.trace_out)
    return 0


def cmd_generate(args) -> int:
    ds = _dataset_from_args(args)
    with open(args.out, "w") as f:
        for line in ds.to_lines():
            f.write(line + "\n")
    print(f"wrote {ds.n_transactions} transactions to {args.out}  ({ds.stats()})")
    return 0


def cmd_compare(args) -> int:
    from repro.bench.harness import replay_mr, replay_yafim, run_comparison
    from repro.bench.reporting import format_table
    from repro.cluster import PAPER_CLUSTER

    ds = _dataset_from_args(args)
    print(f"running YAFIM and MRApriori on {ds.name} at minsup={args.support:g} ...")
    run = run_comparison(
        ds, args.support, num_partitions=args.parallelism or 8,
        max_length=args.max_length,
    )
    rows = [(k, mr, ya, x) for k, mr, ya, x in run.per_pass()]
    print(format_table(["pass", "MRApriori (s)", "YAFIM (s)", "speedup"], rows))
    mr_c = replay_mr(run.mrapriori, PAPER_CLUSTER)
    ya_c = replay_yafim(run.yafim, PAPER_CLUSTER)
    print(
        f"outputs identical: {run.outputs_match}   "
        f"measured speedup {run.total_speedup:.2f}x   "
        f"paper-cluster replay {mr_c / ya_c:.1f}x"
    )
    if args.trace_out:
        _write_trace(run.traces, args.trace_out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="YAFIM reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--dataset", help="generated dataset name")
        p.add_argument("--scale", type=float, default=0.05, help="dataset scale")
        p.add_argument("--seed", type=int, default=0)

    # CLI choices derive from the registry, so `register_algorithm` plugs
    # new miners into `--algorithm` without touching this file.
    from repro.core.registry import algorithm_names

    mine = sub.add_parser("mine", help="mine frequent itemsets")
    common(mine)
    mine.add_argument("--input", help="transaction file (one txn per line)")
    mine.add_argument("--support", type=float, required=True)
    mine.add_argument("--algorithm", default="yafim", choices=algorithm_names())
    mine.add_argument("--max-length", type=int, default=None)
    mine.add_argument("--backend", default="threads")
    mine.add_argument("--parallelism", type=int, default=None)
    mine.add_argument(
        "--num-partitions", type=int, default=None,
        help="partitions for the transaction RDD and shuffles",
    )
    mine.add_argument("--top", type=int, default=15, help="itemsets/rules to print")
    mine.add_argument(
        "--rules", type=float, default=None, metavar="CONF",
        help="also emit association rules at this confidence",
    )
    mine.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the run's chrome://tracing JSON here",
    )
    mine.set_defaults(func=cmd_mine)

    gen = sub.add_parser("generate", help="write a generated dataset to a file")
    common(gen)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=cmd_generate)

    cmp_ = sub.add_parser("compare", help="YAFIM vs MRApriori per-pass comparison")
    common(cmp_)
    cmp_.add_argument("--support", type=float, required=True)
    cmp_.add_argument("--max-length", type=int, default=None)
    cmp_.add_argument("--parallelism", type=int, default=None)
    cmp_.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write both runs' chrome://tracing JSON here",
    )
    cmp_.set_defaults(func=cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
