"""Deterministic cluster cost model for scalability replays (Figs. 4-5)."""

from repro.cluster.events import EventStats, SimTask, simulate_stage_events, straggler_sensitivity
from repro.cluster.model import PAPER_CLUSTER, ClusterSpec
from repro.cluster.simulation import (
    SimulatedRun,
    SimulatedStage,
    StageRecord,
    list_schedule_makespan,
    simulate_mr_job,
    simulate_mr_run,
    simulate_mr_stage,
    simulate_spark_run,
    simulate_spark_stage,
    speedup_curve,
)

__all__ = [
    "PAPER_CLUSTER",
    "ClusterSpec",
    "EventStats",
    "SimTask",
    "SimulatedRun",
    "SimulatedStage",
    "StageRecord",
    "list_schedule_makespan",
    "simulate_mr_job",
    "simulate_mr_run",
    "simulate_mr_stage",
    "simulate_spark_run",
    "simulate_spark_stage",
    "simulate_stage_events",
    "straggler_sensitivity",
    "speedup_curve",
]
