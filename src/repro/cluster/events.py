"""Discrete-event task simulator — the replay model's high-fidelity tier.

:mod:`repro.cluster.simulation` charges each stage a list-scheduled
makespan plus aggregate byte costs; good enough for curve shapes, but it
cannot express phenomena that live *between* tasks: stragglers, data
locality, per-node bandwidth contention.  This module simulates a stage
at task granularity on an event clock:

* every node runs up to ``cores_per_node`` tasks concurrently,
* a task's service time = measured duration x a deterministic straggler
  multiplier (hash-derived, so replays are reproducible) + its input
  fetch, which is free when a replica of the task's input lives on the
  node (locality hit) and pays the network otherwise,
* the scheduler is delay-free FIFO with best-effort locality: it prefers
  a node holding the task's input among those with free cores.

Used by the straggler study and as a cross-check of the cheap model: with
stragglers off and locality irrelevant, both models agree on makespans
(tested).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.common.errors import ClusterModelError
from repro.common.rng import stable_hash
from repro.cluster.model import ClusterSpec


@dataclass(frozen=True)
class SimTask:
    """One schedulable task for the event simulator."""

    duration_s: float
    input_bytes: int = 0
    #: node ids (0..nodes-1) holding the task's input block replicas;
    #: empty = input is not node-resident (e.g. driver-fed)
    preferred_nodes: tuple = ()

    def __post_init__(self) -> None:
        if self.duration_s < 0 or self.input_bytes < 0:
            raise ClusterModelError("task duration/bytes must be non-negative")


@dataclass
class EventStats:
    makespan_s: float = 0.0
    locality_hits: int = 0
    locality_misses: int = 0
    straggled_tasks: int = 0
    per_node_busy_s: list = field(default_factory=list)
    cores_per_node: int = 1

    @property
    def locality_rate(self) -> float:
        total = self.locality_hits + self.locality_misses
        return self.locality_hits / total if total else 1.0

    @property
    def utilization(self) -> float:
        """Busy core-seconds over total core-seconds of the makespan."""
        if not self.per_node_busy_s or self.makespan_s == 0:
            return 0.0
        capacity = len(self.per_node_busy_s) * self.cores_per_node * self.makespan_s
        return sum(self.per_node_busy_s) / capacity


def simulate_stage_events(
    tasks: list[SimTask],
    spec: ClusterSpec,
    straggler_rate: float = 0.0,
    straggler_factor: float = 1.0,
    seed: int = 0,
) -> EventStats:
    """Event-driven makespan of one stage on ``spec``.

    Parameters
    ----------
    tasks:
        The stage's task set (submission order preserved).
    straggler_rate:
        Fraction of tasks hit by the straggler multiplier.  Selection is
        deterministic per (seed, task index) so replays are reproducible.
    straggler_factor:
        Service-time multiplier for straggling tasks (>= 1).
    """
    if straggler_factor < 1.0:
        raise ClusterModelError("straggler_factor must be >= 1")
    if not 0.0 <= straggler_rate <= 1.0:
        raise ClusterModelError("straggler_rate must be in [0, 1]")
    stats = EventStats(per_node_busy_s=[0.0] * spec.nodes, cores_per_node=spec.cores_per_node)
    if not tasks:
        return stats

    # per-node state: busy core count; event heap of (finish_time, node)
    free_cores = [spec.cores_per_node] * spec.nodes
    events: list[tuple[float, int, int]] = []  # (finish, seq, node)
    seq = itertools.count()
    clock = 0.0
    queue = list(enumerate(tasks))
    queue.reverse()  # pop() from the end = FIFO

    def service_time(index: int, task: SimTask, node: int) -> float:
        dur = task.duration_s
        if straggler_rate > 0.0:
            draw = (stable_hash((seed, index)) % 10_000) / 10_000.0
            if draw < straggler_rate:
                dur *= straggler_factor
                stats.straggled_tasks += 1
        if task.input_bytes:
            if task.preferred_nodes and node in task.preferred_nodes:
                stats.locality_hits += 1  # local read: charged in duration
            else:
                stats.locality_misses += 1
                dur += task.input_bytes / (spec.network_mbps * 1e6)
        return dur

    def try_dispatch() -> None:
        nonlocal clock
        while queue:
            index, task = queue[-1]
            # choose a free node, preferring input locality
            node = None
            for candidate in task.preferred_nodes:
                if 0 <= candidate < spec.nodes and free_cores[candidate] > 0:
                    node = candidate
                    break
            if node is None:
                best = max(range(spec.nodes), key=lambda x: free_cores[x])
                if free_cores[best] <= 0:
                    return  # everything busy; wait for an event
                node = best
            queue.pop()
            free_cores[node] -= 1
            dur = service_time(index, task, node)
            stats.per_node_busy_s[node] += dur
            heapq.heappush(events, (clock + dur, next(seq), node))

    try_dispatch()
    while events:
        finish, _s, node = heapq.heappop(events)
        clock = finish
        free_cores[node] += 1
        try_dispatch()
    stats.makespan_s = clock
    return stats


def straggler_sensitivity(
    tasks: list[SimTask],
    spec: ClusterSpec,
    rates: list[float],
    straggler_factor: float = 5.0,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """(rate, makespan) curve — how stragglers stretch a stage."""
    return [
        (rate, simulate_stage_events(tasks, spec, rate, straggler_factor, seed).makespan_s)
        for rate in rates
    ]
