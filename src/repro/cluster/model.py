"""Cluster specification — the hardware model for scalability replays.

Defaults mirror the paper's testbed: 12 nodes x 2 quad-core Xeons
(= 8 cores/node, 96 cores total), gigabit Ethernet, a single SATA disk
per node.  The MapReduce-specific overheads model Hadoop 1.x behaviour:
a multi-second job submission/startup cost per iteration and a per-task
JVM launch cost, both of which Spark avoids (long-lived executors).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.errors import ClusterModelError


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster for deterministic replay.

    Bandwidths are aggregate *per node*; aggregate cluster bandwidth scales
    with ``nodes``, which is what makes HDFS-bound MapReduce iterations
    shrink sub-linearly while CPU-bound stages shrink linearly.
    """

    nodes: int = 12
    cores_per_node: int = 8
    disk_read_mbps: float = 120.0
    disk_write_mbps: float = 90.0
    network_mbps: float = 110.0  # ~1 GbE effective payload rate
    spark_task_overhead_s: float = 0.005
    mr_task_overhead_s: float = 0.15
    mr_job_startup_s: float = 4.0
    hdfs_replication: int = 2

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ClusterModelError("nodes and cores_per_node must be >= 1")
        for name in ("disk_read_mbps", "disk_write_mbps", "network_mbps"):
            if getattr(self, name) <= 0:
                raise ClusterModelError(f"{name} must be positive")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def with_nodes(self, nodes: int) -> "ClusterSpec":
        return replace(self, nodes=nodes)

    # -- byte-cost helpers ---------------------------------------------------
    def disk_read_seconds(self, nbytes: int) -> float:
        """Cluster-aggregate time to read ``nbytes`` from local disks."""
        return nbytes / (self.disk_read_mbps * 1e6 * self.nodes)

    def disk_write_seconds(self, nbytes: int) -> float:
        """Cluster-aggregate write time; HDFS replication multiplies bytes."""
        return nbytes * self.hdfs_replication / (self.disk_write_mbps * 1e6 * self.nodes)

    def network_seconds(self, nbytes: int) -> float:
        """All-to-all transfer time, bounded by per-node NIC bandwidth."""
        return nbytes / (self.network_mbps * 1e6 * self.nodes)


#: The evaluation cluster from the paper (section V).
PAPER_CLUSTER = ClusterSpec()
