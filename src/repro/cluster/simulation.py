"""Deterministic replay of measured task sets onto a modeled cluster.

The scalability experiments (paper Figs. 4 and 5) vary node counts we do
not physically have.  Rather than fabricate numbers, both runtimes record
*measured* per-task durations and byte counters (engine event log / MR job
metrics); this module replays those records through a list scheduler plus
the :class:`~repro.cluster.model.ClusterSpec` byte-cost model to produce
time-vs-cores and time-vs-datasize curves.  The replay is conservative and
fully deterministic: same inputs, same output.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.common.errors import ClusterModelError
from repro.cluster.model import ClusterSpec


def list_schedule_makespan(durations: list[float], n_workers: int) -> float:
    """Greedy earliest-free-worker makespan for tasks in submission order.

    This is exactly what a FIFO task scheduler produces; it is within 2x of
    optimal (Graham's bound) and matches Spark's behaviour for a single
    stage's task set.
    """
    if n_workers < 1:
        raise ClusterModelError("n_workers must be >= 1")
    if not durations:
        return 0.0
    heap = [0.0] * min(n_workers, len(durations))
    heapq.heapify(heap)
    for dur in durations:
        if dur < 0:
            raise ClusterModelError("negative task duration")
        free_at = heapq.heappop(heap)
        heapq.heappush(heap, free_at + dur)
    return max(heap)


@dataclass
class StageRecord:
    """Measured facts about one stage (one MR phase or one engine stage)."""

    label: str
    task_durations: list[float]
    input_bytes: int = 0  # HDFS reads feeding the stage
    output_bytes: int = 0  # HDFS writes produced by the stage
    shuffle_bytes: int = 0  # network all-to-all volume


@dataclass
class SimulatedStage:
    label: str
    compute_s: float
    io_s: float
    network_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.io_s + self.network_s + self.overhead_s


@dataclass
class SimulatedRun:
    stages: list[SimulatedStage] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(s.total_s for s in self.stages)

    def stage_totals(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.stages:
            out[s.label] = out.get(s.label, 0.0) + s.total_s
        return out


def simulate_spark_stage(record: StageRecord, spec: ClusterSpec) -> SimulatedStage:
    """One engine stage: makespan over all cores + byte costs + task launch."""
    compute = list_schedule_makespan(record.task_durations, spec.total_cores)
    waves = -(-len(record.task_durations) // spec.total_cores) if record.task_durations else 0
    return SimulatedStage(
        label=record.label,
        compute_s=compute,
        io_s=spec.disk_read_seconds(record.input_bytes)
        + spec.disk_write_seconds(record.output_bytes),
        network_s=spec.network_seconds(record.shuffle_bytes),
        overhead_s=waves * spec.spark_task_overhead_s,
    )


def simulate_mr_stage(record: StageRecord, spec: ClusterSpec) -> SimulatedStage:
    """One MapReduce phase: per-task JVM overhead joins the task duration."""
    padded = [d + spec.mr_task_overhead_s for d in record.task_durations]
    compute = list_schedule_makespan(padded, spec.total_cores)
    return SimulatedStage(
        label=record.label,
        compute_s=compute,
        io_s=spec.disk_read_seconds(record.input_bytes)
        + spec.disk_write_seconds(record.output_bytes),
        network_s=spec.network_seconds(record.shuffle_bytes),
        overhead_s=0.0,
    )


def simulate_spark_run(records: list[StageRecord], spec: ClusterSpec) -> SimulatedRun:
    return SimulatedRun([simulate_spark_stage(r, spec) for r in records])


def simulate_mr_job(
    map_record: StageRecord, reduce_record: StageRecord, spec: ClusterSpec
) -> SimulatedRun:
    """One MapReduce job = startup + map phase + shuffle + reduce phase."""
    startup = SimulatedStage(
        label=f"{map_record.label}:startup",
        compute_s=0.0,
        io_s=0.0,
        network_s=0.0,
        overhead_s=spec.mr_job_startup_s,
    )
    return SimulatedRun(
        [startup, simulate_mr_stage(map_record, spec), simulate_mr_stage(reduce_record, spec)]
    )


def simulate_mr_run(
    jobs: list[tuple[StageRecord, StageRecord]], spec: ClusterSpec
) -> SimulatedRun:
    """A chain of MapReduce jobs (one per Apriori level)."""
    run = SimulatedRun()
    for map_rec, red_rec in jobs:
        run.stages.extend(simulate_mr_job(map_rec, red_rec, spec).stages)
    return run


def speedup_curve(
    simulate: "callable[[ClusterSpec], SimulatedRun]",
    base_spec: ClusterSpec,
    node_counts: list[int],
) -> list[tuple[int, float]]:
    """(total_cores, simulated seconds) for each node count."""
    out = []
    for n in node_counts:
        spec = base_spec.with_nodes(n)
        out.append((spec.total_cores, simulate(spec).total_s))
    return out
