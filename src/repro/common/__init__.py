"""Shared utilities: itemset canon, seeded RNG, timing, size estimation."""

from repro.common.errors import (
    BlockUnavailableError,
    ClusterModelError,
    DatasetError,
    EngineError,
    FileAlreadyExists,
    FileNotFoundInDfs,
    HdfsError,
    JobConfigError,
    MapReduceError,
    MiningError,
    ReproError,
    TaskFailedError,
)
from repro.common.itemset import (
    Item,
    Itemset,
    canonical,
    canonical_transaction,
    contains,
    is_canonical,
    join_prefix,
    min_support_count,
    subsets_k_minus_1,
    support_fraction,
)
from repro.common.rng import make_rng, spawn, stable_hash
from repro.common.sizeof import estimate_size, pickled_size
from repro.common.timing import PhaseTimer, Stopwatch, now

__all__ = [
    "BlockUnavailableError",
    "ClusterModelError",
    "DatasetError",
    "EngineError",
    "FileAlreadyExists",
    "FileNotFoundInDfs",
    "HdfsError",
    "Item",
    "Itemset",
    "JobConfigError",
    "MapReduceError",
    "MiningError",
    "PhaseTimer",
    "ReproError",
    "Stopwatch",
    "TaskFailedError",
    "canonical",
    "canonical_transaction",
    "contains",
    "estimate_size",
    "is_canonical",
    "join_prefix",
    "make_rng",
    "min_support_count",
    "now",
    "pickled_size",
    "spawn",
    "stable_hash",
    "subsets_k_minus_1",
    "support_fraction",
]
