"""Dictionary encoding of transactions over the frequent-item alphabet.

After Phase I the only items that can ever appear in a frequent itemset
are the frequent 1-items.  :class:`ItemDictionary` maps them to dense
integer codes ordered by **descending support** (ties broken by the
item's own order, so the mapping is deterministic).  Re-encoding the
cached transaction RDD over this dictionary buys three things at once:

* every later pass hashes and compares small ints — ``HashTree._hash``
  always takes its cheap ``item % fanout`` path, never ``stable_hash``;
* infrequent items are dropped during encoding, so transactions shrink
  before the first candidate pass instead of carrying dead weight
  through every scan;
* dense codes make the frequency-ordered prefix explicit: code 0 is the
  most frequent item, which keeps hash-tree slot sets small and compact
  projections cheap.

The dictionary is built once on the driver and shipped to workers via a
broadcast variable (or a task closure under the broadcast ablation);
mined itemsets are decoded back to the original items before they reach
:class:`~repro.core.results.MiningRunResult`.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.common.itemset import Itemset


class ItemDictionary:
    """Bidirectional item <-> dense-int-code mapping.

    Parameters
    ----------
    items_by_rank:
        Items in code order (code ``i`` = ``items_by_rank[i]``).  Use
        :meth:`from_counts` to build the support-descending ordering the
        fast path wants.
    """

    __slots__ = ("_code_of", "_item_of")

    def __init__(self, items_by_rank: Sequence):
        self._item_of: tuple = tuple(items_by_rank)
        self._code_of: dict = {item: code for code, item in enumerate(self._item_of)}
        if len(self._code_of) != len(self._item_of):
            raise ValueError("duplicate items in dictionary")

    @classmethod
    def from_counts(cls, counts: Mapping) -> "ItemDictionary":
        """Build from item -> support counts, most frequent item first.

        Ties are broken by ascending item so equal-support runs still
        encode deterministically across drivers.
        """
        ranked = sorted(counts, key=lambda item: (-counts[item], item))
        return cls(ranked)

    def __len__(self) -> int:
        return len(self._item_of)

    def __contains__(self, item) -> bool:
        return item in self._code_of

    def code(self, item) -> int:
        return self._code_of[item]

    def item(self, code: int):
        return self._item_of[code]

    def encode_transaction(self, transaction: Iterable) -> tuple:
        """Sorted tuple of codes for the transaction's *frequent* items.

        Infrequent items are dropped; the result is sorted ascending so
        it remains a canonical transaction over the code alphabet
        (ascending code = descending support).
        """
        code_of = self._code_of
        return tuple(sorted(code_of[i] for i in transaction if i in code_of))

    def encode_itemset(self, itemset: Iterable) -> tuple:
        """Encode an itemset known to be fully frequent (KeyError otherwise)."""
        code_of = self._code_of
        return tuple(sorted(code_of[i] for i in itemset))

    def decode_itemset(self, codes: Iterable[int]) -> Itemset:
        """Back to original items, re-sorted into canonical item order."""
        item_of = self._item_of
        return tuple(sorted(item_of[c] for c in codes))
