"""Exception hierarchy shared across the reproduction packages.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch reproduction-level failures without swallowing genuine programming
errors (``TypeError`` and friends propagate untouched).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class EngineError(ReproError):
    """Raised for failures inside the RDD engine (scheduling, shuffle...)."""


class TaskFailedError(EngineError):
    """A task failed more times than the configured retry budget allows."""

    def __init__(self, task_desc: str, attempts: int, cause: BaseException | None = None):
        super().__init__(f"task {task_desc} failed after {attempts} attempt(s): {cause!r}")
        self.task_desc = task_desc
        self.attempts = attempts
        self.cause = cause


class HdfsError(ReproError):
    """Raised for mini-DFS failures (missing files, replication issues...)."""


class FileNotFoundInDfs(HdfsError):
    """The requested path does not exist in the mini-DFS namespace."""


class FileAlreadyExists(HdfsError):
    """Attempted to create a path that already exists (HDFS semantics)."""


class BlockUnavailableError(HdfsError):
    """No live replica of a required block could be located."""


class MapReduceError(ReproError):
    """Raised for failures in the MapReduce runtime."""


class JobConfigError(MapReduceError):
    """A job specification is inconsistent or incomplete."""


class ClusterModelError(ReproError):
    """Raised for invalid cluster-model configuration or replay inputs."""


class DatasetError(ReproError):
    """Raised for invalid dataset-generator parameters or malformed files."""


class MiningError(ReproError):
    """Raised for invalid mining parameters (e.g. out-of-range support)."""
