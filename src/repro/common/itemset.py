"""Canonical itemset representation and helpers.

Throughout the library an *item* is a hashable, orderable value (in practice
an ``int`` or ``str``) and an *itemset* is a ``tuple`` of items sorted in
ascending order.  Sorted tuples give us:

* hashability (usable as dict keys and RDD shuffle keys),
* cheap lexicographic prefix comparison, which is exactly what the
  Apriori ``F(k-1) x F(k-1)`` join step needs,
* a stable, deterministic on-disk text encoding.

All public mining APIs normalise inputs through :func:`canonical`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any, TypeVar

Item = Any
Itemset = tuple
T = TypeVar("T")


def canonical(items: Iterable[Item]) -> Itemset:
    """Return the canonical (sorted, de-duplicated) tuple form of ``items``.

    >>> canonical([3, 1, 2, 3])
    (1, 2, 3)
    """
    return tuple(sorted(set(items)))


def canonical_transaction(items: Iterable[Item]) -> Itemset:
    """Normalise a raw transaction: de-duplicate and sort its items.

    Identical to :func:`canonical`; named separately so call sites document
    whether they are normalising a mined itemset or an input transaction.
    """
    return canonical(items)


def is_canonical(itemset: Sequence[Item]) -> bool:
    """True when ``itemset`` is strictly ascending (therefore duplicate-free)."""
    return all(a < b for a, b in zip(itemset, itemset[1:]))


def subsets_k_minus_1(itemset: Itemset) -> list[Itemset]:
    """All (k-1)-subsets of a k-itemset, in deterministic order.

    Used by the Apriori prune step: a candidate survives only when every
    element of this list is frequent.

    >>> subsets_k_minus_1((1, 2, 3))
    [(2, 3), (1, 3), (1, 2)]
    """
    return [itemset[:i] + itemset[i + 1 :] for i in range(len(itemset))]


def join_prefix(a: Itemset, b: Itemset) -> Itemset | None:
    """Apriori join of two k-itemsets sharing a (k-1)-prefix.

    Returns the joined (k+1)-itemset when ``a`` and ``b`` agree on their
    first ``k-1`` items and ``a[-1] < b[-1]``; otherwise ``None``.
    """
    if a[:-1] == b[:-1] and a[-1] < b[-1]:
        return a + (b[-1],)
    return None


def contains(transaction: Itemset, candidate: Itemset) -> bool:
    """True when the sorted ``transaction`` contains every item of the
    sorted ``candidate`` — a linear merge, O(len(transaction)).
    """
    it = iter(transaction)
    for needle in candidate:
        for have in it:
            if have == needle:
                break
            if have > needle:
                return False
        else:
            return False
    return True


def support_fraction(count: int, n_transactions: int) -> float:
    """Convert an absolute support count to a relative support in [0, 1]."""
    if n_transactions <= 0:
        raise ValueError("n_transactions must be positive")
    return count / n_transactions


def min_support_count(min_support: float, n_transactions: int) -> int:
    """Absolute support-count threshold for a relative ``min_support``.

    The paper (and classic Apriori) treats an itemset as frequent when its
    count is **at least** the threshold, so we round the product *up*: an
    itemset with ``count >= min_support_count(...)`` has relative support
    ``>= min_support`` up to floating-point dust.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    import math

    return max(1, math.ceil(min_support * n_transactions - 1e-9))
