"""Seeded random-number helpers.

Every stochastic component (dataset generators, fault injection, shuffle
sampling) takes an explicit seed and derives child generators through
:func:`spawn`, so whole experiments are reproducible bit-for-bit while
sub-components stay statistically independent.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator from a seed, passing Generators through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def stable_hash(value: object, salt: int = 0) -> int:
    """Deterministic hash, stable across processes and Python runs.

    Python's builtin ``hash`` is randomised per process for ``str`` — unusable
    for shuffle partitioning that must agree between the driver and
    process-pool executors.  CRC32 over the repr (C-speed, well mixed for
    partitioning purposes) keeps this off the profile; it showed up hot
    when implemented as pure-Python FNV-1a.
    """
    import zlib

    data = repr(value).encode("utf-8", "surrogatepass")
    return zlib.crc32(data, salt & 0xFFFFFFFF)
