"""Approximate in-memory / serialized size estimation.

The block manager uses these estimates for its memory budget and the cluster
cost model uses them for shuffle/broadcast byte accounting.  Exact sizes do
not matter — consistent, monotone estimates do — so large collections are
*sampled*: we pickle a bounded, evenly spaced sample and extrapolate by
length, which is the same trick Spark's ``SizeEstimator`` plays.  This
matters because :func:`estimate_size` sits on the shuffle hot path
(``ShuffleManager.put_map_output`` sizes every bucket of every map task):
walking every element would make sizing cost grow with data volume.

Small collections (below :data:`SAMPLING_THRESHOLD` elements) are pickled
exactly — sampling them would save nothing and cost accuracy.
"""

from __future__ import annotations

import itertools
import pickle
import sys

#: Collections with at least this many elements are sampled; anything
#: smaller is sized exactly.
SAMPLING_THRESHOLD = 1024

#: Number of evenly spaced elements pickled when sampling.
_SAMPLE_SIZE = 256


def pickled_size(obj: object) -> int:
    """Exact serialized size in bytes (pickle protocol 5)."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _extrapolate(sample: list, n: int, wrap=lambda s: s) -> int:
    """Scale a sample's pickled size up to an ``n``-element collection.

    ``wrap`` rebuilds the sample into the original container type before
    pickling (a list-of-pairs sample of a dict pickles with per-tuple
    overhead the real dict does not pay).

    Uses the *marginal* per-element cost — the byte difference between
    pickling the whole sample and its first half — rather than the mean.
    Pickle memoizes repeated strings/tuples, so first occurrences are
    expensive and repeats near-free; the sample's second half pickles at
    the steady-state rate the remaining ``n - len(sample)`` elements
    will actually see, while the mean would multiply the one-off
    first-occurrence cost by ``n``.
    """
    k = len(sample)
    full = len(pickle.dumps(wrap(sample), protocol=pickle.HIGHEST_PROTOCOL))
    if k < 8:
        return int(full / max(1, k) * n)
    half = len(pickle.dumps(wrap(sample[: k // 2]), protocol=pickle.HIGHEST_PROTOCOL))
    per_elem = (full - half) / (k - k // 2)
    return int(full + per_elem * (n - k))


def estimate_size(obj: object) -> int:
    """Estimated serialized size in bytes; samples large collections.

    Lists/tuples, dicts and sets with ``>= SAMPLING_THRESHOLD`` elements
    are estimated from an evenly spaced sample of ``_SAMPLE_SIZE``
    elements scaled by ``len`` — O(sample) instead of O(n).  Everything
    else is pickled exactly.
    """
    if isinstance(obj, (list, tuple)):
        n = len(obj)
        if n >= SAMPLING_THRESHOLD:
            step = max(1, n // _SAMPLE_SIZE)
            return _extrapolate(list(obj[::step]), n)
    elif isinstance(obj, dict):
        n = len(obj)
        if n >= SAMPLING_THRESHOLD:
            step = max(1, n // _SAMPLE_SIZE)
            sample = list(itertools.islice(obj.items(), 0, None, step))
            return _extrapolate(sample, n, wrap=dict)
    elif isinstance(obj, (set, frozenset)):
        n = len(obj)
        if n >= SAMPLING_THRESHOLD:
            step = max(1, n // _SAMPLE_SIZE)
            sample = list(itertools.islice(obj, 0, None, step))
            return _extrapolate(sample, n, wrap=set)
    try:
        return pickled_size(obj)
    except Exception:
        return sys.getsizeof(obj)
