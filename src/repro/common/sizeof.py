"""Approximate in-memory / serialized size estimation.

The block manager uses these estimates for its memory budget and the cluster
cost model uses them for shuffle/broadcast byte accounting.  Exact sizes do
not matter — consistent, monotone estimates do — so we measure the pickled
length for containers above a sampling threshold and extrapolate, which is
the same trick Spark's ``SizeEstimator`` plays.
"""

from __future__ import annotations

import pickle
import sys
from collections.abc import Sized

_SAMPLE_LIMIT = 256


def pickled_size(obj: object) -> int:
    """Exact serialized size in bytes (pickle protocol 5)."""
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def estimate_size(obj: object) -> int:
    """Estimated serialized size in bytes; samples large lists.

    For a list/tuple longer than the sampling limit, pickles an evenly
    spaced sample and scales by ``len``, adding the container overhead.
    Everything else is pickled exactly.
    """
    if isinstance(obj, (list, tuple)) and isinstance(obj, Sized) and len(obj) > _SAMPLE_LIMIT:
        n = len(obj)
        step = max(1, n // _SAMPLE_LIMIT)
        sample = obj[::step]
        sample_bytes = len(pickle.dumps(list(sample), protocol=pickle.HIGHEST_PROTOCOL))
        per_elem = sample_bytes / max(1, len(sample))
        return int(per_elem * n)
    try:
        return pickled_size(obj)
    except Exception:
        return sys.getsizeof(obj)
