"""Wall-clock instrumentation used by both runtimes and the bench harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch; safe to start/stop repeatedly.

    >>> sw = Stopwatch()
    >>> with sw.running():
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    @contextmanager
    def running(self):
        self.start()
        try:
            yield self
        finally:
            self.stop()

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None


@dataclass
class PhaseTimer:
    """Named-phase timer: records one duration per labelled phase.

    The bench harness uses one of these per mining run to capture the
    per-iteration times plotted in the paper's Fig. 3 and Fig. 6.
    """

    phases: list[tuple[str, float]] = field(default_factory=list)

    @contextmanager
    def phase(self, label: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.phases.append((label, time.perf_counter() - t0))

    def record(self, label: str, seconds: float) -> None:
        self.phases.append((label, seconds))

    @property
    def total(self) -> float:
        return sum(d for _, d in self.phases)

    def as_dict(self) -> dict[str, float]:
        """Phase label -> duration; duplicate labels accumulate."""
        out: dict[str, float] = {}
        for label, dur in self.phases:
            out[label] = out.get(label, 0.0) + dur
        return out


def now() -> float:
    """Monotonic timestamp used for event-log ordering."""
    return time.perf_counter()
