"""The paper's contribution: YAFIM, its baselines, and post-processing."""

from repro.core.api import MiningConfig, MiningResult, mine_frequent_itemsets
from repro.core.approx import ApproxMiner, ApproxResult, run_approx
from repro.core.candidates import apriori_gen, join_step, prune_step
from repro.core.candidatestore import (
    BitmapStore,
    CandidateStore,
    FlatDictStore,
    LinearStore,
    TrieStore,
    make_store,
    register_store,
    store_names,
    unregister_store,
)
from repro.core.registry import (
    AlgorithmSpec,
    algorithm_names,
    register_algorithm,
    unregister_algorithm,
)
from repro.core.dist_eclat import DistEclat
from repro.core.hashtree import HashTree
from repro.core.incremental import IncrementalMiner, IncrementalUpdate, run_incremental
from repro.core.one_phase import OnePhaseMR
from repro.core.pfp import PFP
from repro.core.rapriori import RApriori
from repro.core.toivonen import ToivonenResult, count_exact, toivonen
from repro.core.topk import TopKResult, mine_top_k
from repro.core.mrapriori import (
    MRApriori,
    dpc_strategy,
    fpc_strategy,
    spc_strategy,
)
from repro.core.results import CompactionStats, IterationStats, MiningRunResult
from repro.core.rules import AssociationRule, generate_rules, generate_rules_parallel, top_rules
from repro.core.summaries import closed_itemsets, maximal_itemsets, negative_border, support_of
from repro.core.variants import DPC, FPC, SPC
from repro.core.yafim import Yafim, load_transactions_rdd

__all__ = [
    "DPC",
    "FPC",
    "SPC",
    "AlgorithmSpec",
    "ApproxMiner",
    "ApproxResult",
    "AssociationRule",
    "BitmapStore",
    "CandidateStore",
    "CompactionStats",
    "DistEclat",
    "FlatDictStore",
    "HashTree",
    "IncrementalMiner",
    "IncrementalUpdate",
    "LinearStore",
    "TrieStore",
    "IterationStats",
    "MRApriori",
    "MiningConfig",
    "MiningResult",
    "PFP",
    "RApriori",
    "MiningRunResult",
    "OnePhaseMR",
    "ToivonenResult",
    "TopKResult",
    "Yafim",
    "algorithm_names",
    "apriori_gen",
    "dpc_strategy",
    "fpc_strategy",
    "register_algorithm",
    "unregister_algorithm",
    "closed_itemsets",
    "count_exact",
    "generate_rules",
    "generate_rules_parallel",
    "join_step",
    "load_transactions_rdd",
    "make_store",
    "maximal_itemsets",
    "mine_frequent_itemsets",
    "mine_top_k",
    "negative_border",
    "prune_step",
    "register_store",
    "run_approx",
    "run_incremental",
    "spc_strategy",
    "store_names",
    "unregister_store",
    "support_of",
    "toivonen",
    "top_rules",
]
