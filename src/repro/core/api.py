"""Unified mining API — one call, any engine.

``mine_frequent_itemsets(transactions, min_support)`` runs YAFIM on an
ephemeral engine context by default; ``algorithm=`` selects any of the
other implementations (all return identical itemsets by construction —
asserted by the integration tests):

========== ==========================================================
algorithm  implementation
========== ==========================================================
yafim      paper's algorithm on the RDD engine (default)
dist_eclat prefix-distributed parallel Eclat on the same engine
pfp        Parallel FP-Growth (Li et al.) on the same engine
apriori    sequential oracle
eclat      vertical tid-set oracle
fpgrowth   pattern-growth oracle
mrapriori  MapReduce baseline (spins up an ephemeral mini-DFS)
========== ==========================================================
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.common.errors import MiningError
from repro.core.results import IterationStats, MiningRunResult

#: Result alias kept for the public API surface.
MiningResult = MiningRunResult


def mine_frequent_itemsets(
    transactions: Iterable[Sequence],
    min_support: float,
    algorithm: str = "yafim",
    max_length: int | None = None,
    backend: str = "threads",
    parallelism: int | None = None,
    num_partitions: int | None = None,
) -> MiningRunResult:
    """Mine all frequent itemsets of ``transactions``.

    Parameters
    ----------
    transactions:
        Iterable of item sequences (items must be hashable + orderable).
    min_support:
        Relative minimum support in (0, 1].
    algorithm:
        ``"yafim"`` (default), ``"apriori"``, ``"eclat"``, ``"fpgrowth"``
        or ``"mrapriori"``.
    max_length:
        Optional cap on mined itemset length.
    backend / parallelism / num_partitions:
        Engine knobs for the parallel algorithms.

    Returns
    -------
    MiningRunResult
        ``result.itemsets`` maps canonical itemsets to absolute support
        counts; per-iteration stats ride along for the parallel miners.
    """
    txns = list(transactions)
    if algorithm == "yafim":
        from repro.core.yafim import Yafim
        from repro.engine.context import Context

        with Context(backend=backend, parallelism=parallelism) as ctx:
            miner = Yafim(ctx, num_partitions=num_partitions)
            return miner.run(txns, min_support, max_length=max_length)

    if algorithm == "dist_eclat":
        from repro.core.dist_eclat import DistEclat
        from repro.engine.context import Context

        with Context(backend=backend, parallelism=parallelism) as ctx:
            miner = DistEclat(ctx, num_partitions=num_partitions)
            return miner.run(txns, min_support, max_length=max_length)

    if algorithm == "pfp":
        from repro.core.pfp import PFP
        from repro.engine.context import Context

        with Context(backend=backend, parallelism=parallelism) as ctx:
            miner = PFP(ctx, num_partitions=num_partitions)
            return miner.run(txns, min_support, max_length=max_length)

    if algorithm == "mrapriori":
        from repro.core.mrapriori import MRApriori
        from repro.hdfs.filesystem import MiniDfs
        from repro.mapreduce.runner import JobRunner

        with MiniDfs(n_datanodes=2, replication=1) as dfs:
            dfs.write_lines(
                "/transactions.txt",
                (" ".join(str(i) for i in sorted(set(t))) for t in txns),
            )
            runner = JobRunner(
                dfs,
                backend="threads" if backend == "threads" else "serial",
                parallelism=parallelism or 4,
            )
            result = MRApriori(runner).run(
                "/transactions.txt", min_support, max_length=max_length
            )
            # Items round-tripped through text; restore original types when
            # they were plain ints.
            if txns and all(isinstance(i, int) for t in txns for i in t):
                result.itemsets = {
                    tuple(sorted(int(i) for i in k)): v for k, v in result.itemsets.items()
                }
            return result

    if algorithm in ("apriori", "eclat", "fpgrowth"):
        import repro.algorithms as alg

        fn = {"apriori": alg.apriori, "eclat": alg.eclat, "fpgrowth": alg.fpgrowth}[algorithm]
        t0 = time.perf_counter()
        itemsets = fn(txns, min_support, max_length=max_length)
        seconds = time.perf_counter() - t0
        result = MiningRunResult(
            algorithm=algorithm, min_support=min_support, n_transactions=len(txns)
        )
        result.itemsets = itemsets
        result.iterations = [
            IterationStats(
                k=0, seconds=seconds, n_candidates=-1, n_frequent=len(itemsets)
            )
        ]
        return result

    raise MiningError(f"unknown algorithm {algorithm!r}")
