"""Unified mining API — one call, any registered algorithm.

``mine_frequent_itemsets(transactions, min_support)`` runs YAFIM on an
ephemeral engine context by default; ``algorithm=`` selects any name in
the :mod:`repro.core.registry` (all built-ins return identical itemsets
by construction — asserted by the integration tests):

========== ==========================================================
algorithm  implementation
========== ==========================================================
yafim      paper's algorithm on the RDD engine (default)
dist_eclat prefix-distributed parallel Eclat on the same engine
pfp        Parallel FP-Growth (Li et al.) on the same engine
apriori    sequential oracle
eclat      vertical tid-set oracle
fpgrowth   pattern-growth oracle
mrapriori  MapReduce baseline (spins up an ephemeral mini-DFS)
========== ==========================================================

Dispatch is entirely registry-driven — there is no per-algorithm branch
here, and :func:`repro.core.registry.register_algorithm` plugs new
miners into this function and the CLI alike.  Prefer passing a
:class:`MiningConfig` for anything beyond the basics::

    result = mine_frequent_itemsets(
        txns, config=MiningConfig(min_support=0.3, algorithm="pfp")
    )

Every result carries the run's observability trail: ``result.trace`` (a
:class:`~repro.engine.tracing.Tracer`, exportable to chrome://tracing)
and ``result.engine_metrics`` for engine-backed algorithms.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Sequence

from repro.common.errors import MiningError
from repro.core.registry import MiningConfig, run_algorithm
from repro.core.results import MiningRunResult

#: Result alias kept for the public API surface.
MiningResult = MiningRunResult

#: legacy positional parameter order of the pre-registry signature
_LEGACY_POSITIONAL = ("algorithm", "max_length", "backend", "parallelism", "num_partitions")


def mine_frequent_itemsets(
    transactions: Iterable[Sequence],
    min_support: float | None = None,
    *legacy_args,
    config: MiningConfig | None = None,
    algorithm: str = "yafim",
    max_length: int | None = None,
    backend: str = "threads",
    parallelism: int | None = None,
    num_partitions: int | None = None,
    **options,
) -> MiningRunResult:
    """Mine all frequent itemsets of ``transactions``.

    Parameters
    ----------
    transactions:
        Iterable of item sequences (items must be hashable + orderable).
    min_support:
        Relative minimum support in (0, 1].  Omit when passing ``config``.
    config:
        A :class:`MiningConfig` carrying every knob at once (keyword-only).
        Mutually exclusive with ``min_support`` and the individual knobs.
    algorithm:
        Any name registered with
        :func:`repro.core.registry.register_algorithm` (built-ins:
        ``"yafim"`` (default), ``"dist_eclat"``, ``"pfp"``,
        ``"apriori"``, ``"eclat"``, ``"fpgrowth"``, ``"mrapriori"``).
    max_length:
        Optional cap on mined itemset length.
    backend / parallelism / num_partitions:
        Engine knobs for the parallel algorithms.
    **options:
        Extra keyword arguments for the selected miner's constructor
        (e.g. YAFIM's ``use_hash_tree=False``).

    Returns
    -------
    MiningRunResult
        ``result.itemsets`` maps canonical itemsets to absolute support
        counts; per-iteration stats (shuffle/broadcast bytes, cache hit
        rate, straggler ratio), ``result.trace`` and
        ``result.engine_metrics`` ride along.

    .. deprecated::
        Passing ``algorithm``/``max_length``/``backend``/... positionally
        (the pre-registry signature) still works but emits a
        ``DeprecationWarning``; pass them as keywords or in a
        :class:`MiningConfig`.
    """
    if legacy_args:
        if len(legacy_args) > len(_LEGACY_POSITIONAL):
            raise TypeError(
                f"mine_frequent_itemsets takes at most "
                f"{2 + len(_LEGACY_POSITIONAL)} positional arguments"
            )
        warnings.warn(
            "passing algorithm/max_length/backend/parallelism/num_partitions "
            "positionally is deprecated; pass them as keywords or use "
            "config=MiningConfig(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        legacy = dict(zip(_LEGACY_POSITIONAL, legacy_args))
        algorithm = legacy.get("algorithm", algorithm)
        max_length = legacy.get("max_length", max_length)
        backend = legacy.get("backend", backend)
        parallelism = legacy.get("parallelism", parallelism)
        num_partitions = legacy.get("num_partitions", num_partitions)

    if config is not None:
        if min_support is not None or legacy_args or options:
            raise MiningError(
                "pass either config=MiningConfig(...) or individual "
                "arguments, not both"
            )
    else:
        if min_support is None:
            raise MiningError("min_support is required (directly or via config=)")
        config = MiningConfig(
            min_support=min_support,
            algorithm=algorithm,
            max_length=max_length,
            backend=backend,
            parallelism=parallelism,
            num_partitions=num_partitions,
            options=options,
        )
    return run_algorithm(transactions, config)
