"""Multi-sample approximate mining — the serving tier's fast path.

Toivonen (:mod:`repro.core.toivonen`) mines ONE sample and loops until a
sample happens to miss nothing.  The multi-sample variant mines ``n_p``
independent samples *in parallel* (one engine partition per sample) at a
relaxed threshold ``s * r``, unions every sample's frequent family with
its negative border into a single candidate set, then makes ONE exact
counting pass over the full database through the pluggable
:mod:`repro.core.candidatestore` kernel:

1. draw ``n_p`` samples of ``sample_frac * |D|`` transactions each,
   seeded per-sample from the job seed (bit-for-bit reproducible);
2. ``run_job`` mines every sample locally with FP-growth at
   ``max(1/|sample|, r * min_support)`` and computes its negative border
   over the full item universe;
3. candidates = union of all frequent families and all borders;
4. one full-data verification pass counts every candidate exactly and
   thresholds at the *original* support — false positives die here;
5. if **any** sample's border contains no globally frequent itemset,
   that sample provably covered the whole frequent lattice, so the
   verified output is exact (``verified_exact=True``).

Error model: precision is always 1.0 (step 4 counts exactly); recall is
1.0 whenever ``verified_exact`` holds and degrades only when every
sample missed part of the lattice — unlike Toivonen there is no
resample loop, the answer ships after exactly one full pass, with the
violation evidence attached as provenance.
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.algorithms.fpgrowth import fpgrowth
from repro.common.errors import MiningError
from repro.common.itemset import Itemset, canonical_transaction, min_support_count
from repro.common.rng import make_rng, spawn
from repro.core.candidatestore import (
    BitmapStore,
    get_store,
    make_store,
    shared_bitmap_counts,
)
from repro.core.results import MiningRunResult, engine_iteration_stats
from repro.core.summaries import negative_border


def _resolve(bc, direct):
    """Broadcast value when shipped by broadcast, closure capture otherwise."""
    return bc.value if bc is not None else direct


def _count_all(stores, rows) -> dict:
    """Exact counts of every store's candidates over ``rows``.

    Bitmap stores count through ONE shared vertical build
    (:func:`~repro.core.candidatestore.shared_bitmap_counts` — the
    per-length stores would otherwise each re-scan the rows); other
    stores exposing the batch ``count_partition`` hook count in one
    call; legacy stores like the paper's
    :class:`~repro.core.hashtree.HashTree` stream ``count_into`` — the
    same duck-typing :class:`~repro.core.counting.CandidateCounter`
    applies in YAFIM's Phase II.
    """
    rows = rows if isinstance(rows, list) else list(rows)
    shared = shared_bitmap_counts(stores, rows)
    counts: dict = {} if shared is None else shared
    streaming = []
    for store in stores:
        if shared is not None and isinstance(store, BitmapStore):
            continue
        count_partition = getattr(store, "count_partition", None)
        if count_partition is not None:
            counts.update(count_partition(rows))
        else:
            streaming.append(store)
    if streaming:
        for txn in rows:
            for store in streaming:
                store.count_into(counts, txn)
    return counts


@dataclass
class ApproxResult(MiningRunResult):
    """A :class:`MiningRunResult` plus the sampling run's provenance.

    ``verified_exact`` is the Toivonen guarantee: at least one sample's
    negative border contained no globally frequent itemset, so the
    (exactly counted) output provably equals the exact miner's.
    ``border_violations`` is the union of globally frequent border
    members across samples — empty iff every sample was clean.
    """

    n_samples: int = 0
    sample_frac: float = 0.0
    ratio: float = 0.0
    seed: int = 0
    sample_sizes: list[int] = field(default_factory=list)
    candidates_verified: int = 0
    border_violations: list[Itemset] = field(default_factory=list)
    verified_exact: bool = False

    def summary(self) -> str:
        tag = "exact" if self.verified_exact else (
            f"{len(self.border_violations)} border violation(s)"
        )
        return (
            super().summary()
            + f"\n  approx: {self.n_samples} samples x {self.sample_frac:g} "
            f"at r={self.ratio:g}, {self.candidates_verified} candidates "
            f"verified -> {tag}"
        )


class SampleMiner:
    """``run_job`` kernel: mine each sample in the partition locally.

    Each element of the samples RDD is one full sample (a list of
    transactions); with one sample per partition the ``n_p`` FP-growth
    runs execute concurrently across the executor pool.  Yields
    ``(sample_size, frequent_itemsets, negative_border)`` per sample.
    """

    def __init__(self, *, bc=None, items=None, min_support: float = 0.0,
                 ratio: float = 0.8, max_length: int | None = None):
        self._bc = bc
        self._items = items
        self._min_support = min_support
        self._ratio = ratio
        self._max_length = max_length

    def __call__(self, _task_ctx, partition):
        all_items = _resolve(self._bc, self._items)
        out = []
        for sample in partition:
            lowered = max(1.0 / len(sample), self._ratio * self._min_support)
            frequent = fpgrowth(sample, lowered, max_length=self._max_length)
            border = negative_border(frequent, items=all_items)
            if self._max_length is not None:
                border = [b for b in border if len(b) <= self._max_length]
            out.append((len(sample), tuple(frequent), tuple(border)))
        return out


class VerifyCounter:
    """``run_job`` kernel: exact candidate counts for one partition.

    One store per candidate length (the stores' ``subset`` contract is
    per-length); each store's batch ``count_partition`` hook runs — so
    the bitmap store's vertical tid-bitmap kernel accelerates the
    verification pass exactly as it does YAFIM's Phase II.
    """

    def __init__(self, *, bc=None, stores=None):
        self._bc = bc
        self._stores = stores

    def __call__(self, _task_ctx, partition):
        stores = _resolve(self._bc, self._stores)
        rows = partition if isinstance(partition, list) else list(partition)
        return _count_all(stores, rows)


class ApproxMiner:
    """Multi-sample approximate miner bound to an engine :class:`Context`.

    Parameters
    ----------
    ctx:
        Engine context (any backend).
    n_samples:
        Independent samples mined in parallel (``n_p``).
    ratio:
        Threshold relaxation ``r``: samples are mined at
        ``max(1/|sample|, r * min_support)``.  Lower values make missed
        patterns rarer but the candidate set larger.
    sample_frac:
        Fraction of the database drawn (without replacement) per sample.
    num_partitions:
        Partitions for the full-data verification pass (default: the
        context's parallelism).
    candidate_store / store_options:
        Registered :mod:`repro.core.candidatestore` store (and its
        constructor kwargs) for the verification pass.
    seed:
        Job seed; per-sample generators derive from it via
        :func:`repro.common.rng.spawn`, so a fixed config reproduces the
        same samples — and therefore the same result — bit for bit.
    use_broadcast:
        Ship the item universe and verification stores via broadcast
        (default) instead of task closures.
    """

    algorithm_name = "approx"

    def __init__(
        self,
        ctx,
        n_samples: int = 4,
        ratio: float = 0.8,
        sample_frac: float = 0.1,
        num_partitions: int | None = None,
        candidate_store: str = "hashtree",
        store_options: dict | None = None,
        seed: int = 0,
        use_broadcast: bool = True,
    ):
        if n_samples < 1:
            raise MiningError(f"n_samples must be >= 1, got {n_samples}")
        if not 0.0 < ratio <= 1.0:
            raise MiningError(f"ratio must be in (0, 1], got {ratio}")
        if not 0.0 < sample_frac <= 1.0:
            raise MiningError(f"sample_frac must be in (0, 1], got {sample_frac}")
        get_store(candidate_store)  # fail on the driver, not in a worker
        self.ctx = ctx
        self.n_samples = n_samples
        self.ratio = ratio
        self.sample_frac = sample_frac
        self.num_partitions = num_partitions or ctx.default_parallelism
        self.candidate_store = candidate_store
        self.store_options = dict(store_options or {})
        self.seed = seed
        self.use_broadcast = use_broadcast

    # -- the algorithm -----------------------------------------------------
    def run(
        self,
        transactions: Iterable[Sequence],
        min_support: float,
        max_length: int | None = None,
    ) -> ApproxResult:
        if not 0.0 < min_support <= 1.0:
            raise MiningError(f"min_support must be in (0, 1], got {min_support}")
        txns = [canonical_transaction(t) for t in transactions]
        txns = [t for t in txns if t]
        n = len(txns)
        if n == 0:
            raise MiningError("cannot mine an empty transaction database")
        threshold = min_support_count(min_support, n)
        all_items = sorted({i for t in txns for i in t})
        result = ApproxResult(
            algorithm=self.algorithm_name,
            min_support=min_support,
            n_transactions=n,
            n_samples=self.n_samples,
            sample_frac=self.sample_frac,
            ratio=self.ratio,
            seed=self.seed,
        )
        run_bcs: list = []

        # ---- phase 1: parallel relaxed-threshold sample mining ----------
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        ship_mark = self.ctx.executor.shipped_bytes_total()
        samples = self._draw_samples(txns)
        with self.ctx.tracer.span(
            "sample_mine", "driver",
            n_samples=self.n_samples, sample_frac=self.sample_frac, ratio=self.ratio,
        ):
            per_sample = self._mine_samples(
                samples, all_items, min_support, max_length, run_bcs
            )
        families = [set(freq) for _, freq, _ in per_sample]
        borders = [set(border) for _, _, border in per_sample]
        candidates = set().union(*families) | set().union(*borders)
        result.sample_sizes = [size for size, _, _ in per_sample]
        result.candidates_verified = len(candidates)
        result.iterations.append(
            engine_iteration_stats(
                self.ctx.event_log.tasks_since(mark),
                k=1,
                seconds=time.perf_counter() - t0,
                n_candidates=-1,  # sampling mines whole families, not one level
                n_frequent=len(candidates),
                shipped_bytes=self.ctx.executor.shipped_bytes_total() - ship_mark,
                label="sample_mine",
            )
        )

        # ---- phase 2: one full-data verification pass -------------------
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        ship_mark = self.ctx.executor.shipped_bytes_total()
        with self.ctx.tracer.span(
            "verify_pass", "driver",
            n_candidates=len(candidates), store=self.candidate_store,
        ):
            counts = self._verify(txns, candidates, run_bcs)
        frequent = {c: v for c, v in counts.items() if v >= threshold}
        result.itemsets = dict(sorted(frequent.items()))
        violations = {c for border in borders for c in border if c in frequent}
        result.border_violations = sorted(violations)
        # ONE clean sample suffices: its family + border provably covered
        # the whole frequent lattice, and every candidate was counted
        # exactly, so the thresholded output is the exact answer.
        result.verified_exact = any(
            not any(c in frequent for c in border) for border in borders
        )
        result.iterations.append(
            engine_iteration_stats(
                self.ctx.event_log.tasks_since(mark),
                k=2,
                seconds=time.perf_counter() - t0,
                n_candidates=len(candidates),
                n_frequent=len(frequent),
                broadcast_bytes=sum(bc.size_bytes for bc in run_bcs),
                shipped_bytes=self.ctx.executor.shipped_bytes_total() - ship_mark,
                label="verify_pass",
            )
        )
        for bc in run_bcs:
            bc.destroy()
        return result

    # -- internals ---------------------------------------------------------
    def _draw_samples(self, txns: list) -> list[list]:
        """``n_samples`` independent without-replacement samples, each from
        its own :func:`spawn`-derived child generator."""
        n = len(txns)
        size = max(1, min(n, round(self.sample_frac * n)))
        samples = []
        for rng in spawn(make_rng(self.seed), self.n_samples):
            idx = rng.choice(n, size=size, replace=False)
            samples.append([txns[i] for i in idx])
        return samples

    def _mine_samples(self, samples, all_items, min_support, max_length,
                      run_bcs) -> list:
        # Borders MUST be computed over the FULL database universe
        # (``all_items``), not the items the samples happen to contain: a
        # globally frequent item absent from every sample would otherwise
        # never enter any border, so the verification pass could not see
        # the miss and ``verified_exact`` would be falsely claimed.
        rdd = self.ctx.parallelize(samples, len(samples))
        bc = None
        if self.use_broadcast:
            bc = self.ctx.broadcast(all_items)
            run_bcs.append(bc)
        kernel = SampleMiner(
            bc=bc,
            items=None if bc is not None else all_items,
            min_support=min_support,
            ratio=self.ratio,
            max_length=max_length,
        )
        return [entry for part in self.ctx.run_job(rdd, kernel) for entry in part]

    def _verify(self, txns, candidates, run_bcs) -> dict:
        """Exact support of every candidate in one pass over ``txns``."""
        by_len: dict[int, list] = defaultdict(list)
        for cand in candidates:
            by_len[len(cand)].append(cand)
        stores = [
            make_store(self.candidate_store, cands, **self.store_options)
            for _, cands in sorted(by_len.items())
        ]
        if not stores:
            return {}
        bc = None
        if self.use_broadcast:
            bc = self.ctx.broadcast(stores)
            run_bcs.append(bc)
        kernel = VerifyCounter(bc=bc, stores=None if bc is not None else stores)
        rdd = self.ctx.parallelize(txns, self.num_partitions)
        merged: dict = {}
        for part_counts in self.ctx.run_job(rdd, kernel):
            for cand, count in part_counts.items():
                merged[cand] = merged.get(cand, 0) + count
        for cand in candidates:  # candidates never seen still get an entry
            merged.setdefault(cand, 0)
        return merged


def run_approx(ctx, transactions, config) -> ApproxResult:
    """Registry-shaped runner: dispatch a ``config.approx`` mining run.

    The fast tier replaces the configured algorithm wholesale — only the
    sampling knobs, the candidate store, and ``options``' ``seed`` /
    ``use_broadcast`` are consulted; algorithm-specific options belong
    to the exact twin and are ignored here.
    """
    miner = ApproxMiner(
        ctx,
        n_samples=config.approx_samples,
        ratio=config.approx_ratio,
        sample_frac=config.sample_frac,
        num_partitions=config.num_partitions,
        candidate_store=config.candidate_store,
        store_options=config.options.get("store_options"),
        seed=config.options.get("seed", 0),
        use_broadcast=config.options.get("use_broadcast", True),
    )
    return miner.run(transactions, config.min_support, max_length=config.max_length)


__all__ = ["ApproxMiner", "ApproxResult", "SampleMiner", "VerifyCounter", "run_approx"]
