"""Candidate generation — ``apriori_gen`` (paper Algorithm 1, line 5).

Join step: every pair of frequent (k-1)-itemsets sharing their first k-2
items (``a[-1] < b[-1]``) joins into a k-candidate.  Prune step: drop any
candidate with an infrequent (k-1)-subset (downward closure).  Sorted
canonical tuples make the join a linear scan over a sorted list grouped
by prefix.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.common.itemset import Itemset, subsets_k_minus_1


def join_step(frequent_prev: Iterable[Itemset]) -> list[Itemset]:
    """All k-itemsets joinable from sorted (k-1)-itemsets (no pruning)."""
    prev = sorted(frequent_prev)
    joined: list[Itemset] = []
    i = 0
    n = len(prev)
    while i < n:
        # group [i, j) shares the (k-2)-prefix
        prefix = prev[i][:-1]
        j = i
        while j < n and prev[j][:-1] == prefix:
            j += 1
        group = prev[i:j]
        for x in range(len(group)):
            ax = group[x]
            for y in range(x + 1, len(group)):
                joined.append(ax + (group[y][-1],))
        i = j
    return joined


def prune_step(
    candidates: Iterable[Itemset], frequent_prev: set[Itemset]
) -> list[Itemset]:
    """Keep only candidates whose every (k-1)-subset is frequent."""
    out = []
    for cand in candidates:
        if all(sub in frequent_prev for sub in subsets_k_minus_1(cand)):
            out.append(cand)
    return out


def apriori_gen(frequent_prev: Iterable[Itemset]) -> list[Itemset]:
    """Join + prune: candidate k-itemsets from frequent (k-1)-itemsets.

    Accepts any iterable of canonical (sorted-tuple) itemsets of a single
    length k-1; returns sorted candidate k-itemsets.

    >>> apriori_gen([(1, 2), (1, 3), (2, 3)])
    [(1, 2, 3)]
    >>> apriori_gen([(1, 2), (1, 3), (2, 4)])
    []
    """
    prev_list = list(frequent_prev)
    if not prev_list:
        return []
    lengths = {len(p) for p in prev_list}
    if len(lengths) != 1:
        raise ValueError(f"mixed itemset lengths in apriori_gen input: {lengths}")
    if lengths == {1}:
        # k=2: every pair of frequent items (prune is vacuous).
        items = sorted(p[0] for p in prev_list)
        return [(items[i], items[j]) for i in range(len(items)) for j in range(i + 1, len(items))]
    prev_set = set(prev_list)
    return sorted(prune_step(join_step(prev_list), prev_set))
