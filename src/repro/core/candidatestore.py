"""Pluggable candidate stores — the counting data structure as an API.

YAFIM's Phase II cost is dominated by candidate support counting, and the
right data structure depends on the data: "A Data Structure Perspective
to the RDD-based Apriori" (PAPERS.md) shows tries and hash tables of
itemsets beating the classic hash tree on Spark, and "RDD-Eclat" shows
tid-bitmap intersection as the core Eclat-style speedup.  This module
turns the counting structure into an interface so every such experiment
is a ~100-line store instead of a miner rewrite.

The interface (:class:`CandidateStore`)::

    insert(candidate)                  # add one k-itemset (idempotent)
    count_into(counts, txn, weight=1)  # += weight per contained candidate
    count_partition(partition, weighted=False) -> dict   # batch kernel
    subset(txn) -> list                # contained candidates
    candidate_index() -> dict          # candidate -> insertion position
    stats() -> dict                    # structure diagnostics
    len(store), iter(store)

**The at-most-once contract.**  ``count_into`` adds ``weight`` to each
contained candidate **at most once per transaction**, even when the
transaction carries duplicate items and even when the same candidate was
inserted more than once (duplicate inserts are no-ops).  This is what
makes the stores behaviorally interchangeable: a store that reported a
candidate once per *matching path* instead of once per transaction would
silently inflate supports.  The contract is enforced for every
registered store by ``tests/core/test_candidatestore.py``.

Stores register under a name so :class:`~repro.core.registry.MiningConfig`
can validate its ``candidate_store`` knob and the CLI can derive
``--candidate-store`` choices::

    from repro.core.candidatestore import make_store, register_store

    store = make_store("bitmap", candidates)
    register_store("mystore", MyStore)   # third-party plug-in

Built-ins:

``hashtree``
    The paper's structure (:class:`~repro.core.hashtree.HashTree`),
    registered as a virtual subclass — the default.
``trie``
    Prefix trie over sorted candidate tuples; counting walks the
    transaction's (deduplicated, sorted) items once per reachable node.
``flatdict``
    Hash table of itemsets with per-transaction k-subset enumeration,
    falling back to a candidate scan when C(|t|, k) outgrows |C_k|.
``bitmap``
    The vertical kernel: per partition, per-item tid-bitmaps (Python
    big-ints) over dict-encoded transactions; every candidate support is
    one bitmap AND chain + ``int.bit_count()``.  Weighted (compacted)
    transactions occupy one tid *run* of length ``weight``, so a single
    popcount still yields the exact weighted support.
``linear``
    Flat list scan (ablation A3's ``use_hash_tree=False`` matcher).
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from itertools import combinations
from math import comb

from repro.common.itemset import Itemset
from repro.core.hashtree import HashTree


class CandidateStore(ABC):
    """Base class for candidate stores over same-length k-itemsets.

    Subclasses call :meth:`_register_candidate` from :meth:`insert` to get
    length validation, duplicate-insert idempotence, insertion-order
    tracking (``candidate_index``/``__iter__``/``__len__``) and the
    default ``subset``/``count_partition``/``stats`` implementations.
    """

    def __init__(self, candidates=()):
        self.k: int | None = None
        self._order: list[Itemset] = []  # insertion order = driver's order
        self._seen: set[Itemset] = set()
        self._index: dict[Itemset, int] | None = None
        for cand in candidates:
            self.insert(cand)

    # -- construction -------------------------------------------------------
    def _register_candidate(self, candidate) -> Itemset | None:
        """Validate + record a candidate; ``None`` when already present."""
        candidate = tuple(candidate)
        if self.k is None:
            if not candidate:
                raise ValueError("cannot insert the empty itemset")
            self.k = len(candidate)
        elif len(candidate) != self.k:
            raise ValueError(
                f"store holds {self.k}-itemsets, got length {len(candidate)}"
            )
        if candidate in self._seen:
            return None
        self._seen.add(candidate)
        self._order.append(candidate)
        self._index = None
        return candidate

    @abstractmethod
    def insert(self, candidate: Itemset) -> None:
        """Add one candidate (idempotent on duplicates)."""

    # -- counting -----------------------------------------------------------
    @abstractmethod
    def count_into(self, counts: dict, transaction, weight: int = 1) -> None:
        """Add ``weight`` to ``counts[cand]`` for every candidate contained
        in ``transaction`` — at most once per candidate per transaction."""

    def count_partition(self, partition, weighted: bool = False) -> dict:
        """Count a whole partition into one dict.

        ``weighted`` partitions hold ``(transaction, multiplicity)`` pairs
        (the compaction representation).  The default streams
        :meth:`count_into`; batch kernels (:class:`BitmapStore`) override
        this with a vertical pass over the materialized partition.
        """
        counts: dict = {}
        count_into = self.count_into
        if weighted:
            for txn, weight in partition:
                count_into(counts, txn, weight)
        else:
            for txn in partition:
                count_into(counts, txn)
        return counts

    def subset(self, transaction) -> list[Itemset]:
        """Candidates contained in ``transaction`` (each at most once)."""
        counts: dict = {}
        self.count_into(counts, transaction)
        return list(counts)

    # -- bookkeeping ---------------------------------------------------------
    def candidate_index(self) -> dict[Itemset, int]:
        """Candidate -> insertion position (= the driver's ``apriori_gen``
        order); built lazily and cached."""
        if self._index is None:
            self._index = {cand: i for i, cand in enumerate(self._order)}
        return self._index

    def stats(self) -> dict:
        """Structure diagnostics (store-specific keys allowed on top)."""
        return {"store": type(self).__name__, "candidates": len(self._order)}

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(self._order)


class LinearStore(CandidateStore):
    """Flat candidate list with precomputed frozensets (ablation A3).

    Quantifies what the structured stores buy: every transaction is
    checked against every candidate.
    """

    def __init__(self, candidates=()):
        self._sets: list[frozenset] = []
        super().__init__(candidates)

    def insert(self, candidate) -> None:
        cand = self._register_candidate(candidate)
        if cand is not None:
            self._sets.append(frozenset(cand))

    def count_into(self, counts: dict, transaction, weight: int = 1) -> None:
        if self.k is None or len(transaction) < self.k:
            return
        issuperset = frozenset(transaction).issuperset
        get = counts.get
        for cand, cset in zip(self._order, self._sets):
            if issuperset(cset):
                counts[cand] = get(cand, 0) + weight

    def subset(self, transaction) -> list[Itemset]:
        if self.k is None or len(transaction) < self.k:
            return []
        issuperset = frozenset(transaction).issuperset
        return [c for c, s in zip(self._order, self._sets) if issuperset(s)]


class TrieStore(CandidateStore):
    """Prefix trie over sorted candidate tuples.

    Interior nodes are plain dicts ``item -> child``; at depth k-1 the
    child *is* the stored candidate tuple, so a terminal hit needs no
    extra leaf object.  Counting walks the transaction's sorted,
    de-duplicated items; each candidate is reachable through exactly one
    item combination, so the at-most-once contract holds by construction.
    """

    def __init__(self, candidates=()):
        self._root: dict = {}
        super().__init__(candidates)

    def insert(self, candidate) -> None:
        cand = self._register_candidate(candidate)
        if cand is None:
            return
        node = self._root
        for item in cand[:-1]:
            node = node.setdefault(item, {})
        node[cand[-1]] = cand

    def count_into(self, counts: dict, transaction, weight: int = 1) -> None:
        k = self.k
        if k is None or len(transaction) < k:
            return
        items = sorted(set(transaction))
        n = len(items)
        if n < k:
            return
        get = counts.get

        def walk(node: dict, start: int, depth: int) -> None:
            last = n - (k - depth)  # deeper levels still need k-depth-1 items
            if depth == k - 1:
                for i in range(start, last + 1):
                    cand = node.get(items[i])
                    if cand is not None:
                        counts[cand] = get(cand, 0) + weight
                return
            for i in range(start, last + 1):
                child = node.get(items[i])
                if child is not None:
                    walk(child, i + 1, depth + 1)

        walk(self._root, 0, 0)

    def stats(self) -> dict:
        nodes = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            nodes += 1
            for child in node.values():
                if isinstance(child, dict):
                    stack.append(child)
        return {**super().stats(), "nodes": nodes}


class FlatDictStore(CandidateStore):
    """Hash table of itemsets with k-subset enumeration per transaction.

    The counting strategy from the data-structure-perspective paper:
    enumerate the transaction's k-subsets and probe a hash set.  When
    ``C(|t|, k)`` outgrows the candidate count the probe direction flips
    to a candidate scan, so dense transactions never pay an exponential
    enumeration.
    """

    #: enumeration runs while C(|t|, k) <= this multiple of |candidates|
    ENUMERATION_FACTOR = 2

    def insert(self, candidate) -> None:
        self._register_candidate(candidate)

    def count_into(self, counts: dict, transaction, weight: int = 1) -> None:
        k = self.k
        if k is None or len(transaction) < k:
            return
        items = tuple(sorted(set(transaction)))
        n = len(items)
        if n < k:
            return
        get = counts.get
        if comb(n, k) <= self.ENUMERATION_FACTOR * len(self._order):
            seen = self._seen
            # items are sorted + unique, so each enumerated subset is a
            # canonical tuple and appears exactly once
            for sub in combinations(items, k):
                if sub in seen:
                    counts[sub] = get(sub, 0) + weight
        else:
            issuperset = frozenset(items).issuperset
            for cand in self._order:
                if issuperset(cand):
                    counts[cand] = get(cand, 0) + weight


def _set_bit_run(buf: bytearray, pos: int, width: int) -> None:
    """Set bits ``[pos, pos + width)`` in a little-endian bit buffer."""
    end = pos + width
    first_byte, first_bit = divmod(pos, 8)
    last_byte, last_bit = divmod(end, 8)  # exclusive end
    if first_byte == last_byte:
        buf[first_byte] |= ((1 << width) - 1) << first_bit
        return
    buf[first_byte] |= (0xFF << first_bit) & 0xFF
    if last_byte > first_byte + 1:
        buf[first_byte + 1 : last_byte] = b"\xff" * (last_byte - first_byte - 1)
    if last_bit:
        buf[last_byte] |= (1 << last_bit) - 1


def build_tid_bitmaps(
    partition, relevant, *, min_items: int = 1, weighted: bool = False
) -> dict:
    """Vertical build: item -> little-endian tid-bitmap int over ``partition``.

    Bit ``t`` of ``bitmaps[item]`` is set when logical transaction ``t``
    contains ``item``; a weighted ``(txn, weight)`` record occupies a run
    of ``weight`` consecutive tid positions.  Rows with fewer than
    ``min_items`` relevant items get no tid run — they cannot support any
    candidate of that many items, so skipping them keeps the bitmaps
    short without changing any intersection count.

    Factored out of :meth:`BitmapStore.count_partition` so several
    per-length stores counting the same partition (the approximate
    miner's one-pass verification) can share ONE build over the union of
    their items instead of each re-scanning the rows.
    """
    buffers: dict = {}
    pos = 0
    for record in partition:
        if weighted:
            txn, weight = record
        else:
            txn, weight = record, 1
        items = set(txn) & relevant
        if len(items) < min_items:
            continue  # supports no candidate: assign it no tid run
        end = pos + weight
        need = (end + 7) >> 3
        for item in items:
            buf = buffers.get(item)
            if buf is None:
                buffers[item] = buf = bytearray(need)
            elif len(buf) < need:
                buf.extend(b"\x00" * (need - len(buf)))
            _set_bit_run(buf, pos, weight)
        pos = end
    if not buffers:
        return {}
    width = (pos + 7) >> 3
    return {
        item: int.from_bytes(
            buf if len(buf) == width else buf + b"\x00" * (width - len(buf)),
            "little",
        )
        for item, buf in buffers.items()
    }


def shared_bitmap_counts(stores, partition, weighted: bool = False) -> dict | None:
    """Count several :class:`BitmapStore` instances over one partition
    with a single shared vertical build.

    Returns the merged candidate counts, or ``None`` when fewer than two
    of ``stores`` are bitmap stores (no build worth sharing — callers
    fall back to per-store counting).  Non-bitmap stores in ``stores``
    are ignored; count those separately.
    """
    bitmap_stores = [
        s for s in stores if isinstance(s, BitmapStore) and s.k is not None
    ]
    if len(bitmap_stores) < 2:
        return None
    rows = partition if isinstance(partition, list) else list(partition)
    relevant = set().union(*(s._items for s in bitmap_stores))
    min_k = min(s.k for s in bitmap_stores)
    bitmaps = build_tid_bitmaps(
        rows, relevant, min_items=min_k, weighted=weighted
    )
    counts: dict = {}
    for store in bitmap_stores:
        counts.update(store.count_partition(rows, weighted, bitmaps=bitmaps))
    return counts


class BitmapStore(CandidateStore):
    """Vertical tid-bitmap counting kernel (the RDD-Eclat speedup).

    :meth:`count_partition` builds one bitmap per candidate item over the
    partition's transactions — bit ``t`` set when transaction ``t``
    contains the item — then computes every candidate's support as
    ``(bm[i1] & bm[i2] & ... & bm[ik]).bit_count()``.  Python big-int
    ``&`` runs over machine words in C, so the per-candidate cost is
    ``(k-1) * n_tids / 64`` word ops instead of a per-transaction walk.

    **Weighted layout.**  A compacted pair ``(txn, weight)`` occupies a
    *run* of ``weight`` consecutive tid positions, all set in each of the
    transaction's item bitmaps, so one ``bit_count()`` of the
    intersection is already the exact weighted support — no per-weight
    bucketing.  Total bitmap length is the partition's logical
    transaction count in *bits*, so the run encoding costs 1/8 byte per
    logical transaction per distinct item.

    **Prefix caching.**  Candidates are intersected in lexicographic
    order with a stack of shared-prefix intersections, so sibling
    candidates (same k-1 prefix — the bulk of ``apriori_gen`` output)
    re-intersect nothing but their last item.

    The per-transaction :meth:`count_into` path (interface contract) is a
    plain candidate scan; miners hit the vertical kernel through
    :meth:`count_partition`.
    """

    def __init__(self, candidates=()):
        self._items: set = set()
        self._sets: list[frozenset] = []
        self._sorted: list[Itemset] | None = None
        super().__init__(candidates)

    def insert(self, candidate) -> None:
        cand = self._register_candidate(candidate)
        if cand is None:
            return
        self._items.update(cand)
        self._sets.append(frozenset(cand))
        self._sorted = None

    def count_into(self, counts: dict, transaction, weight: int = 1) -> None:
        if self.k is None or len(transaction) < self.k:
            return
        issuperset = frozenset(transaction).issuperset
        get = counts.get
        for cand, cset in zip(self._order, self._sets):
            if issuperset(cset):
                counts[cand] = get(cand, 0) + weight

    def count_partition(
        self, partition, weighted: bool = False, *, bitmaps: dict | None = None
    ) -> dict:
        """Counts via the vertical kernel; ``bitmaps`` optionally supplies
        a prebuilt :func:`build_tid_bitmaps` result (it must cover this
        store's items over the same rows), skipping the build — see
        :func:`shared_bitmap_counts`."""
        k = self.k
        if k is None or not self._order:
            return {}
        if bitmaps is None:
            bitmaps = build_tid_bitmaps(
                partition, self._items, min_items=k, weighted=weighted
            )
        if not bitmaps:
            return {}
        # ---- intersect candidates, sharing prefixes via a stack ----------
        if self._sorted is None:
            self._sorted = sorted(self._order)
        counts: dict = {}
        prefix_items: list = []
        prefix_bms: list = []
        for cand in self._sorted:
            depth = 0
            while depth < len(prefix_items) and prefix_items[depth] == cand[depth]:
                depth += 1
            del prefix_items[depth:]
            del prefix_bms[depth:]
            bm = prefix_bms[-1] if prefix_bms else None
            for j in range(depth, k):
                item_bm = bitmaps.get(cand[j], 0)
                bm = item_bm if bm is None else bm & item_bm
                if j < k - 1:
                    prefix_items.append(cand[j])
                    prefix_bms.append(bm)
            support = bm.bit_count()
            if support:
                counts[cand] = support
        return counts

    def stats(self) -> dict:
        return {**super().stats(), "items": len(self._items)}


# ---------------------------------------------------------------------------
# Store registry + factory
# ---------------------------------------------------------------------------
_STORES: dict[str, type] = {}

#: legacy ``HashTree``-era keyword aliases accepted (with a warning) by
#: :func:`make_store`
_LEGACY_STORE_OPTS = {
    "hash_tree_fanout": "fanout",
    "hash_tree_leaf_size": "max_leaf_size",
}


def register_store(name: str, cls: type, *, overwrite: bool = False) -> type:
    """Register a store class under ``name``; returns ``cls``.

    The class must be constructible as ``cls(candidates, **opts)`` and
    honor the :class:`CandidateStore` contract.  Registered names become
    valid ``MiningConfig.candidate_store`` values and CLI
    ``--candidate-store`` choices.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"store name must be a non-empty string, got {name!r}")
    if name in _STORES and not overwrite:
        raise ValueError(
            f"candidate store {name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _STORES[name] = cls
    return cls


def unregister_store(name: str) -> None:
    """Remove a registered store (no-op when absent)."""
    _STORES.pop(name, None)


def store_names() -> list[str]:
    """Sorted names of every registered store (drives CLI choices and
    :class:`~repro.core.registry.MiningConfig` validation)."""
    return sorted(_STORES)


def get_store(name: str) -> type:
    try:
        return _STORES[name]
    except KeyError:
        raise ValueError(
            f"unknown candidate store {name!r}; "
            f"registered stores: {', '.join(store_names())}"
        ) from None


def make_store(name: str, candidates=(), **opts) -> CandidateStore:
    """Build the store registered under ``name`` over ``candidates``.

    ``opts`` go to the store constructor (e.g. ``fanout=``/
    ``max_leaf_size=`` for ``hashtree``).  The pre-API keyword spellings
    ``hash_tree_fanout``/``hash_tree_leaf_size`` are still accepted but
    emit a :class:`DeprecationWarning`.
    """
    for legacy, current in _LEGACY_STORE_OPTS.items():
        if legacy in opts:
            warnings.warn(
                f"make_store option {legacy!r} is deprecated; pass {current!r}",
                DeprecationWarning,
                stacklevel=2,
            )
            opts.setdefault(current, opts.pop(legacy))
    cls = get_store(name)
    return cls(candidates, **opts)


# HashTree predates the interface and conforms by duck typing (it grew
# count_into/candidate_index in PR 4); register it as a virtual subclass
# so isinstance checks treat it as a store.
CandidateStore.register(HashTree)

register_store("hashtree", HashTree)
register_store("trie", TrieStore)
register_store("flatdict", FlatDictStore)
register_store("bitmap", BitmapStore)
register_store("linear", LinearStore)

__all__ = [
    "BitmapStore",
    "CandidateStore",
    "FlatDictStore",
    "LinearStore",
    "TrieStore",
    "build_tid_bitmaps",
    "get_store",
    "make_store",
    "register_store",
    "shared_bitmap_counts",
    "store_names",
    "unregister_store",
]
