"""Picklable per-partition kernels for the counting fast path.

Every class here is a top-level callable so the process backend can
cloudpickle it inside a task closure.  Each kernel resolves its shipped
state exactly once per partition — through a broadcast variable when the
miner runs with ``use_broadcast`` (the paper's §IV-C behaviour), or a
direct closure capture under the A1 ablation — then streams the
partition.

The fast-path kernels replace the seed's
``flat_map(subset) -> map((cand, 1)) -> reduceByKey`` shape with a
single ``map_partitions`` pass that aggregates into a per-partition
dict *during* the hash-tree walk (:meth:`HashTree.count_into`), so the
shuffle sees one ``(candidate_index, partial_count)`` record per
distinct candidate per partition instead of one tuple per match.
Candidate *indexes* (ints into the driver's ``apriori_gen`` order) keep
shuffle keys small and constant-size; the driver decodes them after
``collect_as_map``.
"""

from __future__ import annotations

from itertools import combinations

from repro.common.sizeof import estimate_size


def _resolve(bc, direct):
    """Broadcast value when shipped by broadcast, closure capture otherwise."""
    return bc.value if bc is not None else direct


# -- Phase I ---------------------------------------------------------------
class Phase1PartitionCounter:
    """``run_job`` kernel: one scan yields ``(n_transactions, item -> count)``.

    Replaces the seed's two jobs (``count()`` + item-count shuffle) with a
    single shuffle-free pass; the driver merges the per-partition
    counters and applies the support threshold itself.
    """

    def __call__(self, _task_ctx, partition):
        n = 0
        counts: dict = {}
        get = counts.get
        for txn in partition:
            n += 1
            for item in txn:
                counts[item] = get(item, 0) + 1
        return n, counts


def merge_counters(parts) -> tuple[int, dict]:
    """Driver-side merge of :class:`Phase1PartitionCounter` results."""
    total = 0
    merged: dict = {}
    get = merged.get
    for n, counts in parts:
        total += n
        for item, c in counts.items():
            merged[item] = get(item, 0) + c
    return total, merged


# -- working-set preparation ----------------------------------------------
class TransactionEncoder:
    """Re-encode/project a transaction partition after Phase I.

    With a dictionary: items become dense int codes ordered by descending
    support, infrequent items dropped.  Without one (compaction without
    encoding): items are projected onto the frequent-item set, original
    values kept.  With ``dedupe`` the partition's identical encoded
    transactions collapse into ``(txn, multiplicity)`` pairs.
    Transactions left with fewer than two items can never support a
    k>=2 candidate and are dropped either way.
    """

    def __init__(self, *, dict_bc=None, dictionary=None, keep_bc=None, keep=None,
                 dedupe: bool = False):
        self._dict_bc = dict_bc
        self._dictionary = dictionary
        self._keep_bc = keep_bc
        self._keep = keep
        self._dedupe = dedupe

    def _encoder(self):
        dictionary = _resolve(self._dict_bc, self._dictionary)
        if dictionary is not None:
            return dictionary.encode_transaction
        keep = _resolve(self._keep_bc, self._keep)
        return lambda txn: tuple(i for i in txn if i in keep)

    def __call__(self, partition):
        encode = self._encoder()
        if not self._dedupe:
            for txn in partition:
                enc = encode(txn)
                if len(enc) >= 2:
                    yield enc
            return
        counts: dict = {}
        get = counts.get
        for txn in partition:
            enc = encode(txn)
            if len(enc) >= 2:
                counts[enc] = get(enc, 0) + 1
        yield from counts.items()


class TransactionCompactor:
    """Between-pass shrink of a weighted working partition.

    Projects out items that appear in no frequent k-itemset, drops
    transactions now too short to contain a (k+1)-candidate, and re-merges
    duplicates (projection creates new collisions) summing multiplicities.
    """

    def __init__(self, *, keep_bc=None, keep=None, min_len: int = 2):
        self._keep_bc = keep_bc
        self._keep = keep
        self._min_len = min_len

    def __call__(self, partition):
        keep = _resolve(self._keep_bc, self._keep)
        min_len = self._min_len
        counts: dict = {}
        get = counts.get
        for txn, weight in partition:
            proj = tuple(i for i in txn if i in keep)
            if len(proj) >= min_len:
                counts[proj] = get(proj, 0) + weight
        yield from counts.items()


class PartitionSummarizer:
    """``run_job`` kernel: ``(rows, items, est_bytes, weight)`` per partition.

    ``weight`` is the logical transaction count the rows represent (sum
    of multiplicities when weighted, = rows otherwise).  Feeds
    :class:`~repro.core.results.CompactionStats`; running it against a
    freshly cached RDD also materializes the cache.
    """

    def __init__(self, weighted: bool):
        self._weighted = weighted

    def __call__(self, _task_ctx, partition):
        data = list(partition)
        if self._weighted:
            items = sum(len(txn) for txn, _w in data)
            weight = sum(w for _txn, w in data)
        else:
            items = sum(len(txn) for txn in data)
            weight = len(data)
        return len(data), items, estimate_size(data), weight


# -- Phase II --------------------------------------------------------------
class CandidateCounter:
    """Fast-path counting kernel: ``(candidate_index, partial_count)``.

    Aggregates the whole partition into one counter — no match lists, no
    per-match pair tuples — and emits one record per distinct matched
    candidate.  Stores exposing ``count_partition`` (the pluggable
    :class:`~repro.core.candidatestore.CandidateStore` batch hook, e.g.
    ``BitmapStore``'s vertical bitmap kernel) count the materialized
    partition in one shot; anything else (including the pre-API
    ``HashTree``) streams per-transaction ``count_into``.  Indexes refer
    to the matcher's construction order (= the driver's ``apriori_gen``
    order), so the reduced map decodes driver-side via
    ``candidates[index]``.
    """

    def __init__(self, *, bc=None, matcher=None, weighted: bool = False):
        self._bc = bc
        self._matcher = matcher
        self._weighted = weighted

    def __call__(self, partition):
        matcher = _resolve(self._bc, self._matcher)
        count_partition = getattr(matcher, "count_partition", None)
        if count_partition is not None:
            counts = count_partition(partition, weighted=self._weighted)
        else:
            counts = {}
            count_into = matcher.count_into
            if self._weighted:
                for txn, weight in partition:
                    count_into(counts, txn, weight)
            else:
                for txn in partition:
                    count_into(counts, txn)
        index = matcher.candidate_index()
        for cand, n in counts.items():
            yield index[cand], n


class CandidateEmitter:
    """Baseline-shape kernel: one ``(candidate, weight)`` pair per match.

    Equivalent to the seed's ``flat_map(subset).map((cand, 1))`` fused
    into one stage; used when ``use_in_tree_counting`` is off so the
    ablation still measures the materialize-then-shuffle cost.
    """

    def __init__(self, *, bc=None, matcher=None, weighted: bool = False):
        self._bc = bc
        self._matcher = matcher
        self._weighted = weighted

    def __call__(self, partition):
        matcher = _resolve(self._bc, self._matcher)
        subset = matcher.subset
        if self._weighted:
            for txn, weight in partition:
                for cand in subset(txn):
                    yield cand, weight
        else:
            for txn in partition:
                for cand in subset(txn):
                    yield cand, 1


# -- R-Apriori pass 2 ------------------------------------------------------
class PairCounter:
    """Candidate-free pair counting with a per-partition counter.

    ``keep``/``keep_bc`` carry the frequent-item set when the working RDD
    still holds raw transactions; ``None`` means the transactions were
    already projected onto frequent items (encoding/compaction on), so no
    per-transaction filter — and no pass-2 shipping at all — is needed.
    """

    def __init__(self, *, keep_bc=None, keep=None, filter_items: bool = True,
                 weighted: bool = False):
        self._keep_bc = keep_bc
        self._keep = keep
        self._filter = filter_items
        self._weighted = weighted

    def __call__(self, partition):
        keep = _resolve(self._keep_bc, self._keep) if self._filter else None
        counts: dict = {}
        get = counts.get
        if self._weighted:
            for txn, weight in partition:
                kept = [i for i in txn if i in keep] if keep is not None else txn
                for pair in combinations(kept, 2):
                    counts[pair] = get(pair, 0) + weight
        else:
            for txn in partition:
                kept = [i for i in txn if i in keep] if keep is not None else txn
                for pair in combinations(kept, 2):
                    counts[pair] = get(pair, 0) + 1
        yield from counts.items()


class PairEmitter:
    """Baseline-shape pair enumeration: one ``(pair, weight)`` per match."""

    def __init__(self, *, keep_bc=None, keep=None, filter_items: bool = True,
                 weighted: bool = False):
        self._keep_bc = keep_bc
        self._keep = keep
        self._filter = filter_items
        self._weighted = weighted

    def __call__(self, partition):
        keep = _resolve(self._keep_bc, self._keep) if self._filter else None
        if self._weighted:
            for txn, weight in partition:
                kept = [i for i in txn if i in keep] if keep is not None else txn
                for pair in combinations(kept, 2):
                    yield pair, weight
        else:
            for txn in partition:
                kept = [i for i in txn if i in keep] if keep is not None else txn
                for pair in combinations(kept, 2):
                    yield pair, 1
