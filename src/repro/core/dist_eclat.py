"""DistEclat — parallel Eclat on the RDD engine (related-work extension).

The paper's related work highlights Dist-Eclat (Moens et al., IEEE Big
Data 2013): distribute frequent *prefixes* over workers, then let each
worker mine its prefix's conditional database depth-first over vertical
tid-sets.  This module implements that scheme on the same engine YAFIM
runs on, giving the library a second parallel miner with a completely
different traversal (depth-first, candidate-free) — useful both as a
performance alternative for low-support workloads and as yet another
cross-check of YAFIM's output.

Algorithm:

1. one shuffle builds the vertical layout ``item -> tid-set`` and keeps
   the frequent items (this is Dist-Eclat's "find frequent singletons"
   step, expressed as ``flatMap -> groupByKey``),
2. frequent items become mining *prefixes*, hash-partitioned across the
   cluster; each prefix's job ships with the tid-sets of the items that
   can extend it (items greater in the total order),
3. each partition mines its prefixes depth-first with set intersection,
   entirely locally — no further shuffles (k-phase Apriori's per-level
   synchronisation is gone, which is the point of the design).

``candidate_store="bitmap"`` swaps the frozenset tid-sets for big-int
tid-*bitmaps* mined with ``&`` + ``int.bit_count()`` — the RDD-Eclat
speedup (PAPERS.md, arxiv 1912.06415) and the same intersection kernel
:class:`~repro.core.candidatestore.BitmapStore` uses for Apriori-family
counting.  DistEclat is candidate-free, so every other registered store
name keeps the frozenset representation; outputs are identical either
way.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.common.errors import MiningError
from repro.common.itemset import canonical_transaction, min_support_count
from repro.core.results import MiningRunResult, engine_iteration_stats
from repro.engine.context import Context
from repro.engine.tracing import collect_engine_metrics


class DistEclat:
    """Prefix-distributed parallel Eclat bound to an engine context.

    Parameters
    ----------
    ctx:
        Engine context (any backend).
    num_partitions:
        How many prefix groups to mine in parallel.
    candidate_store:
        Registered store name (validated); ``"bitmap"`` selects big-int
        tid-bitmap intersection, anything else frozenset tid-sets (the
        miner is candidate-free, so only the vertical representation
        changes).
    """

    def __init__(
        self,
        ctx: Context,
        num_partitions: int | None = None,
        candidate_store: str = "hashtree",
    ):
        from repro.core.candidatestore import get_store

        get_store(candidate_store)  # validate the name up front
        self.ctx = ctx
        self.num_partitions = num_partitions or ctx.default_parallelism
        self.candidate_store = candidate_store
        self.use_bitmaps = candidate_store == "bitmap"

    def run(
        self,
        transactions: Iterable[Sequence],
        min_support: float,
        max_length: int | None = None,
    ) -> MiningRunResult:
        if not 0.0 < min_support <= 1.0:
            raise MiningError(f"min_support must be in (0, 1], got {min_support}")
        txns = [canonical_transaction(t) for t in transactions]
        if not txns:
            raise MiningError("cannot mine an empty transaction database")
        n = len(txns)
        threshold = min_support_count(min_support, n)
        result = MiningRunResult(
            algorithm="dist_eclat", min_support=min_support, n_transactions=n
        )

        # ---- phase 1: vertical layout + frequent singletons (one shuffle)
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        rdd = self.ctx.parallelize(list(enumerate(txns)), self.num_partitions)
        tidsets = dict(
            rdd.flat_map(lambda pair: [(item, pair[0]) for item in pair[1]])
            .group_by_key(self.num_partitions)
            .map_values(frozenset)
            .filter(lambda kv: len(kv[1]) >= threshold)
            .collect()
        )
        singletons = {(item,): len(tids) for item, tids in tidsets.items()}
        result.itemsets.update(singletons)
        result.iterations.append(
            engine_iteration_stats(
                self.ctx.event_log.tasks_since(mark),
                k=1,
                seconds=time.perf_counter() - t0,
                n_candidates=-1,
                n_frequent=len(singletons),
            )
        )
        if max_length is not None and max_length <= 1:
            self._attach_observability(result)
            return result

        # ---- phase 2: distribute prefixes, mine depth-first locally ------
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        order = sorted(tidsets)
        jobs = []
        for idx, item in enumerate(order):
            tail = order[idx + 1 :]
            if tail:
                jobs.append((item, tail))
        if self.use_bitmaps:
            # big-int tid-bitmaps: intersection is a C-speed word-wise AND
            # and support one popcount, vs. per-element frozenset hashing
            vertical = {
                item: _tids_to_bitmap(tids, n) for item, tids in tidsets.items()
            }
        else:
            vertical = tidsets
        bc_tidsets = self.ctx.broadcast(vertical)

        def mine_prefix(job, _bc=bc_tidsets, _thr=threshold, _max=max_length,
                        _bitmap=self.use_bitmaps):
            item, tail = job
            tids = _bc.value
            support_of = int.bit_count if _bitmap else len
            found: list[tuple] = []

            def extend(prefix, prefix_tids, tail_items):
                for j, nxt in enumerate(tail_items):
                    new_tids = prefix_tids & tids[nxt]
                    if support_of(new_tids) < _thr:
                        continue
                    new_prefix = prefix + (nxt,)
                    found.append((new_prefix, support_of(new_tids)))
                    if _max is None or len(new_prefix) < _max:
                        extend(new_prefix, new_tids, tail_items[j + 1 :])

            extend((item,), tids[item], tail)
            return found

        mined = (
            self.ctx.parallelize(jobs, self.num_partitions)
            .flat_map(mine_prefix)
            .collect()
        )
        result.itemsets.update(dict(mined))
        result.iterations.append(
            engine_iteration_stats(
                self.ctx.event_log.tasks_since(mark),
                k=2,  # one parallel depth-first phase covers all levels >= 2
                seconds=time.perf_counter() - t0,
                n_candidates=len(jobs),
                n_frequent=len(mined),
                broadcast_bytes=bc_tidsets.size_bytes,
            )
        )
        bc_tidsets.destroy()
        self._attach_observability(result)
        return result

    def _attach_observability(self, result: MiningRunResult) -> None:
        result.trace = self.ctx.tracer
        result.engine_metrics = collect_engine_metrics(self.ctx)


def _tids_to_bitmap(tids, n_txns: int) -> int:
    """Frozenset of tids -> little-endian big-int bitmap over n_txns bits."""
    buf = bytearray((n_txns + 7) >> 3)
    for t in tids:
        buf[t >> 3] |= 1 << (t & 7)
    return int.from_bytes(buf, "little")
