"""Hash tree for candidate itemsets (paper §IV-A, Fig. 2).

The classic Apriori data structure (Agrawal & Srikant 1994): candidates of
length k are stored in a tree whose interior nodes hash the item at the
current depth into a fixed fan-out, splitting leaves that overflow.
``subset(transaction)`` walks the tree enumerating exactly the candidates
contained in the transaction — the ``C_t = subset(C_k, t)`` step of
Algorithm 1/3 — in time far below a linear scan of all candidates.

The tree is built once per iteration on the driver and shipped to workers
through a broadcast variable (§IV-C).

``HashTree`` predates the pluggable :class:`repro.core.candidatestore`
API but honors its **at-most-once contract**: ``count_into``/``subset``
report each candidate at most once per transaction.  Containment checks
run against the transaction's item *set* (duplicate transaction items
collapse), every node is visited at most once by the slot-set walk, and
``insert`` ignores duplicate candidates — a re-inserted candidate would
otherwise occupy two bucket slots and silently double-count.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.common.itemset import Itemset
from repro.common.rng import stable_hash


class _Node:
    __slots__ = ("children", "bucket", "is_leaf")

    def __init__(self) -> None:
        self.children: dict[int, _Node] | None = None
        self.bucket: list[Itemset] = []
        self.is_leaf = True


class HashTree:
    """Hash tree over canonical k-itemsets.

    Parameters
    ----------
    candidates:
        Iterable of same-length sorted tuples.
    fanout:
        Interior-node hash width.  Wider trees prune better under the
        slot-set walk (default 64; profiling on the dense datasets showed
        8 degenerates to a near-full scan).
    max_leaf_size:
        Leaf bucket capacity before splitting (leaves at depth >= k never
        split — all their candidates share the full hashed prefix).
    """

    def __init__(self, candidates: Iterable[Itemset] = (), fanout: int = 64, max_leaf_size: int = 16):
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        if max_leaf_size < 1:
            raise ValueError("max_leaf_size must be >= 1")
        self.fanout = fanout
        self.max_leaf_size = max_leaf_size
        self.k: int | None = None
        self.size = 0
        self._root = _Node()
        self._order: list[Itemset] = []  # insertion order = driver's candidate order
        self._seen: set[Itemset] = set()
        self._index: dict[Itemset, int] | None = None  # lazy, built worker-side
        for cand in candidates:
            self.insert(cand)

    # -- construction -------------------------------------------------------
    def _hash(self, item) -> int:
        if isinstance(item, int):
            return item % self.fanout  # cheap + well-spread for int items
        return stable_hash(item) % self.fanout

    def insert(self, candidate: Itemset) -> None:
        candidate = tuple(candidate)
        if self.k is None:
            if not candidate:
                raise ValueError("cannot insert the empty itemset")
            self.k = len(candidate)
        elif len(candidate) != self.k:
            raise ValueError(
                f"hash tree holds {self.k}-itemsets, got length {len(candidate)}"
            )
        if candidate in self._seen:
            return  # duplicate insert must not double-count (store contract)
        self._seen.add(candidate)
        node = self._root
        depth = 0
        while not node.is_leaf:
            node = node.children.setdefault(self._hash(candidate[depth]), _Node())
            depth += 1
        node.bucket.append(candidate)
        self._order.append(candidate)
        self._index = None
        self.size += 1
        if len(node.bucket) > self.max_leaf_size and depth < self.k:
            self._split(node, depth)

    def _split(self, node: _Node, depth: int) -> None:
        node.is_leaf = False
        node.children = {}
        for cand in node.bucket:
            child = node.children.setdefault(self._hash(cand[depth]), _Node())
            child.bucket.append(cand)
        node.bucket = []
        # recursively split oversized children (identical hashed prefixes)
        for child in node.children.values():
            if len(child.bucket) > self.max_leaf_size and depth + 1 < self.k:
                self._split(child, depth + 1)

    # -- queries ----------------------------------------------------------
    def subset(self, transaction: Sequence) -> list[Itemset]:
        """Candidates contained in the ``transaction``.

        Hash-tree walk with slot-set pruning: a subtree under slot ``s`` at
        any depth can only hold matching candidates when some transaction
        item hashes to ``s``, so the walk descends exactly into the slots
        covered by the transaction's items.  Every candidate lives in one
        leaf and every node is visited at most once, so matches are unique
        by construction; leaves do the authoritative containment check
        against the transaction's item set.

        (The classic formulation also threads item *positions* through the
        walk; profiling showed the per-call recursion cost in Python far
        outweighs that extra pruning, while the slot-set walk visits at
        most one node per tree node — see DESIGN.md.)
        """
        if self.k is None or len(transaction) < self.k:
            return []
        txn_set = frozenset(transaction)
        slots = {self._hash(i) for i in txn_set}
        out: list[Itemset] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for cand in node.bucket:
                    if txn_set.issuperset(cand):
                        out.append(cand)
            else:
                for slot, child in node.children.items():
                    if slot in slots:
                        stack.append(child)
        return out

    def count_into(self, counts: dict, transaction: Sequence, weight: int = 1) -> None:
        """Add ``weight`` to ``counts[cand]`` for every contained candidate.

        Same slot-set walk as :meth:`subset`, but increments a
        per-partition counter in place instead of materializing a match
        list — the counting fast path allocates one dict entry per
        *distinct* matched candidate rather than one tuple per match
        per transaction.
        """
        if self.k is None or len(transaction) < self.k:
            return
        txn_set = frozenset(transaction)
        slots = {self._hash(i) for i in txn_set}
        issuperset = txn_set.issuperset
        get = counts.get
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for cand in node.bucket:
                    if issuperset(cand):
                        counts[cand] = get(cand, 0) + weight
            else:
                for slot, child in node.children.items():
                    if slot in slots:
                        stack.append(child)

    def candidate_index(self) -> dict[Itemset, int]:
        """Candidate -> position in insertion order (= the driver's
        ``apriori_gen`` order).  Built lazily and cached, so a
        worker-resident broadcast tree pays the cost once per worker; the
        fast-path kernel uses it to shuffle small int keys instead of
        k-tuples.
        """
        if self._index is None:
            self._index = {cand: i for i, cand in enumerate(self._order)}
        return self._index

    def contains_candidate(self, candidate: Itemset) -> bool:
        node = self._root
        depth = 0
        while not node.is_leaf:
            child = node.children.get(self._hash(candidate[depth]))
            if child is None:
                return False
            node = child
            depth += 1
        return tuple(candidate) in node.bucket

    def __iter__(self) -> Iterator[Itemset]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.bucket
            else:
                stack.extend(node.children.values())

    def __len__(self) -> int:
        return self.size

    # -- diagnostics ---------------------------------------------------------
    def stats(self) -> dict:
        """Structure statistics (used by the hash-tree ablation)."""
        leaves = depth_total = max_depth = 0
        biggest_leaf = 0
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            if node.is_leaf:
                leaves += 1
                depth_total += depth
                max_depth = max(max_depth, depth)
                biggest_leaf = max(biggest_leaf, len(node.bucket))
            else:
                stack.extend((c, depth + 1) for c in node.children.values())
        return {
            "candidates": self.size,
            "leaves": leaves,
            "max_depth": max_depth,
            "mean_leaf_depth": depth_total / leaves if leaves else 0.0,
            "largest_leaf": biggest_leaf,
        }
