"""Incremental sliding-window mining: delta-maintained counts with
border-bounded re-mining.

Every miner in :mod:`repro.core` is batch-only — one appended transaction
forces a full re-mine.  YAFIM's level-wise structure says that is almost
always wasted work: under a small delta a level's frequent family can only
change if some itemset's exact count crosses the support threshold, and
the only itemsets that can cross *upward* are the level's **negative
border** (the candidates ``apriori_gen`` produced and the counting pass
rejected).  :class:`IncrementalMiner` therefore keeps, per window:

* the dict-encoded transactions with multiplicities (the PR-4 compacted
  representation — identical rows collapse to one weighted row);
* per level ``k``: exact counts for **every** generated candidate, i.e.
  the frequent k-itemsets *and* the level's negative border, plus a warm
  :class:`~repro.core.candidatestore.CandidateStore` over them (bitmap by
  default — the PR-5 vertical counting kernel);
* the exact per-item counts of the raw window (level 1 and the
  dictionary-shift guard).

``append(transactions)`` / ``retire(n_oldest)`` then update counts with
**one ``count_partition`` pass over the delta per level** and re-derive
each frequent family against the new threshold.  A level is re-mined only
when the previous level's frequent family actually changed (a border
itemset crossed the threshold, in either direction — ``retire`` lowers
the threshold, so borders cross upward there too).  Even then the pass is
*border-bounded*: candidates already tracked keep their maintained counts
and only the genuinely new candidates take a full-window counting pass.
Two events fall back to a full rebuild: a frequent singleton outside the
item dictionary (its occurrences were dropped at encode time, so no delta
pass can recover them — the window must be re-encoded) — and nothing
else; a dictionary item going *infrequent* needs no re-encode, its codes
simply drop out of level 1.

Correctness contract (pinned by the oracle tests): after any sequence of
appends and retires the mined itemsets equal a cold re-mine of the
current window.  Every update is traced as an ``incremental_update`` span
and reported as :class:`IncrementalUpdate` delta-pass stats, which also
ride on the result's :class:`~repro.core.results.IterationStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.common.encoding import ItemDictionary
from repro.common.errors import MiningError
from repro.common.itemset import canonical_transaction, min_support_count
from repro.core.candidates import apriori_gen
from repro.core.candidatestore import make_store
from repro.core.results import IterationStats, MiningRunResult


def _count_rows(store, rows) -> dict:
    """One store's exact candidate counts for weighted
    ``(encoded_txn, multiplicity)`` rows.

    Prefers the batch ``count_partition`` kernel; falls back to streaming
    ``count_into`` for stores that predate it (the raw :class:`HashTree`),
    mirroring :mod:`repro.core.counting`.
    """
    count_partition = getattr(store, "count_partition", None)
    if count_partition is not None:
        return count_partition(rows, weighted=True)
    counts: dict = {}
    for txn, weight in rows:
        store.count_into(counts, txn, weight)
    return counts


class _WindowCounter:
    """``run_job`` kernel: counts of one partition of weighted rows."""

    def __init__(self, store):
        self.store = store

    def __call__(self, _task_ctx, partition):
        return _count_rows(self.store, list(partition))


@dataclass
class FamilyDiff:
    """What changed between two frequent-itemset families.

    The streaming subscription surface ships *these* instead of full
    results: ``added`` holds itemsets newly frequent (with their new
    counts), ``removed`` the ones that fell out (with their last counts),
    and ``changed`` the survivors whose exact count moved
    (``itemset -> (old_count, new_count)``).  Diffs over consecutive
    version transitions compose associatively, so a change log can answer
    "what happened since version V" by folding the per-transition diffs.
    """

    added: dict = field(default_factory=dict)
    removed: dict = field(default_factory=dict)
    changed: dict = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    @classmethod
    def between(cls, old: dict, new: dict) -> "FamilyDiff":
        """The diff taking family ``old`` to family ``new``."""
        return cls(
            added={i: c for i, c in new.items() if i not in old},
            removed={i: c for i, c in old.items() if i not in new},
            changed={
                i: (old[i], c) for i, c in new.items()
                if i in old and old[i] != c
            },
        )

    @classmethod
    def compose(cls, diffs) -> "FamilyDiff":
        """Fold consecutive transition diffs into one (A→B→C ⇒ A→C)."""
        out = cls()
        for d in diffs:
            for itemset, count in d.added.items():
                if itemset in out.removed:
                    old = out.removed.pop(itemset)
                    if old != count:
                        out.changed[itemset] = (old, count)
                else:
                    out.added[itemset] = count
            for itemset, (old, new) in d.changed.items():
                if itemset in out.added:
                    out.added[itemset] = new
                elif itemset in out.changed:
                    first = out.changed[itemset][0]
                    if first == new:
                        del out.changed[itemset]
                    else:
                        out.changed[itemset] = (first, new)
                else:
                    out.changed[itemset] = (old, new)
            for itemset, old in d.removed.items():
                if itemset in out.added:
                    del out.added[itemset]
                elif itemset in out.changed:
                    out.removed[itemset] = out.changed.pop(itemset)[0]
                else:
                    out.removed[itemset] = old
        return out

    def apply(self, family: dict) -> dict:
        """The family this diff produces when applied to ``family``."""
        out = dict(family)
        for itemset in self.removed:
            out.pop(itemset, None)
        out.update(self.added)
        for itemset, (_, new) in self.changed.items():
            out[itemset] = new
        return out


@dataclass
class IncrementalUpdate:
    """What one ``append``/``retire`` (or the initial build) actually did."""

    kind: str  # "build" | "append" | "retire"
    n_delta: int  # logical transactions added/removed
    n_transactions: int = 0  # window size after the update
    version: int = 0
    seconds: float = 0.0
    threshold: int = 0
    #: True when the update fell back to a full re-encode + re-mine
    full_rebuild: bool = False
    rebuild_reason: str | None = None
    delta_rows: int = 0  # physical (deduplicated) delta rows counted
    delta_candidates: int = 0  # candidates maintained by delta passes
    full_candidates: int = 0  # candidates re-counted over the full window
    levels_delta: int = 0  # levels kept current by a delta pass alone
    levels_remined: int = 0  # levels whose candidate set was regenerated
    #: per-level trail: {"k", "mode" ("delta"|"remine"), "delta_candidates",
    #: "full_candidates"} — folded into IterationStats by ``result()``
    per_level: list = field(default_factory=list)
    #: how the frequent family changed across this update (appends and
    #: retires only; ``None`` on the initial build or when diff tracking
    #: is disabled) — the payload the streaming change feed ships
    family_diff: FamilyDiff | None = None


@dataclass
class _Level:
    """Per-level state: exact counts for frequent ∪ negative border."""

    k: int
    counts: dict  # candidate -> exact window count
    frequent: set  # candidates at/above the current threshold
    store: object  # warm CandidateStore over counts' keys (delta passes)

    @property
    def border(self) -> set:
        """The level's negative border: generated but infrequent."""
        return set(self.counts) - self.frequent


class IncrementalMiner:
    """Sliding-window frequent-itemset state with delta maintenance.

    Parameters
    ----------
    transactions:
        The initial window (must be non-empty).
    min_support:
        Relative support threshold in (0, 1]; the absolute threshold is
        re-derived from the window size after every update.
    max_length:
        Optional cap on mined itemset length.
    candidate_store:
        Store used for every counting pass (default ``"bitmap"`` — the
        vertical tid-bitmap kernel is the cheapest per delta row).
    num_partitions / ctx:
        When ``ctx`` (an engine :class:`~repro.engine.context.Context`)
        is set, full-window counting passes run as engine jobs over
        ``num_partitions`` partitions; delta passes always run on the
        driver — a ≤1% delta is far below job-launch overhead.  ``ctx``
        is a plain attribute: the serving tier lends a pooled context
        per update and detaches it afterwards.
    """

    def __init__(
        self,
        transactions,
        min_support: float,
        *,
        max_length: int | None = None,
        candidate_store: str = "bitmap",
        store_options: dict | None = None,
        num_partitions: int | None = None,
        ctx=None,
        tracer=None,
        track_family_diff: bool = True,
    ):
        if not 0.0 < min_support <= 1.0:
            raise MiningError(f"min_support must be in (0, 1], got {min_support}")
        self.min_support = min_support
        self.max_length = max_length
        self.candidate_store = candidate_store
        self.store_options = dict(store_options or {})
        self.num_partitions = num_partitions
        self.ctx = ctx
        self.track_family_diff = track_family_diff
        self._tracer = tracer
        self._window: list = [canonical_transaction(t) for t in transactions]
        if not self._window:
            raise MiningError("cannot build incremental state over an empty window")
        self._item_counts: dict = {}
        for txn in self._window:
            for item in txn:
                self._item_counts[item] = self._item_counts.get(item, 0) + 1
        self.version = 1
        self.full_rebuilds = 0
        t0 = time.perf_counter()
        update = IncrementalUpdate(kind="build", n_delta=len(self._window))
        with self._trace().span(
            "incremental_update", "driver", kind="build", n_delta=len(self._window)
        ):
            self._rebuild(update)
        update.n_transactions = len(self._window)
        update.version = self.version
        update.threshold = self._threshold
        update.seconds = time.perf_counter() - t0
        self.last_update = update

    # -- public surface ----------------------------------------------------
    @property
    def n_transactions(self) -> int:
        return len(self._window)

    @property
    def threshold(self) -> int:
        return self._threshold

    def negative_border(self, k: int) -> set:
        """The tracked negative border at level ``k`` (encoded itemsets
        for ``k >= 2``; raw infrequent-singleton items for ``k == 1``)."""
        if k == 1:
            return {
                (item,)
                for item, c in self._item_counts.items()
                if c < self._threshold
            }
        for lvl in self._levels:
            if lvl.k == k:
                return lvl.border
        return set()

    def append(self, transactions) -> IncrementalUpdate:
        """Extend the window; maintain counts from the delta alone."""
        delta = [canonical_transaction(t) for t in transactions]
        update = IncrementalUpdate(kind="append", n_delta=len(delta))
        if not delta:
            update.n_transactions = len(self._window)
            update.version = self.version
            update.threshold = self._threshold
            return update
        t0 = time.perf_counter()
        before = self.itemsets() if self.track_family_diff else None
        with self._trace().span(
            "incremental_update", "driver", kind="append", n_delta=len(delta)
        ):
            self._window.extend(delta)
            for txn in delta:
                for item in txn:
                    self._item_counts[item] = self._item_counts.get(item, 0) + 1
            self._apply_delta(delta, +1, update)
        if before is not None:
            update.family_diff = FamilyDiff.between(before, self.itemsets())
        return self._seal(update, t0)

    def retire(self, n_oldest: int) -> IncrementalUpdate:
        """Drop the ``n_oldest`` transactions from the front of the window.

        Retiring lowers the absolute threshold, so negative-border
        itemsets can cross *upward* here exactly as appends push them up.
        Raises :class:`MiningError` rather than emptying the window.
        """
        update = IncrementalUpdate(kind="retire", n_delta=max(0, n_oldest))
        if n_oldest <= 0:
            update.n_transactions = len(self._window)
            update.version = self.version
            update.threshold = self._threshold
            return update
        if n_oldest >= len(self._window):
            raise MiningError(
                f"retire({n_oldest}) would empty the {len(self._window)}-transaction window"
            )
        t0 = time.perf_counter()
        before = self.itemsets() if self.track_family_diff else None
        with self._trace().span(
            "incremental_update", "driver", kind="retire", n_delta=n_oldest
        ):
            retired = self._window[:n_oldest]
            del self._window[:n_oldest]
            for txn in retired:
                for item in txn:
                    left = self._item_counts[item] - 1
                    if left:
                        self._item_counts[item] = left
                    else:
                        del self._item_counts[item]
            self._apply_delta(retired, -1, update)
        if before is not None:
            update.family_diff = FamilyDiff.between(before, self.itemsets())
        return self._seal(update, t0)

    def itemsets(self) -> dict:
        """Current frequent itemsets (decoded) with exact counts."""
        threshold = self._threshold
        out = {}
        for item, count in self._item_counts.items():
            if count >= threshold:
                out[(item,)] = count
        decode = self._dictionary.decode_itemset
        for lvl in self._levels:
            for cand in lvl.frequent:
                out[decode(cand)] = lvl.counts[cand]
        return out

    def result(self) -> MiningRunResult:
        """A :class:`MiningRunResult` for the current window, carrying the
        last update's delta-pass stats on its :class:`IterationStats`."""
        result = MiningRunResult(
            algorithm="incremental",
            min_support=self.min_support,
            n_transactions=len(self._window),
        )
        result.itemsets = self.itemsets()
        upd = self.last_update
        by_k = {entry["k"]: entry for entry in upd.per_level}
        first = IterationStats(
            k=1,
            seconds=upd.seconds,
            n_candidates=len(self._item_counts),
            n_frequent=len(self._frequent1),
            delta_rows=upd.delta_rows,
        )
        result.iterations = [first]
        for lvl in self._levels:
            entry = by_k.get(lvl.k, {})
            result.iterations.append(
                IterationStats(
                    k=lvl.k,
                    seconds=0.0,
                    n_candidates=len(lvl.counts),
                    n_frequent=len(lvl.frequent),
                    delta_rows=upd.delta_rows,
                    delta_candidates=entry.get("delta_candidates", 0),
                    full_candidates=entry.get("full_candidates", 0),
                )
            )
        result.trace = self._trace()
        return result

    # -- internals ---------------------------------------------------------
    def _trace(self):
        if self._tracer is not None:
            return self._tracer
        if self.ctx is not None:
            return self.ctx.tracer
        from repro.engine.tracing import Tracer

        self._tracer = Tracer(label="incremental")
        return self._tracer

    def _seal(self, update: IncrementalUpdate, t0: float) -> IncrementalUpdate:
        self.version += 1
        update.n_transactions = len(self._window)
        update.version = self.version
        update.threshold = self._threshold
        update.seconds = time.perf_counter() - t0
        self.last_update = update
        return update

    def _make_store(self, candidates):
        return make_store(self.candidate_store, candidates, **self.store_options)

    def _count_window(self, store, candidates) -> dict:
        """Exact full-window counts for ``candidates`` (zero-filled)."""
        rows = list(self._encoded.items())
        counts: dict = {}
        if rows:
            if self.ctx is not None:
                rdd = self.ctx.parallelize(rows, self.num_partitions)
                for part in self.ctx.run_job(rdd, _WindowCounter(store)):
                    for cand, cnt in part.items():
                        counts[cand] = counts.get(cand, 0) + cnt
            else:
                counts = _count_rows(store, rows)
        return {c: counts.get(c, 0) for c in candidates}

    def _rebuild(self, update: IncrementalUpdate) -> None:
        """Full re-encode + re-mine of the current window (initial build
        and the new-frequent-singleton fallback)."""
        self._threshold = min_support_count(self.min_support, len(self._window))
        frequent_items = {
            i: c for i, c in self._item_counts.items() if c >= self._threshold
        }
        self._dictionary = ItemDictionary.from_counts(frequent_items)
        encoded: dict = {}
        for txn in self._window:
            enc = self._dictionary.encode_transaction(txn)
            if len(enc) >= 2:  # shorter rows cannot support any k>=2 candidate
                encoded[enc] = encoded.get(enc, 0) + 1
        self._encoded = encoded
        self._frequent1 = {(self._dictionary.code(i),) for i in frequent_items}
        self._levels: list[_Level] = []
        prev = sorted(self._frequent1)
        k = 2
        while prev and (self.max_length is None or k <= self.max_length):
            candidates = apriori_gen(prev)
            if not candidates:
                break
            store = self._make_store(candidates)
            counts = self._count_window(store, candidates)
            frequent = {c for c in candidates if counts[c] >= self._threshold}
            self._levels.append(
                _Level(k=k, counts=counts, frequent=frequent, store=store)
            )
            update.full_candidates += len(candidates)
            update.levels_remined += 1
            update.per_level.append(
                {"k": k, "mode": "remine", "delta_candidates": 0,
                 "full_candidates": len(candidates)}
            )
            prev = sorted(frequent)
            k += 1

    def _apply_delta(self, delta_txns, sign: int, update: IncrementalUpdate) -> None:
        """Window and item counts already reflect the delta; bring the
        encoded rows and every level's counts/families up to date."""
        threshold = min_support_count(self.min_support, len(self._window))
        self._threshold = threshold

        # Dictionary-shift guard: a frequent item outside the alphabet was
        # dropped from every encoded row — no delta pass can recover its
        # co-occurrences, so re-encode the window.  (An alphabet item going
        # infrequent needs nothing: its codes just leave level 1.)
        for item, count in self._item_counts.items():
            if count >= threshold and item not in self._dictionary:
                update.full_rebuild = True
                update.rebuild_reason = f"new frequent singleton {item!r}"
                self.full_rebuilds += 1
                self._rebuild(update)
                return

        # Encode + compact the delta over the unchanged dictionary, and
        # fold it into the window's weighted rows.
        delta_map: dict = {}
        for txn in delta_txns:
            enc = self._dictionary.encode_transaction(txn)
            if len(enc) >= 2:
                delta_map[enc] = delta_map.get(enc, 0) + 1
        for enc, mult in delta_map.items():
            left = self._encoded.get(enc, 0) + sign * mult
            if left > 0:
                self._encoded[enc] = left
            else:
                self._encoded.pop(enc, None)
        delta_rows = list(delta_map.items())
        update.delta_rows = len(delta_rows)

        dictionary = self._dictionary
        new_f1 = {
            (dictionary.code(i),)
            for i, c in self._item_counts.items()
            if c >= threshold and i in dictionary
        }
        changed = new_f1 != self._frequent1
        self._frequent1 = new_f1

        prev = sorted(new_f1)
        li = 0
        k = 2
        while prev and (self.max_length is None or k <= self.max_length):
            if li < len(self._levels) and not changed:
                # Candidate set unchanged (tracked == apriori_gen(prev)):
                # one delta pass, then re-threshold from exact counts.
                lvl = self._levels[li]
                if delta_rows:
                    for cand, cnt in _count_rows(lvl.store, delta_rows).items():
                        lvl.counts[cand] += sign * cnt
                new_frequent = {
                    c for c, v in lvl.counts.items() if v >= threshold
                }
                changed = new_frequent != lvl.frequent
                lvl.frequent = new_frequent
                update.delta_candidates += len(lvl.counts)
                update.levels_delta += 1
                update.per_level.append(
                    {"k": k, "mode": "delta",
                     "delta_candidates": len(lvl.counts), "full_candidates": 0}
                )
            else:
                # A border itemset crossed below (or the level is new):
                # regenerate the candidate set.  Border-bounded: retained
                # candidates keep their maintained counts (delta applied);
                # only genuinely new candidates pay a full-window pass.
                candidates = apriori_gen(prev)
                if not candidates:
                    break
                old = self._levels[li] if li < len(self._levels) else None
                old_counts = old.counts if old is not None else {}
                retained = [c for c in candidates if c in old_counts]
                fresh = [c for c in candidates if c not in old_counts]
                store = self._make_store(candidates)
                counts: dict = {}
                if retained:
                    dcounts = _count_rows(store, delta_rows) if delta_rows else {}
                    for cand in retained:
                        counts[cand] = old_counts[cand] + sign * dcounts.get(cand, 0)
                    update.delta_candidates += len(retained)
                if fresh:
                    counts.update(self._count_window(self._make_store(fresh), fresh))
                    update.full_candidates += len(fresh)
                frequent = {c for c in candidates if counts[c] >= threshold}
                lvl = _Level(k=k, counts=counts, frequent=frequent, store=store)
                if old is not None:
                    changed = frequent != old.frequent
                    self._levels[li] = lvl
                else:
                    changed = True
                    self._levels.append(lvl)
                update.levels_remined += 1
                update.per_level.append(
                    {"k": k, "mode": "remine",
                     "delta_candidates": len(retained),
                     "full_candidates": len(fresh)}
                )
            prev = sorted(self._levels[li].frequent)
            li += 1
            k += 1
        del self._levels[li:]


def run_incremental(ctx, transactions, config) -> MiningRunResult:
    """Registry-shaped runner for ``MiningConfig(incremental=True)``.

    A one-shot incremental run is a cold build — byte-identical itemsets
    to the exact miners — and exists so the same config flows through
    ``mine_frequent_itemsets``, the CLI, and the serving tier (where the
    built state is kept warm and appends become delta updates).

    Store choice mirrors ``_with_store``: an explicit
    ``options["candidate_store"]`` wins, then a non-default
    ``config.candidate_store``; the incremental default is ``bitmap``.
    """
    options = dict(config.options)
    store = options.pop("candidate_store", None) or (
        config.candidate_store if config.candidate_store != "hashtree" else "bitmap"
    )
    miner = IncrementalMiner(
        transactions,
        config.min_support,
        max_length=config.max_length,
        candidate_store=store,
        num_partitions=config.num_partitions,
        ctx=ctx,
    )
    return miner.result()


__all__ = ["FamilyDiff", "IncrementalMiner", "IncrementalUpdate", "run_incremental"]
