"""MRApriori — the paper's baseline: level-wise Apriori on MapReduce.

This is the PApriori algorithm of Li et al. (SNPD'12) / the SPC algorithm
of Lin et al. (ICUIMC'12), which the paper uses as its comparison point:
**every Apriori level is a separate MapReduce job** whose mappers count
candidate occurrences over the transaction file re-read from the DFS and
whose reducers sum and threshold the counts, writing L_k back to the DFS.
The per-iteration DFS round-trip (plus job startup) is the cost YAFIM's
cached RDDs eliminate.

The module also hosts the shared driver for the FPC and DPC variants
(Lin et al.): those combine several candidate *levels* into one job —
candidates for level k+1 are generated speculatively from the *candidate*
set C_k (a superset of L_k, so completeness is preserved), trading extra
candidate counting for fewer job startups.
"""

from __future__ import annotations

import itertools
import time
from collections.abc import Callable

from repro.cluster.simulation import StageRecord
from repro.common.errors import MiningError
from repro.common.itemset import Itemset, canonical_transaction, min_support_count
from repro.common.sizeof import estimate_size
from repro.core.candidates import apriori_gen, join_step, prune_step
from repro.core.candidatestore import get_store, make_store
from repro.core.results import IterationStats, MiningRunResult
from repro.mapreduce.job import JobSpec, Mapper, Reducer
from repro.mapreduce.runner import JobMetrics, JobRunner

_instances = itertools.count()

#: special key carrying the transaction count through the pass-1 job
_META_TXN_COUNT = ("__meta__", "n_transactions")


class ItemCountMapper(Mapper):
    """Pass 1 (paper Algorithm 2 analogue): one (item, 1) per occurrence,
    plus the transaction-count meta key."""

    def __init__(self, sep: str | None = None):
        self._sep = sep

    def map(self, key, value, emit):
        txn = canonical_transaction(value.split(self._sep))
        if not txn:
            return
        emit(_META_TXN_COUNT, 1)
        for item in txn:
            emit((item,), 1)


class CandidateCountMapper(Mapper):
    """Pass k >= 2 (paper Algorithm 3 analogue): ``C_t = subset(C_k, t)``
    against the candidate structure shipped via the distributed cache."""

    def __init__(self, sep: str | None = None):
        self._sep = sep
        self._matcher = None

    def setup(self, config):
        self._matcher = config["__cache__"]["matcher"]

    def map(self, key, value, emit):
        txn = canonical_transaction(value.split(self._sep))
        for cand in self._matcher.subset(txn):
            emit(cand, 1)


class SumCombiner(Reducer):
    def reduce(self, key, values, emit):
        emit(key, sum(values))


class SumReducer(Reducer):
    """Sums counts; prunes below ``threshold`` when one is configured
    (pass 1 cannot prune in-job because N is only known afterwards)."""

    def __init__(self):
        self._threshold: int | None = None

    def setup(self, config):
        self._threshold = config.get("threshold")

    def reduce(self, key, values, emit):
        total = sum(values)
        if key == _META_TXN_COUNT or self._threshold is None or total >= self._threshold:
            emit(key, total)


def _format_itemset_line(key, value) -> str:
    if key == _META_TXN_COUNT:
        return f"__N__\t{value}"
    return " ".join(str(i) for i in key) + f"\t{value}"


def _parse_itemset_lines(lines: list[str]) -> tuple[dict[Itemset, int], int | None]:
    itemsets: dict[Itemset, int] = {}
    n_txn: int | None = None
    for line in lines:
        key_text, count_text = line.rsplit("\t", 1)
        if key_text == "__N__":
            n_txn = int(count_text)
        else:
            itemsets[tuple(key_text.split(" "))] = int(count_text)
    return itemsets, n_txn


#: strategy signature: (next level k, current frequent level) -> how many
#: candidate levels to combine into the next job (>= 1)
CombineStrategy = Callable[[int, dict], int]


def spc_strategy(_k: int, _level: dict) -> int:
    """Single Pass Counting: one level per job (MRApriori behaviour)."""
    return 1


def fpc_strategy(n: int = 3) -> CombineStrategy:
    """Fixed Passes Combined-counting: always combine ``n`` levels."""

    def strategy(_k: int, _level: dict) -> int:
        return n

    return strategy


def dpc_strategy(candidate_budget: int = 50_000) -> CombineStrategy:
    """Dynamic Passes Combined-counting: combine levels while the
    *projected* total candidate count stays under a budget (Lin et al. use
    the previous pass's elapsed time; a candidate budget is the
    deterministic equivalent)."""

    def strategy(_k: int, level: dict) -> int:
        # Project |C| growth from the current level size; each speculative
        # level roughly squares the branching at worst, so be conservative.
        projected = max(1, len(level))
        n = 1
        while n < 8:
            projected = projected * max(1, min(len(level), 16))
            if projected > candidate_budget:
                break
            n += 1
        return n

    return strategy


class MRApriori:
    """Driver for level-wise Apriori over the MapReduce runtime.

    Parameters
    ----------
    runner:
        :class:`~repro.mapreduce.runner.JobRunner` bound to the mini-DFS
        holding the transaction file.
    num_reducers:
        Reducers per job.
    use_hash_tree:
        Ship candidates as a hash tree (as the paper's baseline does via
        its hash-tree-in-DistributedCache idiom) or as a flat list.
        Only consulted when ``candidate_store`` is unset.
    candidate_store:
        Name of a registered :mod:`repro.core.candidatestore` store; one
        store per combined candidate level rides the distributed cache.
        Overrides ``use_hash_tree`` when given.
    combine_strategy:
        SPC (default), FPC or DPC level-combining policy.
    work_dir:
        DFS directory receiving per-level outputs.
    """

    algorithm_name = "mrapriori"

    def __init__(
        self,
        runner: JobRunner,
        num_reducers: int = 2,
        use_hash_tree: bool = True,
        combine_strategy: CombineStrategy = spc_strategy,
        work_dir: str = "/mrapriori",
        sep: str | None = None,
        candidate_store: str | None = None,
    ):
        self.runner = runner
        self.num_reducers = num_reducers
        self.use_hash_tree = use_hash_tree
        if candidate_store is None:
            candidate_store = "hashtree" if use_hash_tree else "linear"
        else:
            get_store(candidate_store)  # fail in the driver, not a map task
        self.candidate_store = candidate_store
        self.combine_strategy = combine_strategy
        self.work_dir = work_dir.rstrip("/")
        self.sep = sep
        self._run_seq = 0
        # distinct instances over one DFS must not collide on output dirs
        self._instance = next(_instances)

    # -- public ----------------------------------------------------------------
    def run(
        self,
        input_path: str,
        min_support: float,
        max_length: int | None = None,
    ) -> MiningRunResult:
        if not 0.0 < min_support <= 1.0:
            raise MiningError(f"min_support must be in (0, 1], got {min_support}")
        result = MiningRunResult(
            algorithm=self.algorithm_name, min_support=min_support, n_transactions=0
        )
        result.trace = self.runner.tracer
        self._run_seq += 1
        out_base = f"{self.work_dir}/i{self._instance}r{self._run_seq}"

        # ---- pass 1: one MR job over the raw transaction file ----------
        t0 = time.perf_counter()
        job = JobSpec(
            name="apriori-pass1",
            input_paths=[input_path],
            output_path=f"{out_base}/L1",
            mapper_factory=lambda: ItemCountMapper(self.sep),
            reducer_factory=SumReducer,
            combiner_factory=SumCombiner,
            num_reducers=self.num_reducers,
            output_formatter=_format_itemset_line,
        )
        job_result = self.runner.run(job)
        raw, n_txn = _parse_itemset_lines(self._read_output(job.output_path))
        if n_txn is None or n_txn == 0:
            raise MiningError("pass 1 found no transactions")
        threshold = min_support_count(min_support, n_txn)
        level = {iset: c for iset, c in raw.items() if c >= threshold}
        result.n_transactions = n_txn
        result.itemsets.update(level)
        result.iterations.append(
            self._iteration_stats(1, time.perf_counter() - t0, -1, len(level), [job_result.metrics])
        )

        # ---- passes k >= 2 -------------------------------------------------
        k = 2
        while level and (max_length is None or k <= max_length):
            t0 = time.perf_counter()
            n_levels = max(1, self.combine_strategy(k, level))
            with self.runner.tracer.span(f"apriori_gen k={k}", "driver", n_seed=len(level)):
                candidate_levels = self._generate_candidate_levels(level, n_levels)
            candidates = [c for lvl in candidate_levels for c in lvl]
            if not candidates:
                break
            with self.runner.tracer.span(
                f"store_build k={k}", "driver",
                n_candidates=len(candidates), store=self.candidate_store,
            ):
                matcher = _MultiLevelStore(candidate_levels, self.candidate_store)
            cache_bytes = estimate_size(matcher)
            job = JobSpec(
                name=f"apriori-pass{k}",
                input_paths=[input_path],
                output_path=f"{out_base}/L{k}",
                mapper_factory=lambda: CandidateCountMapper(self.sep),
                reducer_factory=SumReducer,
                combiner_factory=SumCombiner,
                num_reducers=self.num_reducers,
                config={"threshold": threshold},
                distributed_cache={"matcher": matcher},
                output_formatter=_format_itemset_line,
            )
            job_result = self.runner.run(job)
            counted, _ = _parse_itemset_lines(self._read_output(job.output_path))
            # split combined output back into per-length levels
            new_levels: dict[int, dict] = {}
            for iset, count in counted.items():
                new_levels.setdefault(len(iset), {})[iset] = count
            seconds = time.perf_counter() - t0
            n_counted_levels = len(candidate_levels)
            for offset in range(n_counted_levels):
                lvl_k = k + offset
                lvl = new_levels.get(lvl_k, {})
                result.itemsets.update(lvl)
                result.iterations.append(
                    self._iteration_stats(
                        lvl_k,
                        seconds / n_counted_levels,  # job time amortized per level
                        len(candidate_levels[offset]),
                        len(lvl),
                        [job_result.metrics] if offset == 0 else [],
                        # the distributed cache ships the candidate structure
                        # once per node, the MapReduce analogue of broadcast
                        broadcast_bytes=cache_bytes if offset == 0 else 0,
                    )
                )
                level = lvl
                if max_length is not None and lvl_k >= max_length:
                    level = {}
                    break
                if not lvl:
                    break
            k += n_counted_levels
        return result

    # -- internals --------------------------------------------------------------
    def _generate_candidate_levels(self, level: dict, n_levels: int) -> list[list[Itemset]]:
        """C_k from L_{k-1}, then speculative C_{k+1} from C_k, ...

        Speculative levels prune against the previous *candidate* set, a
        superset of the true frequent set, so no frequent itemset is lost.
        """
        levels: list[list[Itemset]] = []
        current: list[Itemset] = apriori_gen(level.keys())
        while current and len(levels) < n_levels:
            levels.append(current)
            prev_set = set(current)
            current = sorted(set(prune_step(join_step(current), prev_set)))
        return levels

    def _read_output(self, path: str) -> list[str]:
        from repro.mapreduce.runner import read_job_output

        return read_job_output(self.runner.dfs, path)

    def _iteration_stats(
        self, k: int, seconds: float, n_candidates: int, n_frequent: int,
        job_metrics: list[JobMetrics], broadcast_bytes: int = 0,
    ) -> IterationStats:
        records = []
        read = written = shuffled = 0
        durations: list[float] = []
        for m in job_metrics:
            records.append(
                StageRecord(
                    label=f"pass{k}/map",
                    task_durations=m.map_task_durations,
                    input_bytes=m.hdfs_read_bytes,
                    shuffle_bytes=m.shuffle_bytes,
                )
            )
            records.append(
                StageRecord(
                    label=f"pass{k}/reduce",
                    task_durations=m.reduce_task_durations,
                    output_bytes=m.hdfs_write_bytes,
                )
            )
            read += m.hdfs_read_bytes
            written += m.hdfs_write_bytes
            shuffled += m.shuffle_bytes
            durations.extend(m.map_task_durations)
            durations.extend(m.reduce_task_durations)
        mean = sum(durations) / len(durations) if durations else 0.0
        return IterationStats(
            k=k,
            seconds=seconds,
            n_candidates=n_candidates,
            n_frequent=n_frequent,
            stage_records=records,
            broadcast_bytes=broadcast_bytes,
            hdfs_read_bytes=read,
            hdfs_write_bytes=written,
            shuffle_bytes=shuffled,
            # no RDD cache on MapReduce: every pass re-reads the DFS, which
            # is exactly the cost YAFIM's §IV-B caching removes
            cache_hit_rate=0.0,
            straggler_ratio=max(durations) / mean if durations and mean > 0 else 0.0,
        )


class _MultiLevelStore:
    """One candidate store per candidate length, queried in sequence.

    Combined-counting jobs (FPC/DPC) ship candidates of several lengths
    in one distributed-cache payload; stores hold same-length itemsets,
    so each level gets its own store built through the pluggable
    :func:`repro.core.candidatestore.make_store` factory.
    """

    def __init__(self, candidate_levels: list[list[Itemset]], store: str = "hashtree"):
        self.stores = [make_store(store, lvl) for lvl in candidate_levels if lvl]

    def subset(self, txn) -> list[Itemset]:
        out: list[Itemset] = []
        for store in self.stores:
            out.extend(store.subset(txn))
        return out
