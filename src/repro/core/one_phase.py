"""One-phase MapReduce FIM (Li & Zhang, BCGIN 2011) — related-work baseline.

The paper's related work splits MapReduce FIM algorithms into *k-phase*
(one job per level — SPC/MRApriori, and YAFIM's structure) and
*one-phase*: a **single** MapReduce job whose mappers emit *every*
subset (up to a length cap) of every transaction and whose reducers sum
and threshold.  The paper notes the flaw we reproduce and benchmark:
"the one-phase algorithm needs to generate many redundant itemsets
during processing, which may lead memory overflow and too much execution
time for large data sets" — the shuffle volume is Θ(Σ C(|t|, <=k))
instead of Θ(candidates actually worth counting).

Use ``max_length`` to keep runs tractable; the ablation benchmark
measures the shuffle-volume blow-up against SPC on identical input.
"""

from __future__ import annotations

import time
from itertools import combinations

from repro.cluster.simulation import StageRecord
from repro.common.errors import MiningError
from repro.common.itemset import canonical_transaction, min_support_count
from repro.core.results import IterationStats, MiningRunResult
from repro.mapreduce.job import JobSpec, Mapper
from repro.mapreduce.runner import JobRunner

from repro.core.mrapriori import (  # shared text encoding + reducers
    SumCombiner,
    SumReducer,
    _format_itemset_line,
    _parse_itemset_lines,
    _META_TXN_COUNT,
)


class SubsetEnumerationMapper(Mapper):
    """Emits (subset, 1) for every itemset of the transaction up to
    ``max_length`` items — the one-phase algorithm's defining step.

    With ``in_mapper_combine`` (the counting fast path's per-partition
    aggregation, on by default) subsets accumulate into one dict per map
    task and flush pre-summed in :meth:`cleanup` — the redundant-subset
    blow-up then allocates one dict entry per *distinct* subset instead
    of one emitted record per occurrence (``MAP_OUTPUT_RECORDS`` drops
    accordingly; shuffle volume is unchanged because the combiner
    already deduplicated map output before the spill)."""

    def __init__(self, max_length: int, sep: str | None = None,
                 in_mapper_combine: bool = True):
        self._max_length = max_length
        self._sep = sep
        self._in_mapper_combine = in_mapper_combine
        self._counts: dict | None = None

    def setup(self, config: dict) -> None:
        self._counts = {} if self._in_mapper_combine else None

    def map(self, key, value, emit):
        txn = canonical_transaction(value.split(self._sep))
        if not txn:
            return
        top = min(self._max_length, len(txn))
        counts = self._counts
        if counts is None:
            emit(_META_TXN_COUNT, 1)
            for k in range(1, top + 1):
                for subset in combinations(txn, k):
                    emit(subset, 1)
            return
        get = counts.get
        counts[_META_TXN_COUNT] = get(_META_TXN_COUNT, 0) + 1
        for k in range(1, top + 1):
            for subset in combinations(txn, k):
                counts[subset] = get(subset, 0) + 1

    def cleanup(self, emit):
        if self._counts:
            for key, count in self._counts.items():
                emit(key, count)
        self._counts = None


class OnePhaseMR:
    """The single-job algorithm.

    Parameters
    ----------
    runner:
        JobRunner over the mini-DFS holding the transactions.
    max_length:
        Hard cap on enumerated subset size — without one the mapper
        output is exponential in transaction length (the very problem
        the paper calls out).
    in_mapper_combine:
        Aggregate subsets into one dict per map task before emitting
        (the counting fast path's per-partition treatment); ``False``
        restores the seed's one-record-per-subset-occurrence emission.
    candidate_store:
        Accepted and registry-validated for uniformity with the other
        miners (the store × algorithm parity grid sweeps it), but
        counting is unaffected: the one-phase algorithm is candidate-free
        by definition — every transaction subset is its own candidate,
        so there is no candidate set to store.
    """

    algorithm_name = "one_phase_mr"

    def __init__(
        self,
        runner: JobRunner,
        max_length: int = 3,
        num_reducers: int = 2,
        work_dir: str = "/onephase",
        sep: str | None = None,
        in_mapper_combine: bool = True,
        candidate_store: str | None = None,
    ):
        if max_length < 1:
            raise MiningError("max_length must be >= 1")
        if candidate_store is not None:
            from repro.core.candidatestore import get_store

            get_store(candidate_store)  # validate the name; see class docstring
        self.candidate_store = candidate_store
        self.runner = runner
        self.max_length = max_length
        self.num_reducers = num_reducers
        self.work_dir = work_dir.rstrip("/")
        self.sep = sep
        self.in_mapper_combine = in_mapper_combine
        self._seq = 0

    def run(self, input_path: str, min_support: float) -> MiningRunResult:
        if not 0.0 < min_support <= 1.0:
            raise MiningError(f"min_support must be in (0, 1], got {min_support}")
        self._seq += 1
        t0 = time.perf_counter()
        cap = self.max_length
        combine = self.in_mapper_combine
        job = JobSpec(
            name="one-phase-fim",
            input_paths=[input_path],
            output_path=f"{self.work_dir}/run{self._seq}",
            mapper_factory=lambda: SubsetEnumerationMapper(cap, self.sep, combine),
            reducer_factory=SumReducer,
            combiner_factory=SumCombiner,
            num_reducers=self.num_reducers,
            output_formatter=_format_itemset_line,
        )
        job_result = self.runner.run(job)
        from repro.mapreduce.runner import read_job_output

        counted, n_txn = _parse_itemset_lines(
            read_job_output(self.runner.dfs, job.output_path)
        )
        if n_txn is None or n_txn == 0:
            raise MiningError("one-phase job found no transactions")
        threshold = min_support_count(min_support, n_txn)
        frequent = {iset: c for iset, c in counted.items() if c >= threshold}
        seconds = time.perf_counter() - t0

        result = MiningRunResult(
            algorithm=self.algorithm_name,
            min_support=min_support,
            n_transactions=n_txn,
        )
        result.itemsets = frequent
        m = job_result.metrics
        result.iterations = [
            IterationStats(
                k=0,  # the whole lattice in one phase
                seconds=seconds,
                n_candidates=len(counted),  # everything the job counted
                n_frequent=len(frequent),
                stage_records=[
                    StageRecord(
                        label="onephase/map",
                        task_durations=m.map_task_durations,
                        input_bytes=m.hdfs_read_bytes,
                        shuffle_bytes=m.shuffle_bytes,
                    ),
                    StageRecord(
                        label="onephase/reduce",
                        task_durations=m.reduce_task_durations,
                        output_bytes=m.hdfs_write_bytes,
                    ),
                ],
                hdfs_read_bytes=m.hdfs_read_bytes,
                hdfs_write_bytes=m.hdfs_write_bytes,
                shuffle_bytes=m.shuffle_bytes,
            )
        ]
        return result
