"""PFP — Parallel FP-Growth on the RDD engine (Li et al., RecSys 2008).

The paper positions Apriori-family algorithms against pattern-growth
ones (FP-Growth is its reference [9]); PFP is the canonical parallel
pattern-growth design and what Spark's own MLlib later shipped.  It
completes this library's coverage of the parallel-FIM design space:

===================  =========================  =======================
                     YAFIM (paper)              PFP (this module)
===================  =========================  =======================
traversal            breadth-first, level-wise  depth-first projections
synchronisation      one shuffle per level      two shuffles total
candidate explosion  yes (hash tree contains)   none
===================  =========================  =======================

Algorithm (following the original paper's 5 steps):

1. **Parallel counting** — one ``flatMap -> reduceByKey`` pass yields the
   frequent items (F-list), exactly YAFIM's Phase I.
2. **Grouping** — frequent items are assigned to ``n_groups`` gid buckets
   (round-robin over the frequency-sorted F-list, balancing the heavy
   head items across groups).
3. **Group-dependent sharding** — each transaction is filtered/sorted to
   its frequent items; for every suffix position whose item belongs to
   group *g*, the prefix up to that position is emitted keyed by *g*.
   The shuffle delivers every group its complete conditional database.
4. **Local FP-Growth** — each group's shard is mined with the sequential
   FP-Growth oracle, restricted to patterns whose *last* (least
   frequent) item belongs to the group — so no pattern is produced
   twice across groups.
5. **Aggregation** — union of per-group results (no further reduction
   needed because step 4's ownership rule makes outputs disjoint).
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.common.errors import MiningError
from repro.common.itemset import canonical_transaction, min_support_count
from repro.core.results import MiningRunResult, engine_iteration_stats
from repro.engine.context import Context
from repro.engine.tracing import collect_engine_metrics


class PFP:
    """Parallel FP-Growth bound to an engine context.

    Parameters
    ----------
    ctx:
        Engine context (any backend).
    n_groups:
        Number of gid buckets (step 2).  More groups = smaller local
        FP-trees but more shard duplication; defaults to the context
        parallelism.
    """

    def __init__(self, ctx: Context, n_groups: int | None = None, num_partitions: int | None = None):
        self.ctx = ctx
        self.n_groups = n_groups or ctx.default_parallelism
        self.num_partitions = num_partitions or ctx.default_parallelism

    def run(
        self,
        transactions: Iterable[Sequence],
        min_support: float,
        max_length: int | None = None,
    ) -> MiningRunResult:
        if not 0.0 < min_support <= 1.0:
            raise MiningError(f"min_support must be in (0, 1], got {min_support}")
        txns = [canonical_transaction(t) for t in transactions]
        if not txns:
            raise MiningError("cannot mine an empty transaction database")
        n = len(txns)
        threshold = min_support_count(min_support, n)
        result = MiningRunResult(algorithm="pfp", min_support=min_support, n_transactions=n)

        rdd = self.ctx.parallelize(txns, self.num_partitions).cache()

        # ---- step 1: parallel counting (= YAFIM Phase I) -----------------
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        item_counts = dict(
            rdd.flat_map(lambda t: t)
            .map(lambda item: (item, 1))
            .reduce_by_key(lambda a, b: a + b, self.num_partitions)
            .filter(lambda kv: kv[1] >= threshold)
            .collect()
        )
        result.itemsets.update({(item,): c for item, c in item_counts.items()})
        result.iterations.append(
            engine_iteration_stats(
                self.ctx.event_log.tasks_since(mark),
                k=1,
                seconds=time.perf_counter() - t0,
                n_candidates=-1,
                n_frequent=len(item_counts),
            )
        )
        if not item_counts or (max_length is not None and max_length <= 1):
            self._attach_observability(result)
            return result

        # ---- step 2: grouping --------------------------------------------
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        # frequency-descending F-list with deterministic tiebreak; item
        # rank doubles as the FP order used inside every shard
        f_list = sorted(item_counts, key=lambda i: (-item_counts[i], repr(i)))
        rank = {item: r for r, item in enumerate(f_list)}
        n_groups = min(self.n_groups, len(f_list))
        group_of = {item: r % n_groups for r, item in enumerate(f_list)}
        bc = self.ctx.broadcast((rank, group_of))

        # ---- step 3: group-dependent sharding -----------------------------
        def shard(partition, _bc=bc):
            rank_map, groups = _bc.value
            for txn in partition:
                kept = sorted(
                    (i for i in txn if i in rank_map), key=rank_map.__getitem__
                )
                emitted = set()
                # walk suffix-first so each group gets the longest prefix
                for pos in range(len(kept) - 1, -1, -1):
                    gid = groups[kept[pos]]
                    if gid not in emitted:
                        emitted.add(gid)
                        yield gid, tuple(kept[: pos + 1])

        # ---- step 4: local FP-Growth per group -----------------------------
        def mine_group(kv, _bc=bc, _thr=threshold, _max=max_length):
            from repro.algorithms.fpgrowth import fpgrowth

            rank_map, groups = _bc.value
            gid, shard_txns = kv
            # a pattern's shard count equals its global support (every
            # transaction containing a group-g item ships g its longest
            # relevant prefix), so mine at the GLOBAL absolute threshold,
            # expressed relative to this shard's size
            local = fpgrowth(
                list(shard_txns), _thr / len(shard_txns), max_length=_max
            )
            out = []
            for pattern, count in local.items():
                if len(pattern) < 2:
                    continue  # singletons already counted in step 1
                last = max(pattern, key=rank_map.__getitem__)
                if groups[last] == gid:  # ownership rule: no duplicates
                    out.append((pattern, count))
            return out

        mined = (
            rdd.map_partitions(shard)
            .group_by_key(num_partitions=n_groups)
            .flat_map(mine_group)
            .collect()
        )
        result.itemsets.update(dict(mined))
        result.iterations.append(
            engine_iteration_stats(
                self.ctx.event_log.tasks_since(mark),
                k=2,  # one sharded pattern-growth phase covers levels >= 2
                seconds=time.perf_counter() - t0,
                n_candidates=n_groups,
                n_frequent=len(mined),
                broadcast_bytes=bc.size_bytes,
            )
        )
        bc.destroy()
        rdd.unpersist()
        self._attach_observability(result)
        return result

    def _attach_observability(self, result: MiningRunResult) -> None:
        result.trace = self.ctx.tracer
        result.engine_metrics = collect_engine_metrics(self.ctx)
