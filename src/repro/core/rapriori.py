"""R-Apriori — the published YAFIM follow-up (Rathee, Kaul & Kashyap,
CIKM-PIKM 2015), implemented as a YAFIM extension.

R-Apriori's observation: YAFIM's second pass is its bottleneck — for
frequent-item count m, ``apriori_gen`` materialises all C(m, 2) pair
candidates and builds a hash tree over them, even though *counting pairs
needs no candidate set at all*: each transaction, filtered to its
frequent items, can emit its own pairs directly and a ``reduceByKey``
does the rest.  The candidate structure only pays for itself from pass 3
onward, where the prune step eliminates real work.

This module subclasses :class:`~repro.core.yafim.Yafim` and overrides
only the pass-2 counting strategy (:meth:`Yafim._level_pass`); Phase I,
the level loop, the counting fast path and the compaction machinery are
all inherited.  When the fast path is on, the working RDD is already
projected onto frequent items, so pass 2 ships *nothing* — not even the
frequent-item set — and the pair kernels aggregate per partition like
every other pass.  The ablation benchmark quantifies the pass-2 saving
on the sparse dataset family where m (and hence C(m, 2)) is large.
"""

from __future__ import annotations

from repro.common.sizeof import estimate_size
from repro.core.counting import PairCounter, PairEmitter
from repro.core.yafim import Yafim


class RApriori(Yafim):
    """YAFIM with R-Apriori's candidate-free second pass.

    All constructor knobs are inherited; ``use_hash_tree``/``use_broadcast``
    now apply only from pass 3 onward (pass 2 ships the frequent-item
    *set* at most, never a candidate structure).
    """

    algorithm_name = "rapriori"

    def _level_pass(self, k, enc_level, working, weighted, threshold):
        if k != 2:
            return super()._level_pass(k, enc_level, working, weighted, threshold)
        # ---- pass 2: candidate-free pair counting ------------------------
        m = len(enc_level)
        # Encoding/compaction already projected transactions onto frequent
        # items; only the raw-RDD path still needs the frequent-item set.
        projected = self.use_dict_encoding or self.use_compaction
        keep = bc = None
        bc_bytes = closure_bytes = 0
        if not projected:
            keep = frozenset(item for (item,) in enc_level)
            if self.use_broadcast:
                bc = self.ctx.broadcast(keep)
                bc_bytes = bc.size_bytes
            else:
                closure_bytes = estimate_size(keep) * working.num_partitions
        kernel_cls = PairCounter if self.use_in_tree_counting else PairEmitter
        kernel = kernel_cls(
            keep_bc=bc,
            keep=keep if bc is None else None,
            filter_items=not projected,
            weighted=weighted,
        )
        pairs = (
            working.map_partitions(kernel)
            .reduce_by_key(lambda a, b: a + b, self.num_partitions)
            .filter(lambda kv: kv[1] >= threshold)
            .collect_as_map()
        )
        # report what YAFIM *would* have materialised; R-Apriori builds none
        return pairs, m * (m - 1) // 2, bc, bc_bytes, closure_bytes
