"""R-Apriori — the published YAFIM follow-up (Rathee, Kaul & Kashyap,
CIKM-PIKM 2015), implemented as a YAFIM extension.

R-Apriori's observation: YAFIM's second pass is its bottleneck — for
frequent-item count m, ``apriori_gen`` materialises all C(m, 2) pair
candidates and builds a hash tree over them, even though *counting pairs
needs no candidate set at all*: each transaction, filtered to its
frequent items, can emit its own pairs directly and a ``reduceByKey``
does the rest.  The candidate structure only pays for itself from pass 3
onward, where the prune step eliminates real work.

This module subclasses :class:`~repro.core.yafim.Yafim` and swaps in the
candidate-free second pass; every later pass is inherited unchanged.  The
ablation benchmark quantifies the pass-2 saving on the sparse dataset
family where m (and hence C(m, 2)) is large.
"""

from __future__ import annotations

import time
from itertools import combinations

from repro.core.results import MiningRunResult
from repro.core.yafim import Yafim


class RApriori(Yafim):
    """YAFIM with R-Apriori's candidate-free second pass.

    All constructor knobs are inherited; ``use_hash_tree``/``use_broadcast``
    now apply only from pass 3 onward (pass 2 ships the frequent-item
    *set*, not a candidate structure).
    """

    algorithm_name = "rapriori"

    def run_rdd(self, transactions, min_support, max_length=None) -> MiningRunResult:
        # Phase I + the standard level-wise loop both come from Yafim; we
        # interpose by running passes 1-2 ourselves and handing the rest
        # to the parent implementation through its public pieces.
        result = self._run_with_pair_pass(transactions, min_support, max_length)
        result.algorithm = self.algorithm_name
        return result

    # -- implementation ---------------------------------------------------
    def _run_with_pair_pass(self, transactions, min_support, max_length):
        from repro.common.errors import MiningError
        from repro.common.itemset import min_support_count
        from repro.core.candidates import apriori_gen

        if not 0.0 < min_support <= 1.0:
            raise MiningError(f"min_support must be in (0, 1], got {min_support}")
        result = MiningRunResult(
            algorithm=self.algorithm_name, min_support=min_support, n_transactions=0
        )
        if self.cache_transactions:
            transactions = transactions.cache()

        # ---- pass 1 (identical to YAFIM Phase I) -------------------------
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        n = transactions.count()
        if n == 0:
            raise MiningError("cannot mine an empty transaction database")
        threshold = min_support_count(min_support, n)
        level = (
            transactions.flat_map(lambda t: t)
            .map(lambda item: (item, 1))
            .reduce_by_key(lambda a, b: a + b, self.num_partitions)
            .filter(lambda kv: kv[1] >= threshold)
            .map(lambda kv: ((kv[0],), kv[1]))
            .collect_as_map()
        )
        result.n_transactions = n
        result.itemsets.update(level)
        result.iterations.append(
            self._iteration_stats(1, time.perf_counter() - t0, -1, len(level), mark, 0)
        )
        if self.clear_shuffles:
            self.ctx.clear_shuffle_outputs()
        if not level or (max_length is not None and max_length < 2):
            return result

        # ---- pass 2: R-Apriori's candidate-free pair counting ------------
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        frequent_items = frozenset(item for (item,) in level)
        bc = self.ctx.broadcast(frequent_items) if self.use_broadcast else None
        bc_bytes = bc.size_bytes if bc is not None else 0
        emit_pairs = _PairEmitter(bc, frequent_items if bc is None else None)

        pairs = (
            transactions.map_partitions(emit_pairs)
            .map(lambda pair: (pair, 1))
            .reduce_by_key(lambda a, b: a + b, self.num_partitions)
            .filter(lambda kv: kv[1] >= threshold)
            .collect_as_map()
        )
        result.itemsets.update(pairs)
        m = len(frequent_items)
        result.iterations.append(
            self._iteration_stats(
                2,
                time.perf_counter() - t0,
                # what YAFIM *would* have materialised; R-Apriori builds none
                n_candidates=m * (m - 1) // 2,
                n_frequent=len(pairs),
                mark=mark,
                broadcast_bytes=bc_bytes,
            )
        )
        if bc is not None:
            bc.destroy()
        if self.clear_shuffles:
            self.ctx.clear_shuffle_outputs()

        # ---- passes >= 3: inherited YAFIM behaviour ------------------------
        level = pairs
        k = 3
        while level and (max_length is None or k <= max_length):
            t0 = time.perf_counter()
            mark = self.ctx.event_log.mark()
            candidates = apriori_gen(level.keys())
            if not candidates:
                break
            matcher = self._build_matcher(candidates)
            bc = self.ctx.broadcast(matcher) if self.use_broadcast else None
            bc_bytes = bc.size_bytes if bc is not None else 0
            find = (
                _InheritedBroadcastFinder(bc)
                if bc is not None
                else _InheritedClosureFinder(matcher)
            )
            level = (
                transactions.map_partitions(find)
                .map(lambda cand: (cand, 1))
                .reduce_by_key(lambda a, b: a + b, self.num_partitions)
                .filter(lambda kv: kv[1] >= threshold)
                .collect_as_map()
            )
            result.itemsets.update(level)
            result.iterations.append(
                self._iteration_stats(
                    k, time.perf_counter() - t0, len(candidates), len(level), mark, bc_bytes
                )
            )
            if bc is not None:
                bc.destroy()
            if self.clear_shuffles:
                self.ctx.clear_shuffle_outputs()
            k += 1
        return result


class _PairEmitter:
    """Per-partition pair enumeration over frequent items only."""

    def __init__(self, bc, direct: frozenset | None):
        self._bc = bc
        self._direct = direct

    def __call__(self, transactions):
        frequent = self._bc.value if self._bc is not None else self._direct
        for txn in transactions:
            kept = [i for i in txn if i in frequent]
            yield from combinations(kept, 2)


class _InheritedBroadcastFinder:
    def __init__(self, bc):
        self._bc = bc

    def __call__(self, transactions):
        matcher = self._bc.value
        for txn in transactions:
            yield from matcher.subset(txn)


class _InheritedClosureFinder:
    def __init__(self, matcher):
        self._matcher = matcher

    def __call__(self, transactions):
        for txn in transactions:
            yield from self._matcher.subset(txn)
