"""Pluggable algorithm registry and the :class:`MiningConfig` it consumes.

``repro.core.api`` used to dispatch on a hard-coded if/elif chain; every
new miner meant editing the API *and* the CLI.  The registry inverts
that: algorithms register a runner under a name, the API and the CLI
both derive their dispatch/choices from the registry, and third-party
code can plug in its own miner without touching ``repro``::

    from repro.core.registry import register_algorithm

    def my_runner(ctx, transactions, config):
        ...  # return a MiningRunResult
    register_algorithm("mine_faster", my_runner, needs_engine=True)

    mine_frequent_itemsets(txns, 0.3, algorithm="mine_faster")

Runner contracts
----------------
``needs_engine=True``
    ``runner(ctx, transactions, config) -> MiningRunResult``.  The
    dispatcher creates an ephemeral engine :class:`Context` from the
    config (backend/parallelism), runs the runner inside it, and
    attaches ``result.trace`` / ``result.engine_metrics`` if the runner
    did not do so itself.
``needs_engine=False``
    ``runner(transactions, config) -> MiningRunResult``.  The runner
    owns its whole substrate (sequential oracles, MapReduce).

The built-in algorithms (yafim, rapriori, dist_eclat, pfp, mrapriori,
one_phase, apriori, eclat, fpgrowth) are registered at import time;
their heavy imports stay inside the runner bodies so importing this
module is cheap.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from repro.common.errors import MiningError
from repro.core.results import IterationStats, MiningRunResult


@dataclass(frozen=True)
class MiningConfig:
    """Everything one mining run needs, as a single value.

    Parameters mirror :func:`repro.core.api.mine_frequent_itemsets`;
    ``options`` carries algorithm-specific keyword arguments handed to
    the miner's constructor (e.g. YAFIM's ``use_hash_tree=False``).
    """

    min_support: float
    algorithm: str = "yafim"
    max_length: int | None = None
    backend: str = "threads"
    parallelism: int | None = None
    num_partitions: int | None = None
    candidate_store: str = "hashtree"
    #: approximate fast tier (repro.core.approx): when True the run is
    #: dispatched to the multi-sample miner instead of ``algorithm``;
    #: the three knobs below shape it (samples, relaxation r, sample size)
    approx: bool = False
    approx_samples: int = 4
    approx_ratio: float = 0.8
    sample_frac: float = 0.1
    #: incremental tier (repro.core.incremental): the run builds (or, in
    #: the serving tier, reuses) delta-maintainable sliding-window state
    #: instead of dispatching ``algorithm``; results are exact
    incremental: bool = False
    options: dict = field(default_factory=dict)

    def __post_init__(self):
        if not 0.0 < self.min_support <= 1.0:
            raise MiningError(
                f"min_support must be in (0, 1], got {self.min_support}"
            )
        if self.approx_samples < 1:
            raise MiningError(
                f"approx_samples must be >= 1, got {self.approx_samples}"
            )
        if not 0.0 < self.approx_ratio <= 1.0:
            raise MiningError(
                f"approx_ratio must be in (0, 1], got {self.approx_ratio}"
            )
        if not 0.0 < self.sample_frac <= 1.0:
            raise MiningError(
                f"sample_frac must be in (0, 1], got {self.sample_frac}"
            )
        if self.approx and self.incremental:
            raise MiningError(
                "approx and incremental are mutually exclusive: the sampling "
                "tier is probabilistic, the incremental tier maintains exact "
                "counts"
            )
        # Mirror make_executor's named-backends pattern: an unknown store
        # name fails at config construction with the registered choices,
        # not deep inside a worker task.
        from repro.core.candidatestore import store_names

        if self.candidate_store not in store_names():
            raise MiningError(
                f"unknown candidate store {self.candidate_store!r}; "
                f"registered stores: {', '.join(store_names())}"
            )

    def canonical(self) -> dict:
        """JSON-safe dict with deterministic ordering — the serialized form
        used by :meth:`cache_key`, the serving API, and bench reports.

        The sampling knobs only appear when ``approx=True`` — they are
        inert on an exact run, so an exact config keys identically no
        matter what leftover approx knobs it carries.  That invariance is
        what makes :meth:`exact_twin` keys line up with plain exact
        submissions in the result cache.
        """
        data = {
            "min_support": self.min_support,
            "algorithm": self.algorithm,
            "max_length": self.max_length,
            "backend": self.backend,
            "parallelism": self.parallelism,
            "num_partitions": self.num_partitions,
            "candidate_store": self.candidate_store,
            "approx": self.approx,
            "incremental": self.incremental,
            "options": {str(k): self.options[k] for k in sorted(self.options, key=str)},
        }
        if self.approx:
            data["approx_samples"] = self.approx_samples
            data["approx_ratio"] = self.approx_ratio
            data["sample_frac"] = self.sample_frac
        return data

    def cache_key(self) -> str:
        """Stable content hash of this config (hex sha256).

        Two configs with equal fields — regardless of ``options`` insertion
        order — produce the same key, so ``(dataset_fingerprint, cache_key)``
        identifies a mining run for memoization.  ``options`` values that are
        not JSON-serializable fall back to ``repr`` (stable for the value
        types miners accept: bools, numbers, strings).
        """
        payload = json.dumps(
            self.canonical(), sort_keys=True, separators=(",", ":"), default=repr
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def exact_twin(self) -> "MiningConfig":
        """This config with the approximate tier stripped.

        Because :meth:`canonical` omits the sampling knobs on exact
        configs, the twin's :meth:`cache_key` equals the key of a plain
        exact submission — that equality is what lets the result cache
        answer an approx request from an exact entry and upgrade approx
        entries when the exact run lands.
        """
        return replace(
            self, approx=False, approx_samples=4, approx_ratio=0.8, sample_frac=0.1
        )


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: its name, runner, and engine needs."""

    name: str
    runner: Callable
    needs_engine: bool = False
    description: str = ""


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(
    name: str,
    runner: Callable,
    *,
    needs_engine: bool = False,
    description: str = "",
    overwrite: bool = False,
) -> AlgorithmSpec:
    """Register ``runner`` under ``name``; returns the stored spec.

    Raises :class:`MiningError` when the name is taken, unless
    ``overwrite=True``.
    """
    if not name or not isinstance(name, str):
        raise MiningError(f"algorithm name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise MiningError(
            f"algorithm {name!r} is already registered; pass overwrite=True to replace it"
        )
    spec = AlgorithmSpec(
        name=name, runner=runner, needs_engine=needs_engine, description=description
    )
    _REGISTRY[name] = spec
    return spec


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (no-op when absent)."""
    _REGISTRY.pop(name, None)


def get_algorithm(name: str) -> AlgorithmSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MiningError(
            f"unknown algorithm {name!r}; registered: {algorithm_names()}"
        ) from None


def algorithm_names() -> list[str]:
    """Sorted names of every registered algorithm (drives CLI choices)."""
    return sorted(_REGISTRY)


def run_algorithm(
    transactions: Iterable[Sequence],
    config: MiningConfig,
    *,
    ctx=None,
) -> MiningRunResult:
    """Dispatch one mining run through the registry.

    ``ctx`` optionally supplies a live engine :class:`Context` for
    engine-backed algorithms, instead of the default ephemeral one — the
    serving layer passes a warm context here so executor-pool startup is
    paid once per worker, not once per job.  The caller owns the context's
    lifecycle (and should :meth:`~repro.engine.context.Context.renew_run`
    it between runs if per-run metrics matter); non-engine algorithms
    ignore ``ctx``.
    """
    spec = get_algorithm(config.algorithm)
    txns = transactions if isinstance(transactions, list) else list(transactions)
    if config.approx:
        # The approximate fast tier is engine-backed and replaces the
        # configured algorithm wholesale (repro.core.approx); the
        # algorithm name still shapes the cache key, tying this run to
        # its exact twin for memoization upgrades.
        from repro.core.approx import run_approx

        runner = run_approx
    elif config.incremental:
        # The incremental tier likewise replaces the configured algorithm:
        # a one-shot run is a cold build of the delta-maintainable window
        # state (identical itemsets); the serving tier keeps that state
        # warm so dataset appends become delta updates.
        from repro.core.incremental import run_incremental

        runner = run_incremental
    elif not spec.needs_engine:
        return spec.runner(txns, config)
    else:
        runner = spec.runner

    from repro.engine.context import Context
    from repro.engine.tracing import collect_engine_metrics

    if ctx is not None:
        result = runner(ctx, txns, config)
        if result.trace is None:
            result.trace = ctx.tracer
        if result.engine_metrics is None:
            result.engine_metrics = collect_engine_metrics(ctx)
        return result

    with Context(backend=config.backend, parallelism=config.parallelism) as ctx:
        result = runner(ctx, txns, config)
        if result.trace is None:
            result.trace = ctx.tracer
        if result.engine_metrics is None:
            result.engine_metrics = collect_engine_metrics(ctx)
    return result


# ---------------------------------------------------------------------------
# Built-in algorithms
# ---------------------------------------------------------------------------
def _with_store(config: MiningConfig) -> dict:
    """Miner options with the config's ``candidate_store`` folded in.

    The default ``"hashtree"`` is *not* injected, so miners keep deriving
    their store from legacy knobs (``use_hash_tree=False`` -> ``linear``,
    ablation A3); an explicit ``options["candidate_store"]`` wins over
    the field so the options path keeps working.  The oracles and PFP
    are candidate-free and never receive the knob.
    """
    options = dict(config.options)
    if config.candidate_store != "hashtree":
        options.setdefault("candidate_store", config.candidate_store)
    return options


def _run_yafim(ctx, txns, config: MiningConfig) -> MiningRunResult:
    from repro.core.yafim import Yafim

    miner = Yafim(ctx, num_partitions=config.num_partitions, **_with_store(config))
    return miner.run(txns, config.min_support, max_length=config.max_length)


def _run_rapriori(ctx, txns, config: MiningConfig) -> MiningRunResult:
    from repro.core.rapriori import RApriori

    miner = RApriori(ctx, num_partitions=config.num_partitions, **_with_store(config))
    return miner.run(txns, config.min_support, max_length=config.max_length)


def _run_dist_eclat(ctx, txns, config: MiningConfig) -> MiningRunResult:
    from repro.core.dist_eclat import DistEclat

    miner = DistEclat(
        ctx, num_partitions=config.num_partitions, **_with_store(config)
    )
    return miner.run(txns, config.min_support, max_length=config.max_length)


def _run_pfp(ctx, txns, config: MiningConfig) -> MiningRunResult:
    from repro.core.pfp import PFP

    miner = PFP(ctx, num_partitions=config.num_partitions, **config.options)
    return miner.run(txns, config.min_support, max_length=config.max_length)


def _run_mrapriori(txns, config: MiningConfig) -> MiningRunResult:
    from repro.core.mrapriori import MRApriori
    from repro.hdfs.filesystem import MiniDfs
    from repro.mapreduce.runner import JobRunner

    with MiniDfs(n_datanodes=2, replication=1) as dfs:
        dfs.write_lines(
            "/transactions.txt",
            (" ".join(str(i) for i in sorted(set(t))) for t in txns),
        )
        runner = JobRunner(
            dfs,
            backend="threads" if config.backend == "threads" else "serial",
            parallelism=config.parallelism or 4,
        )
        result = MRApriori(runner, **_with_store(config)).run(
            "/transactions.txt", config.min_support, max_length=config.max_length
        )
        # Items round-tripped through text; restore original types when
        # they were plain ints.
        if txns and all(isinstance(i, int) for t in txns for i in t):
            result.itemsets = {
                tuple(sorted(int(i) for i in k)): v for k, v in result.itemsets.items()
            }
        return result


def _run_one_phase(txns, config: MiningConfig) -> MiningRunResult:
    from repro.core.one_phase import OnePhaseMR
    from repro.hdfs.filesystem import MiniDfs
    from repro.mapreduce.runner import JobRunner

    with MiniDfs(n_datanodes=2, replication=1) as dfs:
        dfs.write_lines(
            "/transactions.txt",
            (" ".join(str(i) for i in sorted(set(t))) for t in txns),
        )
        runner = JobRunner(
            dfs,
            backend="threads" if config.backend == "threads" else "serial",
            parallelism=config.parallelism or 4,
        )
        options = _with_store(config)
        # subset enumeration is exponential without a cap; the class
        # default (3) applies when neither max_length nor options set one
        if config.max_length is not None:
            options.setdefault("max_length", config.max_length)
        result = OnePhaseMR(runner, **options).run(
            "/transactions.txt", config.min_support
        )
        if txns and all(isinstance(i, int) for t in txns for i in t):
            result.itemsets = {
                tuple(sorted(int(i) for i in k)): v for k, v in result.itemsets.items()
            }
        return result


def _make_oracle_runner(name: str) -> Callable:
    def run_oracle(txns, config: MiningConfig) -> MiningRunResult:
        import repro.algorithms as alg
        from repro.engine.tracing import Tracer

        fn = getattr(alg, name)
        tracer = Tracer(label=name)
        t0 = time.perf_counter()
        with tracer.span(f"mine {name}", "driver", min_support=config.min_support):
            itemsets = fn(
                txns, config.min_support, max_length=config.max_length, **config.options
            )
        seconds = time.perf_counter() - t0
        result = MiningRunResult(
            algorithm=name,
            min_support=config.min_support,
            n_transactions=len(txns),
        )
        result.itemsets = itemsets
        result.iterations = [
            IterationStats(
                k=0, seconds=seconds, n_candidates=-1, n_frequent=len(itemsets)
            )
        ]
        result.trace = tracer
        return result

    run_oracle.__name__ = f"_run_{name}"
    return run_oracle


def _register_builtins() -> None:
    register_algorithm(
        "yafim", _run_yafim, needs_engine=True,
        description="paper's algorithm on the RDD engine (default)",
    )
    register_algorithm(
        "rapriori", _run_rapriori, needs_engine=True,
        description="YAFIM with R-Apriori's candidate-free second pass",
    )
    register_algorithm(
        "dist_eclat", _run_dist_eclat, needs_engine=True,
        description="prefix-distributed parallel Eclat on the same engine",
    )
    register_algorithm(
        "pfp", _run_pfp, needs_engine=True,
        description="Parallel FP-Growth (Li et al.) on the same engine",
    )
    register_algorithm(
        "mrapriori", _run_mrapriori,
        description="MapReduce baseline (spins up an ephemeral mini-DFS)",
    )
    register_algorithm(
        "one_phase", _run_one_phase,
        description="one-phase MapReduce FIM (subset enumeration, "
        "max_length-capped; ephemeral mini-DFS)",
    )
    for oracle in ("apriori", "eclat", "fpgrowth"):
        register_algorithm(
            oracle, _make_oracle_runner(oracle),
            description=f"sequential {oracle} oracle",
        )


_register_builtins()

#: re-exported for `from repro.core.registry import *` ergonomics
__all__ = [
    "AlgorithmSpec",
    "MiningConfig",
    "algorithm_names",
    "get_algorithm",
    "register_algorithm",
    "run_algorithm",
    "unregister_algorithm",
]
