"""Result types shared by every parallel miner.

Both runtimes return a :class:`MiningRunResult` carrying the mined
itemsets **and** the measured per-iteration facts (wall time, candidate
counts, byte counters, replay records) that the evaluation harness plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.simulation import StageRecord
from repro.common.itemset import Itemset


@dataclass
class CompactionStats:
    """Working-set shrink measured around one encode/compact step.

    ``kind`` is ``"encode"`` for the post-Phase-I dictionary
    encode/dedupe and ``"compact"`` for a between-pass projection.
    ``txns`` counts *physical* rows (deduplicated when weighted);
    ``weight`` is the logical transaction count those rows represent.
    Byte figures use the engine's :func:`~repro.common.sizeof.estimate_size`
    — the same estimator the block manager budgets with.
    """

    kind: str
    seconds: float = 0.0
    txns_before: int = 0
    txns_after: int = 0
    items_before: int = 0
    items_after: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    weight_after: int = 0
    dict_items: int = 0  # dictionary alphabet size (encode rounds only)
    dict_broadcast_bytes: int = 0  # dictionary shipping cost (not pass-1 bytes)

    @property
    def txns_dropped(self) -> int:
        return self.txns_before - self.txns_after

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after


@dataclass
class IterationStats:
    """Measured facts about one Apriori level (pass k)."""

    k: int
    seconds: float
    n_candidates: int
    n_frequent: int
    # replay inputs: one StageRecord per stage executed during this level
    stage_records: list[StageRecord] = field(default_factory=list)
    broadcast_bytes: int = 0  # driver -> per-node candidate shipping
    closure_bytes: int = 0  # candidate bytes shipped per task when not broadcast
    hdfs_read_bytes: int = 0
    hdfs_write_bytes: int = 0
    shuffle_bytes: int = 0
    # engine observability counters (uniform across all parallel miners)
    cache_hit_rate: float = 0.0  # block-manager hits / (hits + misses); 0.0 when uncached
    straggler_ratio: float = 0.0  # max task duration / mean task duration (>= 1.0)
    shipped_bytes: int = 0  # bytes physically serialized driver->workers this pass
    # counting fast-path observability
    shuffle_records: int = 0  # records written to shuffle buckets (post map-side combine)
    counting_records: int = 0  # records entering the shuffle-map combine ("allocated pairs")
    compaction: CompactionStats | None = None  # working-set shrink applied after this pass
    # incremental-update observability (repro.core.incremental): how this
    # level's counts were brought current on the last append/retire
    delta_rows: int = 0  # physical (deduplicated) delta rows counted
    delta_candidates: int = 0  # candidates maintained by a delta-only pass
    full_candidates: int = 0  # candidates re-counted over the full window


def engine_iteration_stats(
    tasks,
    *,
    k: int,
    seconds: float,
    n_candidates: int,
    n_frequent: int,
    broadcast_bytes: int = 0,
    closure_bytes: int = 0,
    shipped_bytes: int = 0,
    label: str | None = None,
) -> IterationStats:
    """Fold one iteration's engine task records into an :class:`IterationStats`.

    ``tasks`` is the slice of :class:`~repro.engine.metrics.TaskMetrics`
    the iteration executed (``event_log.tasks_since(mark)``); every
    engine-backed miner routes its per-pass accounting through here so
    shuffle bytes, cache hit rate and straggler ratio are reported
    uniformly.
    """
    label = label or f"pass{k}"
    by_stage: dict[int, list] = {}
    for t in tasks:
        by_stage.setdefault(t.stage_id, []).append(t)
    records = []
    shuffle_total = 0
    for stage_id in sorted(by_stage):
        ts = by_stage[stage_id]
        write = sum(t.shuffle_write_bytes for t in ts)
        records.append(
            StageRecord(
                label=f"{label}/stage{stage_id}",
                task_durations=[t.duration_s for t in ts],
                input_bytes=sum(t.input_bytes for t in ts),
                shuffle_bytes=write,
            )
        )
        shuffle_total += write
    completed = [t for t in tasks if not t.kind.startswith("failed")]
    hits = sum(t.cache_hits for t in completed)
    misses = sum(t.cache_misses for t in completed)
    durations = [t.duration_s for t in completed]
    mean = sum(durations) / len(durations) if durations else 0.0
    return IterationStats(
        k=k,
        seconds=seconds,
        n_candidates=n_candidates,
        n_frequent=n_frequent,
        stage_records=records,
        broadcast_bytes=broadcast_bytes,
        closure_bytes=closure_bytes,
        hdfs_read_bytes=sum(t.input_bytes for t in tasks),
        shuffle_bytes=shuffle_total,
        cache_hit_rate=hits / (hits + misses) if (hits + misses) else 0.0,
        straggler_ratio=max(durations) / mean if durations and mean > 0 else 0.0,
        shipped_bytes=shipped_bytes,
        shuffle_records=sum(t.records_out for t in tasks if t.kind == "shuffle_map"),
        counting_records=sum(
            t.combine_records_in for t in tasks if t.kind == "shuffle_map"
        ),
    )


@dataclass
class MiningRunResult:
    """Frequent itemsets plus the per-iteration measurement trail."""

    algorithm: str
    min_support: float
    n_transactions: int
    itemsets: dict = field(default_factory=dict)  # Itemset -> count
    iterations: list[IterationStats] = field(default_factory=list)
    # observability: the run's Tracer and aggregate EngineMetrics (typed
    # loosely to keep results importable without the engine package)
    trace: object | None = field(default=None, repr=False)
    engine_metrics: object | None = field(default=None, repr=False)

    @property
    def num_itemsets(self) -> int:
        return len(self.itemsets)

    @property
    def total_seconds(self) -> float:
        return sum(it.seconds for it in self.iterations)

    @property
    def max_level(self) -> int:
        return max((len(i) for i in self.itemsets), default=0)

    def level(self, k: int) -> dict:
        return {i: c for i, c in self.itemsets.items() if len(i) == k}

    def per_iteration_seconds(self) -> list[tuple[int, float]]:
        return [(it.k, it.seconds) for it in self.iterations]

    def support(self, itemset: Itemset) -> float:
        """Relative support of a mined itemset (0.0 when not frequent)."""
        count = self.itemsets.get(tuple(sorted(itemset)), 0)
        return count / self.n_transactions if self.n_transactions else 0.0

    def summary(self) -> str:
        lines = [
            f"{self.algorithm}: {self.num_itemsets} frequent itemsets "
            f"(minsup={self.min_support:g}, |D|={self.n_transactions}, "
            f"max level={self.max_level}, {self.total_seconds:.3f}s)"
        ]
        for it in self.iterations:
            lines.append(
                f"  pass {it.k}: {it.seconds:.4f}s  "
                f"candidates={it.n_candidates}  frequent={it.n_frequent}"
            )
        return "\n".join(lines)
