"""Result types shared by every parallel miner.

Both runtimes return a :class:`MiningRunResult` carrying the mined
itemsets **and** the measured per-iteration facts (wall time, candidate
counts, byte counters, replay records) that the evaluation harness plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.simulation import StageRecord
from repro.common.itemset import Itemset


@dataclass
class IterationStats:
    """Measured facts about one Apriori level (pass k)."""

    k: int
    seconds: float
    n_candidates: int
    n_frequent: int
    # replay inputs: one StageRecord per stage executed during this level
    stage_records: list[StageRecord] = field(default_factory=list)
    broadcast_bytes: int = 0  # driver -> per-node candidate shipping
    closure_bytes: int = 0  # candidate bytes shipped per task when not broadcast
    hdfs_read_bytes: int = 0
    hdfs_write_bytes: int = 0
    shuffle_bytes: int = 0


@dataclass
class MiningRunResult:
    """Frequent itemsets plus the per-iteration measurement trail."""

    algorithm: str
    min_support: float
    n_transactions: int
    itemsets: dict = field(default_factory=dict)  # Itemset -> count
    iterations: list[IterationStats] = field(default_factory=list)

    @property
    def num_itemsets(self) -> int:
        return len(self.itemsets)

    @property
    def total_seconds(self) -> float:
        return sum(it.seconds for it in self.iterations)

    @property
    def max_level(self) -> int:
        return max((len(i) for i in self.itemsets), default=0)

    def level(self, k: int) -> dict:
        return {i: c for i, c in self.itemsets.items() if len(i) == k}

    def per_iteration_seconds(self) -> list[tuple[int, float]]:
        return [(it.k, it.seconds) for it in self.iterations]

    def support(self, itemset: Itemset) -> float:
        """Relative support of a mined itemset (0.0 when not frequent)."""
        count = self.itemsets.get(tuple(sorted(itemset)), 0)
        return count / self.n_transactions if self.n_transactions else 0.0

    def summary(self) -> str:
        lines = [
            f"{self.algorithm}: {self.num_itemsets} frequent itemsets "
            f"(minsup={self.min_support:g}, |D|={self.n_transactions}, "
            f"max level={self.max_level}, {self.total_seconds:.3f}s)"
        ]
        for it in self.iterations:
            lines.append(
                f"  pass {it.k}: {it.seconds:.4f}s  "
                f"candidates={it.n_candidates}  frequent={it.n_frequent}"
            )
        return "\n".join(lines)
