"""Association-rule generation from mined frequent itemsets.

The paper's medical application (§V-D) mines frequent itemsets "to find
the relationship in medicine" — the standard post-processing step is rule
extraction with confidence/lift, included here so the medical example is
end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.common.errors import MiningError
from repro.common.itemset import Itemset


@dataclass(frozen=True)
class AssociationRule:
    """``antecedent -> consequent`` with its standard quality measures."""

    antecedent: Itemset
    consequent: Itemset
    support: float  # P(antecedent AND consequent)
    confidence: float  # P(consequent | antecedent)
    lift: float  # confidence / P(consequent)

    def __str__(self) -> str:
        lhs = ", ".join(map(str, self.antecedent))
        rhs = ", ".join(map(str, self.consequent))
        return (
            f"{{{lhs}}} => {{{rhs}}} "
            f"(sup={self.support:.3f}, conf={self.confidence:.3f}, lift={self.lift:.2f})"
        )


def generate_rules(
    itemsets: dict,
    n_transactions: int,
    min_confidence: float = 0.5,
    min_lift: float = 0.0,
) -> list[AssociationRule]:
    """All rules A -> B with ``A | B`` frequent, conf >= ``min_confidence``.

    ``itemsets`` maps canonical itemsets to absolute support counts and
    must be downward-closed (every subset of a frequent itemset present),
    which every miner in this library guarantees.
    """
    if n_transactions <= 0:
        raise MiningError("n_transactions must be positive")
    if not 0.0 <= min_confidence <= 1.0:
        raise MiningError("min_confidence must be in [0, 1]")
    rules: list[AssociationRule] = []
    for itemset, count in itemsets.items():
        if len(itemset) < 2:
            continue
        sup_both = count / n_transactions
        for r in range(1, len(itemset)):
            for antecedent in combinations(itemset, r):
                consequent = tuple(i for i in itemset if i not in antecedent)
                try:
                    ante_count = itemsets[antecedent]
                    cons_count = itemsets[consequent]
                except KeyError as missing:
                    raise MiningError(
                        f"itemset map is not downward-closed: missing {missing}"
                    ) from None
                confidence = count / ante_count
                lift = confidence / (cons_count / n_transactions)
                if confidence >= min_confidence and lift >= min_lift:
                    rules.append(
                        AssociationRule(
                            antecedent=antecedent,
                            consequent=consequent,
                            support=sup_both,
                            confidence=confidence,
                            lift=lift,
                        )
                    )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, rule.antecedent, rule.consequent))
    return rules


def top_rules(rules: list[AssociationRule], n: int = 10) -> list[AssociationRule]:
    """First ``n`` rules by (confidence, support) — for report printing."""
    return rules[:n]


def generate_rules_parallel(
    ctx,
    itemsets: dict,
    n_transactions: int,
    min_confidence: float = 0.5,
    min_lift: float = 0.0,
    num_partitions: int | None = None,
) -> list[AssociationRule]:
    """Distributed rule generation on the RDD engine.

    Rule extraction is embarrassingly parallel per frequent itemset: the
    itemsets are partitioned across workers and the full support map rides
    along as a broadcast variable (the same §IV-C pattern YAFIM uses for
    its candidates).  Output is identical to :func:`generate_rules`.
    """
    if n_transactions <= 0:
        raise MiningError("n_transactions must be positive")
    if not 0.0 <= min_confidence <= 1.0:
        raise MiningError("min_confidence must be in [0, 1]")
    multi = [(iset, count) for iset, count in itemsets.items() if len(iset) >= 2]
    if not multi:
        return []
    bc = ctx.broadcast(itemsets)

    def rules_for(partition):
        supports = bc.value
        for itemset, count in partition:
            sup_both = count / n_transactions
            for r in range(1, len(itemset)):
                for antecedent in combinations(itemset, r):
                    consequent = tuple(i for i in itemset if i not in antecedent)
                    ante_count = supports.get(antecedent)
                    cons_count = supports.get(consequent)
                    if ante_count is None or cons_count is None:
                        raise MiningError(
                            "itemset map is not downward-closed: "
                            f"missing subset of {itemset}"
                        )
                    confidence = count / ante_count
                    lift = confidence / (cons_count / n_transactions)
                    if confidence >= min_confidence and lift >= min_lift:
                        yield AssociationRule(
                            antecedent=antecedent,
                            consequent=consequent,
                            support=sup_both,
                            confidence=confidence,
                            lift=lift,
                        )

    rules = (
        ctx.parallelize(multi, num_partitions or ctx.default_parallelism)
        .map_partitions(rules_for)
        .collect()
    )
    bc.destroy()
    rules.sort(
        key=lambda rule: (-rule.confidence, -rule.support, rule.antecedent, rule.consequent)
    )
    return rules
