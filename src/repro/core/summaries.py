"""Condensed representations of a frequent-itemset family.

Standard FIM post-processing, complementing :mod:`repro.core.rules`:

* **maximal** frequent itemsets — no frequent superset exists; the
  smallest family from which frequency (but not supports) of every
  frequent itemset can be recovered.
* **closed** frequent itemsets — no superset has the *same* support; the
  smallest family from which every frequent itemset's exact support can
  be recovered.
* the **negative border** — the minimal infrequent candidates, i.e.
  itemsets whose every proper subset is frequent but which are not
  themselves frequent.  This is exactly the set Apriori counted and
  rejected in its final pass over each level, and its size measures the
  level-wise algorithm's wasted counting work (reported by the bench
  harness).

All functions take the ``{itemset: support_count}`` map produced by any
miner in this library (downward-closed by construction).
"""

from __future__ import annotations

from itertools import combinations

from repro.common.errors import MiningError
from repro.common.itemset import Itemset


def _validate(itemsets: dict) -> None:
    if not isinstance(itemsets, dict):
        raise MiningError("itemsets must be a {itemset: count} mapping")


def maximal_itemsets(itemsets: dict) -> dict:
    """Frequent itemsets with no frequent proper superset.

    O(n * k) with a per-level index: an itemset is maximal unless some
    frequent (k+1)-itemset contains it.
    """
    _validate(itemsets)
    by_len: dict[int, list[Itemset]] = {}
    for iset in itemsets:
        by_len.setdefault(len(iset), []).append(iset)
    out = {}
    for k, level in by_len.items():
        supersets = by_len.get(k + 1, [])
        # a k-itemset has a frequent superset iff it is a (k)-subset of
        # some frequent (k+1)-itemset: index those subsets once
        covered = set()
        for sup_set in supersets:
            for sub in combinations(sup_set, k):
                covered.add(sub)
        for iset in level:
            if iset not in covered:
                out[iset] = itemsets[iset]
    return out


def closed_itemsets(itemsets: dict) -> dict:
    """Frequent itemsets whose every frequent superset has lower support."""
    _validate(itemsets)
    by_len: dict[int, list[Itemset]] = {}
    for iset in itemsets:
        by_len.setdefault(len(iset), []).append(iset)
    out = {}
    for k, level in by_len.items():
        # map k-subset -> max support among its frequent (k+1)-supersets
        best_super: dict[Itemset, int] = {}
        for sup_set in by_len.get(k + 1, []):
            count = itemsets[sup_set]
            for sub in combinations(sup_set, k):
                if count > best_super.get(sub, -1):
                    best_super[sub] = count
        for iset in level:
            if best_super.get(iset, -1) < itemsets[iset]:
                out[iset] = itemsets[iset]
    return out


def negative_border(itemsets: dict, items: list | None = None) -> list[Itemset]:
    """Minimal infrequent itemsets over the given item universe.

    ``items`` defaults to the frequent 1-itemsets' items (the classic
    definition: anything containing an infrequent item is subsumed by
    that item's singleton already being in the border when ``items``
    covers the full universe).
    """
    _validate(itemsets)
    frequent = set(itemsets)
    if items is not None:
        universe = sorted(set(items))
    else:
        universe = sorted({iset[0] for iset in frequent if len(iset) == 1})
    border: list[Itemset] = []
    # singletons of the universe that are not frequent
    for item in universe:
        if (item,) not in frequent:
            border.append((item,))
    # level k >= 2: candidates from frequent (k-1)-sets, minus frequent ones
    from repro.core.candidates import apriori_gen

    by_len: dict[int, list[Itemset]] = {}
    for iset in frequent:
        by_len.setdefault(len(iset), []).append(iset)
    for k in sorted(by_len):
        candidates = apriori_gen(by_len[k])
        border.extend(c for c in candidates if c not in frequent)
    return sorted(border)


def support_of(itemset: Itemset, closed: dict) -> int:
    """Recover an itemset's support from the closed family.

    The support of any frequent itemset equals the maximum support among
    closed supersets; returns 0 when no closed superset exists (itemset
    not frequent).
    """
    target = set(itemset)
    best = 0
    for ciset, count in closed.items():
        if target <= set(ciset) and count > best:
            best = count
    return best
