"""Toivonen's sampling algorithm (VLDB 1996).

The classic one-full-pass alternative to Apriori's k passes, and a
natural citizen of this library because its correctness check *is* the
negative border from :mod:`repro.core.summaries`:

1. mine a random sample at a *lowered* threshold (so the sample is
   unlikely to miss anything globally frequent),
2. candidates = the sample's frequent family plus its negative border,
3. count all candidates exactly in ONE pass over the full database,
4. if nothing from the negative border turned out frequent, the frequent
   family is provably complete; otherwise the sample missed patterns —
   resample and repeat.

The exact counting pass reuses the paper's hash-tree machinery (one tree
per candidate length).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.algorithms.common import normalize_transactions
from repro.algorithms.fpgrowth import fpgrowth
from repro.common.errors import MiningError
from repro.common.itemset import Itemset, min_support_count
from repro.common.rng import make_rng
from repro.core.hashtree import HashTree
from repro.core.summaries import negative_border


@dataclass
class ToivonenResult:
    itemsets: dict = field(default_factory=dict)
    attempts: int = 0
    sample_size: int = 0
    candidates_counted: int = 0
    border_violations: list[Itemset] = field(default_factory=list)  # last attempt's

    @property
    def num_itemsets(self) -> int:
        return len(self.itemsets)


def count_exact(transactions: list[Itemset], candidates: Iterable[Itemset]) -> dict:
    """One full pass: exact support counts of arbitrary-length candidates."""
    by_len: dict[int, list[Itemset]] = defaultdict(list)
    for cand in candidates:
        by_len[len(cand)].append(cand)
    trees = {k: HashTree(cands) for k, cands in by_len.items() if cands}
    counts: dict[Itemset, int] = defaultdict(int)
    for txn in transactions:
        for tree in trees.values():
            for cand in tree.subset(txn):
                counts[cand] += 1
    # candidates never seen still deserve an entry
    for cands in by_len.values():
        for cand in cands:
            counts.setdefault(cand, 0)
    return dict(counts)


def toivonen(
    transactions: Iterable[Sequence],
    min_support: float,
    sample_fraction: float = 0.25,
    lowering: float = 0.8,
    max_attempts: int = 5,
    seed: int | None = 0,
) -> ToivonenResult:
    """All frequent itemsets via sampling + one exact counting pass.

    Parameters
    ----------
    transactions, min_support:
        As everywhere else in the library.
    sample_fraction:
        Fraction of transactions drawn (without replacement) per attempt.
    lowering:
        The sample is mined at ``lowering * min_support`` — lower values
        make missed patterns rarer but the candidate set larger.
    max_attempts:
        Resampling budget before giving up.

    Raises
    ------
    MiningError
        When every attempt had a frequent negative-border member (the
        sample kept missing patterns).
    """
    if not 0.0 < min_support <= 1.0:
        raise MiningError(f"min_support must be in (0, 1], got {min_support}")
    if not 0.0 < sample_fraction <= 1.0:
        raise MiningError("sample_fraction must be in (0, 1]")
    if not 0.0 < lowering <= 1.0:
        raise MiningError("lowering must be in (0, 1]")
    txns = normalize_transactions(transactions)
    if not txns:
        raise MiningError("cannot mine an empty transaction database")
    n = len(txns)
    threshold = min_support_count(min_support, n)
    rng = make_rng(seed)
    all_items = sorted({i for t in txns for i in t})

    result = ToivonenResult()
    for attempt in range(1, max_attempts + 1):
        result.attempts = attempt
        sample_size = max(1, int(round(sample_fraction * n)))
        idx = rng.choice(n, size=sample_size, replace=False)
        sample = [txns[i] for i in idx]
        result.sample_size = sample_size

        lowered = max(1.0 / sample_size, lowering * min_support)
        sample_frequent = fpgrowth(sample, lowered)
        border = negative_border(sample_frequent, items=all_items)
        candidates = set(sample_frequent) | set(border)
        result.candidates_counted = len(candidates)

        exact = count_exact(txns, candidates)
        frequent = {c: v for c, v in exact.items() if v >= threshold}
        violations = [c for c in border if c in frequent]
        result.border_violations = violations
        if not violations:
            result.itemsets = frequent
            return result
        # a border member is globally frequent: the sample missed part of
        # the lattice — resample (fresh randomness from the same stream)
    raise MiningError(
        f"toivonen: sample kept missing patterns after {max_attempts} attempts "
        f"(last violations: {result.border_violations[:5]})"
    )
