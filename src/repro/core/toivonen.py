"""Toivonen's sampling algorithm (VLDB 1996).

The classic one-full-pass alternative to Apriori's k passes, and a
natural citizen of this library because its correctness check *is* the
negative border from :mod:`repro.core.summaries`:

1. mine a random sample at a *lowered* threshold (so the sample is
   unlikely to miss anything globally frequent),
2. candidates = the sample's frequent family plus its negative border,
3. count all candidates exactly in ONE pass over the full database,
4. if nothing from the negative border turned out frequent, the frequent
   family is provably complete; otherwise the sample missed patterns —
   resample and repeat.

The exact counting pass goes through the pluggable
:mod:`repro.core.candidatestore` registry (one store per candidate
length) — ``candidate_store="bitmap"`` swaps the hash-tree walk for the
vertical tid-bitmap kernel.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.algorithms.common import normalize_transactions
from repro.algorithms.fpgrowth import fpgrowth
from repro.common.errors import MiningError
from repro.common.itemset import Itemset, min_support_count
from repro.common.rng import make_rng
from repro.core.candidatestore import make_store
from repro.core.summaries import negative_border


@dataclass
class ToivonenResult:
    itemsets: dict = field(default_factory=dict)
    attempts: int = 0
    sample_size: int = 0
    candidates_counted: int = 0
    border_violations: list[Itemset] = field(default_factory=list)  # last attempt's

    @property
    def num_itemsets(self) -> int:
        return len(self.itemsets)


def count_exact(
    transactions: list[Itemset],
    candidates: Iterable[Itemset],
    candidate_store: str = "hashtree",
    store_options: dict | None = None,
) -> dict:
    """One full pass: exact support counts of arbitrary-length candidates.

    ``candidate_store`` names any registered
    :mod:`repro.core.candidatestore` store; each store's batch
    ``count_partition`` hook counts the whole pass (the bitmap store's
    vertical kernel included).
    """
    by_len: dict[int, list[Itemset]] = defaultdict(list)
    for cand in candidates:
        by_len[len(cand)].append(cand)
    stores = [
        make_store(candidate_store, cands, **(store_options or {}))
        for _, cands in sorted(by_len.items())
        if cands
    ]
    from repro.core.approx import _count_all

    counts: dict[Itemset, int] = _count_all(stores, transactions)
    # candidates never seen still deserve an entry
    for cands in by_len.values():
        for cand in cands:
            counts.setdefault(cand, 0)
    return counts


def toivonen(
    transactions: Iterable[Sequence],
    min_support: float,
    sample_fraction: float = 0.25,
    lowering: float = 0.8,
    max_attempts: int = 5,
    seed: int | None = 0,
    candidate_store: str = "hashtree",
    store_options: dict | None = None,
) -> ToivonenResult:
    """All frequent itemsets via sampling + one exact counting pass.

    Parameters
    ----------
    transactions, min_support:
        As everywhere else in the library.
    sample_fraction:
        Fraction of transactions drawn (without replacement) per attempt.
    lowering:
        The sample is mined at ``lowering * min_support`` — lower values
        make missed patterns rarer but the candidate set larger.
    max_attempts:
        Resampling budget before giving up.
    candidate_store / store_options:
        Store (and its constructor kwargs) for the exact counting pass;
        any :mod:`repro.core.candidatestore` registration works.

    Raises
    ------
    MiningError
        When every attempt had a frequent negative-border member (the
        sample kept missing patterns).
    """
    if not 0.0 < min_support <= 1.0:
        raise MiningError(f"min_support must be in (0, 1], got {min_support}")
    if not 0.0 < sample_fraction <= 1.0:
        raise MiningError("sample_fraction must be in (0, 1]")
    if not 0.0 < lowering <= 1.0:
        raise MiningError("lowering must be in (0, 1]")
    txns = normalize_transactions(transactions)
    if not txns:
        raise MiningError("cannot mine an empty transaction database")
    n = len(txns)
    threshold = min_support_count(min_support, n)
    rng = make_rng(seed)
    all_items = sorted({i for t in txns for i in t})

    result = ToivonenResult()
    for attempt in range(1, max_attempts + 1):
        result.attempts = attempt
        sample_size = max(1, int(round(sample_fraction * n)))
        idx = rng.choice(n, size=sample_size, replace=False)
        sample = [txns[i] for i in idx]
        result.sample_size = sample_size

        lowered = max(1.0 / sample_size, lowering * min_support)
        sample_frequent = fpgrowth(sample, lowered)
        border = negative_border(sample_frequent, items=all_items)
        candidates = set(sample_frequent) | set(border)
        result.candidates_counted = len(candidates)

        exact = count_exact(
            txns, candidates,
            candidate_store=candidate_store, store_options=store_options,
        )
        frequent = {c: v for c, v in exact.items() if v >= threshold}
        violations = [c for c in border if c in frequent]
        result.border_violations = violations
        if not violations:
            result.itemsets = frequent
            return result
        # a border member is globally frequent: the sample missed part of
        # the lattice — resample (fresh randomness from the same stream)
    raise MiningError(
        f"toivonen: sample kept missing patterns after {max_attempts} attempts "
        f"(last violations: {result.border_violations[:5]})"
    )
