"""Top-K frequent itemset mining.

Practitioners rarely know a good ``min_support`` up front (the paper's
per-dataset thresholds in Table I were hand-picked); asking for "the K
most frequent itemsets" sidesteps the guess.  The classic strategy is
threshold descent: start high, geometrically lower the threshold until at
least K itemsets qualify, then trim to exactly K (supports descending,
canonical order breaking ties).  Each probe uses FP-Growth, whose cost
tracks output size, so overshooting probes stay cheap.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.algorithms.common import normalize_transactions
from repro.algorithms.fpgrowth import fpgrowth
from repro.common.errors import MiningError
from repro.common.itemset import Itemset


@dataclass
class TopKResult:
    """The K best itemsets plus the support threshold that admits them."""

    itemsets: list[tuple[Itemset, int]]  # (itemset, count), support-descending
    achieved_support: float  # relative support of the K-th itemset
    n_transactions: int
    probes: int  # how many thresholds were tried

    def as_dict(self) -> dict:
        return dict(self.itemsets)


def mine_top_k(
    transactions: Iterable[Sequence],
    k: int,
    min_length: int = 1,
    max_length: int | None = None,
    initial_support: float = 0.5,
    descent_factor: float = 0.5,
) -> TopKResult:
    """The ``k`` most frequent itemsets with at least ``min_length`` items.

    Parameters
    ----------
    transactions:
        The database.
    k:
        How many itemsets to return (fewer if the database cannot supply
        ``k`` itemsets of the requested length even at support 1/N).
    min_length / max_length:
        Restrict the itemset sizes considered (e.g. ``min_length=2`` for
        "top co-occurrences" excludes the trivially frequent singletons).
    initial_support / descent_factor:
        Threshold-descent schedule knobs.

    >>> top = mine_top_k([["a", "b"], ["a", "b"], ["a"]], k=2)
    >>> top.itemsets[0]
    (('a',), 3)
    """
    if k < 1:
        raise MiningError("k must be >= 1")
    if min_length < 1:
        raise MiningError("min_length must be >= 1")
    if max_length is not None and max_length < min_length:
        raise MiningError("max_length must be >= min_length")
    if not 0.0 < initial_support <= 1.0:
        raise MiningError("initial_support must be in (0, 1]")
    if not 0.0 < descent_factor < 1.0:
        raise MiningError("descent_factor must be in (0, 1)")
    txns = normalize_transactions(transactions)
    if not txns:
        raise MiningError("cannot mine an empty transaction database")
    n = len(txns)
    floor = 1.0 / n  # cannot go below one occurrence

    support = initial_support
    probes = 0
    eligible: list[tuple[Itemset, int]] = []
    while True:
        probes += 1
        mined = fpgrowth(txns, support, max_length=max_length)
        eligible = sorted(
            ((iset, count) for iset, count in mined.items() if len(iset) >= min_length),
            key=lambda kv: (-kv[1], kv[0]),
        )
        if len(eligible) >= k or support <= floor:
            break
        support = max(floor, support * descent_factor)

    top = eligible[:k]
    achieved = top[-1][1] / n if top else 0.0
    return TopKResult(
        itemsets=top, achieved_support=achieved, n_transactions=n, probes=probes
    )
