"""SPC / FPC / DPC — the Lin et al. (ICUIMC'12) MapReduce Apriori variants.

All three share the :class:`~repro.core.mrapriori.MRApriori` driver and
differ only in how many candidate levels each MapReduce job counts:

* **SPC** (Single Pass Counting) — one level per job; identical to
  MRApriori/PApriori and the paper's baseline.
* **FPC** (Fixed Passes Combined-counting) — always combines a fixed
  number of levels per job, trading extra speculative candidates for
  fewer job startups.
* **DPC** (Dynamic Passes Combined-counting) — combines levels while a
  projected candidate budget holds.
"""

from __future__ import annotations

from repro.core.mrapriori import (
    MRApriori,
    dpc_strategy,
    fpc_strategy,
    spc_strategy,
)
from repro.mapreduce.runner import JobRunner


class SPC(MRApriori):
    """Single Pass Counting — one MapReduce job per Apriori level."""

    algorithm_name = "spc"

    def __init__(self, runner: JobRunner, **kwargs):
        kwargs.setdefault("work_dir", "/spc")
        super().__init__(runner, combine_strategy=spc_strategy, **kwargs)


class FPC(MRApriori):
    """Fixed Passes Combined-counting — ``passes`` levels per job."""

    algorithm_name = "fpc"

    def __init__(self, runner: JobRunner, passes: int = 3, **kwargs):
        if passes < 1:
            raise ValueError("passes must be >= 1")
        kwargs.setdefault("work_dir", "/fpc")
        super().__init__(runner, combine_strategy=fpc_strategy(passes), **kwargs)
        self.passes = passes


class DPC(MRApriori):
    """Dynamic Passes Combined-counting — budget-driven level combining."""

    algorithm_name = "dpc"

    def __init__(self, runner: JobRunner, candidate_budget: int = 50_000, **kwargs):
        if candidate_budget < 1:
            raise ValueError("candidate_budget must be >= 1")
        kwargs.setdefault("work_dir", "/dpc")
        super().__init__(runner, combine_strategy=dpc_strategy(candidate_budget), **kwargs)
        self.candidate_budget = candidate_budget
