"""YAFIM — the paper's algorithm, on the RDD engine (paper §IV).

Phase I (Algorithm 2, Fig. 1)::

    input file --flatMap(getTransaction)--> Transactions (cached RDD)
               --flatMap(getItems)--> Items
               --map(item => (item, 1))--> pairs
               --reduceByKey(_ + _), filter >= minsup--> L1

Phase II (Algorithm 3, Fig. 2), for k = 2, 3, ... until L_k is empty::

    C_k  = apriori_gen(L_{k-1})            (driver)
    tree = HashTree(C_k); broadcast(tree)  (§IV-A / §IV-C)
    L_k  = Transactions.flatMap(t => tree.subset(t))
                       .map(c => (c, 1))
                       .reduceByKey(_ + _)
                       .filter(count >= minsup)

The transaction RDD is loaded once and cached (§IV-B); every iteration
re-scans it from cluster memory.  Three design choices are independently
switchable for the ablation benchmarks: ``use_hash_tree``,
``use_broadcast`` and ``cache_transactions``.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.common.errors import MiningError
from repro.common.itemset import canonical_transaction, contains, min_support_count
from repro.core.candidates import apriori_gen
from repro.core.hashtree import HashTree
from repro.core.results import IterationStats, MiningRunResult, engine_iteration_stats
from repro.engine.context import Context
from repro.engine.rdd import RDD
from repro.engine.tracing import collect_engine_metrics


def load_transactions_rdd(ctx: Context, dfs, path: str, sep: str | None = None) -> RDD:
    """Paper Phase I entry: text file -> RDD of canonical transactions."""
    return ctx.text_file(dfs, path).map(
        lambda line: canonical_transaction(line.split(sep))
    ).filter(lambda t: len(t) > 0)


class Yafim:
    """Configured YAFIM miner bound to an engine :class:`Context`.

    Parameters
    ----------
    ctx:
        Engine context (any backend).
    num_partitions:
        Partitions for the transaction RDD and shuffles (default: the
        context's parallelism).
    use_hash_tree:
        Store candidates in a hash tree (paper behaviour).  ``False``
        degrades to a flat candidate list scan (ablation A3).
    use_broadcast:
        Ship candidates via a broadcast variable (paper behaviour).
        ``False`` captures them in every task closure (ablation A1).
    cache_transactions:
        Cache the transaction RDD in memory (paper behaviour).  ``False``
        recomputes/re-reads it every iteration (ablation A2).
    hash_tree_fanout / hash_tree_leaf_size:
        Hash-tree shape knobs.
    """

    def __init__(
        self,
        ctx: Context,
        num_partitions: int | None = None,
        use_hash_tree: bool = True,
        use_broadcast: bool = True,
        cache_transactions: bool = True,
        hash_tree_fanout: int = 64,
        hash_tree_leaf_size: int = 16,
        clear_shuffles_between_iterations: bool = True,
    ):
        self.ctx = ctx
        self.num_partitions = num_partitions or ctx.default_parallelism
        self.use_hash_tree = use_hash_tree
        self.use_broadcast = use_broadcast
        self.cache_transactions = cache_transactions
        self.hash_tree_fanout = hash_tree_fanout
        self.hash_tree_leaf_size = hash_tree_leaf_size
        self.clear_shuffles = clear_shuffles_between_iterations

    # -- public entry points -------------------------------------------------
    def run(
        self,
        transactions: Iterable[Sequence],
        min_support: float,
        max_length: int | None = None,
    ) -> MiningRunResult:
        """Mine an in-memory collection of transactions."""
        rdd = self.ctx.parallelize(
            [canonical_transaction(t) for t in transactions], self.num_partitions
        )
        return self.run_rdd(rdd, min_support, max_length=max_length)

    def run_text_file(
        self,
        dfs,
        path: str,
        min_support: float,
        sep: str | None = None,
        max_length: int | None = None,
    ) -> MiningRunResult:
        """Mine a transaction file stored in the mini-DFS (paper setup)."""
        return self.run_rdd(
            load_transactions_rdd(self.ctx, dfs, path, sep),
            min_support,
            max_length=max_length,
        )

    # -- the algorithm ---------------------------------------------------------
    def run_rdd(
        self,
        transactions: RDD,
        min_support: float,
        max_length: int | None = None,
    ) -> MiningRunResult:
        if not 0.0 < min_support <= 1.0:
            raise MiningError(f"min_support must be in (0, 1], got {min_support}")
        result = MiningRunResult(algorithm="yafim", min_support=min_support, n_transactions=0)

        if self.cache_transactions:
            transactions = transactions.cache()

        # ---- Phase I: frequent 1-itemsets -------------------------------
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        ship_mark = self.ctx.executor.shipped_bytes_total()
        n = transactions.count()  # materializes the cache
        if n == 0:
            raise MiningError("cannot mine an empty transaction database")
        threshold = min_support_count(min_support, n)
        level = (
            transactions.flat_map(lambda t: t)
            .map(lambda item: (item, 1))
            .reduce_by_key(lambda a, b: a + b, self.num_partitions)
            .filter(lambda kv: kv[1] >= threshold)
            .map(lambda kv: ((kv[0],), kv[1]))
            .collect_as_map()
        )
        result.n_transactions = n
        result.iterations.append(
            self._iteration_stats(
                k=1,
                seconds=time.perf_counter() - t0,
                n_candidates=-1,  # pass 1 counts raw items, no candidate set
                n_frequent=len(level),
                mark=mark,
                broadcast_bytes=0,
                shipped_bytes=self.ctx.executor.shipped_bytes_total() - ship_mark,
            )
        )
        result.itemsets.update(level)
        if self.clear_shuffles:
            self.ctx.clear_shuffle_outputs()

        # ---- Phase II: iterate k-frequent -> (k+1)-frequent ---------------
        k = 2
        while level and (max_length is None or k <= max_length):
            t0 = time.perf_counter()
            mark = self.ctx.event_log.mark()
            ship_mark = self.ctx.executor.shipped_bytes_total()
            with self.ctx.tracer.span(f"apriori_gen k={k}", "driver", n_seed=len(level)):
                candidates = apriori_gen(level.keys())
            if not candidates:
                break
            with self.ctx.tracer.span(
                f"hash_tree_build k={k}", "driver",
                n_candidates=len(candidates), hash_tree=self.use_hash_tree,
            ):
                matcher = self._build_matcher(candidates)
            bc = self.ctx.broadcast(matcher) if self.use_broadcast else None
            bc_bytes = bc.size_bytes if bc is not None else 0
            closure_bytes = 0

            if bc is not None:
                find = _BroadcastSubsetFinder(bc)
            else:
                find = _ClosureSubsetFinder(matcher)
                # Spark's default behaviour ships the closure (candidates
                # included) with EVERY task — charge it per map task so the
                # broadcast ablation can quantify the saving (§IV-C).
                from repro.common.sizeof import estimate_size

                closure_bytes = estimate_size(matcher) * transactions.num_partitions

            level = (
                transactions.map_partitions(find)
                .map(lambda cand: (cand, 1))
                .reduce_by_key(lambda a, b: a + b, self.num_partitions)
                .filter(lambda kv: kv[1] >= threshold)
                .collect_as_map()
            )
            result.itemsets.update(level)
            result.iterations.append(
                self._iteration_stats(
                    k=k,
                    seconds=time.perf_counter() - t0,
                    n_candidates=len(candidates),
                    n_frequent=len(level),
                    mark=mark,
                    broadcast_bytes=bc_bytes,
                    closure_bytes=closure_bytes,
                    shipped_bytes=self.ctx.executor.shipped_bytes_total() - ship_mark,
                )
            )
            if bc is not None:
                bc.destroy()
            if self.clear_shuffles:
                self.ctx.clear_shuffle_outputs()
            k += 1
        result.trace = self.ctx.tracer
        result.engine_metrics = collect_engine_metrics(self.ctx)
        return result

    # -- helpers ---------------------------------------------------------------
    def _build_matcher(self, candidates: list):
        if self.use_hash_tree:
            return HashTree(
                candidates,
                fanout=self.hash_tree_fanout,
                max_leaf_size=self.hash_tree_leaf_size,
            )
        return _LinearMatcher(candidates)

    def _iteration_stats(
        self, k: int, seconds: float, n_candidates: int, n_frequent: int,
        mark: int, broadcast_bytes: int, closure_bytes: int = 0,
        shipped_bytes: int = 0,
    ) -> IterationStats:
        """Fold this iteration's engine tasks into replayable stage records."""
        return engine_iteration_stats(
            self.ctx.event_log.tasks_since(mark),
            k=k,
            seconds=seconds,
            n_candidates=n_candidates,
            n_frequent=n_frequent,
            broadcast_bytes=broadcast_bytes,
            closure_bytes=closure_bytes,
            shipped_bytes=shipped_bytes,
        )


class _LinearMatcher:
    """Flat candidate list with the same ``subset`` interface as HashTree.

    Used by ablation A3 to quantify the hash tree's benefit.
    """

    def __init__(self, candidates: list):
        self.candidates = list(candidates)

    def subset(self, transaction) -> list:
        txn = tuple(transaction)
        return [c for c in self.candidates if contains(txn, c)]

    def __len__(self) -> int:
        return len(self.candidates)


class _BroadcastSubsetFinder:
    """Per-partition candidate matcher resolving a broadcast variable.

    The broadcast value is resolved once per partition (as Spark
    deserializes a broadcast once per task), then applied to every
    transaction in the partition.
    """

    def __init__(self, bc):
        self._bc = bc

    def __call__(self, transactions):
        matcher = self._bc.value
        for txn in transactions:
            yield from matcher.subset(txn)


class _ClosureSubsetFinder:
    """Per-partition matcher carried directly in the task closure.

    Mimics Spark's default task-closure shipping: the cluster replay
    charges the candidate bytes once per *task* instead of once per node.
    """

    def __init__(self, matcher):
        self._matcher = matcher

    def __call__(self, transactions):
        for txn in transactions:
            yield from self._matcher.subset(txn)
