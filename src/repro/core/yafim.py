"""YAFIM — the paper's algorithm, on the RDD engine (paper §IV).

Phase I (Algorithm 2, Fig. 1)::

    input file --flatMap(getTransaction)--> Transactions (cached RDD)
               --flatMap(getItems)--> Items
               --map(item => (item, 1))--> pairs
               --reduceByKey(_ + _), filter >= minsup--> L1

Phase II (Algorithm 3, Fig. 2), for k = 2, 3, ... until L_k is empty::

    C_k  = apriori_gen(L_{k-1})            (driver)
    tree = HashTree(C_k); broadcast(tree)  (§IV-A / §IV-C)
    L_k  = Transactions.flatMap(t => tree.subset(t))
                       .map(c => (c, 1))
                       .reduceByKey(_ + _)
                       .filter(count >= minsup)

The transaction RDD is loaded once and cached (§IV-B); every iteration
re-scans it from cluster memory.  Three of the paper's design choices are
independently switchable for the ablation benchmarks: ``use_hash_tree``
(A3), ``use_broadcast`` (A1) and ``cache_transactions`` (A2).

On top of the paper's structure sits the **counting fast path** — three
further independent knobs, all default-on:

``use_dict_encoding``
    After Phase I the transactions are re-encoded over a broadcast
    item -> dense-int dictionary ordered by descending support
    (:class:`~repro.common.encoding.ItemDictionary`), dropping
    infrequent items.  Every later pass hashes small ints.
``use_in_tree_counting``
    Phase I becomes one shuffle-free ``run_job`` whose per-partition
    counters merge on the driver; Phase II replaces
    ``flat_map(subset).map((cand, 1))`` with a ``map_partitions`` kernel
    that aggregates during the hash-tree walk and ships one
    ``(candidate_index, partial_count)`` int-keyed record per distinct
    candidate per partition (:mod:`repro.core.counting`).
``use_compaction``
    Identical encoded transactions dedupe into ``(txn, multiplicity)``
    once after encoding; between passes the working RDD drops
    transactions shorter than k+1 and projects out items in no frequent
    k-itemset, re-caching the shrunk RDD and unpersisting the old one.
    Every shrink is measured as a
    :class:`~repro.core.results.CompactionStats` on the pass it follows.

The candidate structure itself is pluggable: ``candidate_store``
selects any :mod:`repro.core.candidatestore` registration (hash tree by
default; ``bitmap`` swaps the per-transaction walk for the vertical
tid-bitmap kernel) — every store yields identical itemsets by the
at-most-once counting contract.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.common.encoding import ItemDictionary
from repro.common.errors import MiningError
from repro.common.itemset import canonical_transaction, min_support_count
from repro.common.sizeof import estimate_size
from repro.core.candidates import apriori_gen
from repro.core.candidatestore import LinearStore, get_store, make_store
from repro.core.counting import (
    CandidateCounter,
    CandidateEmitter,
    PartitionSummarizer,
    Phase1PartitionCounter,
    TransactionCompactor,
    TransactionEncoder,
    merge_counters,
)
from repro.core.results import (
    CompactionStats,
    IterationStats,
    MiningRunResult,
    engine_iteration_stats,
)
from repro.engine.context import Context
from repro.engine.rdd import RDD
from repro.engine.tracing import collect_engine_metrics


def load_transactions_rdd(ctx: Context, dfs, path: str, sep: str | None = None) -> RDD:
    """Paper Phase I entry: text file -> RDD of canonical transactions."""
    return ctx.text_file(dfs, path).map(
        lambda line: canonical_transaction(line.split(sep))
    ).filter(lambda t: len(t) > 0)


class Yafim:
    """Configured YAFIM miner bound to an engine :class:`Context`.

    Parameters
    ----------
    ctx:
        Engine context (any backend).
    num_partitions:
        Partitions for the transaction RDD and shuffles (default: the
        context's parallelism).
    use_hash_tree:
        Store candidates in a hash tree (paper behaviour).  ``False``
        degrades to a flat candidate list scan (ablation A3).  Only
        consulted when ``candidate_store`` is unset.
    candidate_store:
        Name of a registered :mod:`repro.core.candidatestore` store
        (``hashtree``/``trie``/``flatdict``/``bitmap``/``linear``) for
        Phase II counting; overrides ``use_hash_tree`` when given and
        fails fast on unknown names.
    store_options:
        Extra keyword arguments for the store constructor (merged over
        the ``hash_tree_*`` shape knobs for the ``hashtree`` store).
    use_broadcast:
        Ship candidates via a broadcast variable (paper behaviour).
        ``False`` captures them in every task closure (ablation A1).
    cache_transactions:
        Cache the transaction RDD in memory (paper behaviour).  ``False``
        recomputes/re-reads it every iteration (ablation A2); the fast
        path's encoded/compacted RDDs are then never cached either.
    hash_tree_fanout / hash_tree_leaf_size:
        Hash-tree shape knobs.
    use_dict_encoding / use_in_tree_counting / use_compaction:
        Counting fast-path knobs (see module docstring); independent and
        default-on, so every ablation pair still isolates one variable.
    """

    algorithm_name = "yafim"

    def __init__(
        self,
        ctx: Context,
        num_partitions: int | None = None,
        use_hash_tree: bool = True,
        use_broadcast: bool = True,
        cache_transactions: bool = True,
        hash_tree_fanout: int = 64,
        hash_tree_leaf_size: int = 16,
        clear_shuffles_between_iterations: bool = True,
        use_dict_encoding: bool = True,
        use_in_tree_counting: bool = True,
        use_compaction: bool = True,
        candidate_store: str | None = None,
        store_options: dict | None = None,
    ):
        self.ctx = ctx
        self.num_partitions = num_partitions or ctx.default_parallelism
        self.use_hash_tree = use_hash_tree
        self.use_broadcast = use_broadcast
        self.cache_transactions = cache_transactions
        self.hash_tree_fanout = hash_tree_fanout
        self.hash_tree_leaf_size = hash_tree_leaf_size
        self.clear_shuffles = clear_shuffles_between_iterations
        self.use_dict_encoding = use_dict_encoding
        self.use_in_tree_counting = use_in_tree_counting
        self.use_compaction = use_compaction
        if candidate_store is None:
            candidate_store = "hashtree" if use_hash_tree else "linear"
        else:
            get_store(candidate_store)  # fail on the driver, not in a worker
        self.candidate_store = candidate_store
        self.store_options = dict(store_options or {})

    # -- public entry points -------------------------------------------------
    def run(
        self,
        transactions: Iterable[Sequence],
        min_support: float,
        max_length: int | None = None,
    ) -> MiningRunResult:
        """Mine an in-memory collection of transactions."""
        rdd = self.ctx.parallelize(
            [canonical_transaction(t) for t in transactions], self.num_partitions
        )
        return self.run_rdd(rdd, min_support, max_length=max_length)

    def run_text_file(
        self,
        dfs,
        path: str,
        min_support: float,
        sep: str | None = None,
        max_length: int | None = None,
    ) -> MiningRunResult:
        """Mine a transaction file stored in the mini-DFS (paper setup)."""
        return self.run_rdd(
            load_transactions_rdd(self.ctx, dfs, path, sep),
            min_support,
            max_length=max_length,
        )

    # -- the algorithm ---------------------------------------------------------
    def run_rdd(
        self,
        transactions: RDD,
        min_support: float,
        max_length: int | None = None,
    ) -> MiningRunResult:
        if not 0.0 < min_support <= 1.0:
            raise MiningError(f"min_support must be in (0, 1], got {min_support}")
        result = MiningRunResult(
            algorithm=self.algorithm_name, min_support=min_support, n_transactions=0
        )

        if self.cache_transactions:
            transactions = transactions.cache()

        # ---- Phase I: frequent 1-itemsets -------------------------------
        t0 = time.perf_counter()
        mark = self.ctx.event_log.mark()
        ship_mark = self.ctx.executor.shipped_bytes_total()
        n, item_level, threshold = self._phase_one(transactions, min_support)
        level = {(item,): c for item, c in item_level.items()}
        result.n_transactions = n
        result.iterations.append(
            self._iteration_stats(
                k=1,
                seconds=time.perf_counter() - t0,
                n_candidates=-1,  # pass 1 counts raw items, no candidate set
                n_frequent=len(level),
                mark=mark,
                broadcast_bytes=0,
                shipped_bytes=self.ctx.executor.shipped_bytes_total() - ship_mark,
            )
        )
        result.itemsets.update(level)
        if self.clear_shuffles:
            self.ctx.clear_shuffle_outputs()

        # ---- Phase II: iterate k-frequent -> (k+1)-frequent ---------------
        if level and (max_length is None or max_length >= 2):
            self._run_phase_two(
                transactions, level, item_level, threshold, max_length, result
            )
        result.trace = self.ctx.tracer
        result.engine_metrics = collect_engine_metrics(self.ctx)
        self._fold_compaction_metrics(result)
        return result

    def _phase_one(self, transactions: RDD, min_support: float):
        """Count 1-items; returns ``(n_transactions, item -> count, threshold)``."""
        if self.use_in_tree_counting:
            # Fast path: one shuffle-free job returns each partition's
            # (row count, item counter); the driver merges and thresholds.
            parts = self.ctx.run_job(transactions, Phase1PartitionCounter())
            n, counts = merge_counters(parts)
            if n == 0:
                raise MiningError("cannot mine an empty transaction database")
            threshold = min_support_count(min_support, n)
            return n, {i: c for i, c in counts.items() if c >= threshold}, threshold
        n = transactions.count()  # materializes the cache
        if n == 0:
            raise MiningError("cannot mine an empty transaction database")
        threshold = min_support_count(min_support, n)
        item_level = (
            transactions.flat_map(lambda t: t)
            .map(lambda item: (item, 1))
            .reduce_by_key(lambda a, b: a + b, self.num_partitions)
            .filter(lambda kv: kv[1] >= threshold)
            .collect_as_map()
        )
        return n, item_level, threshold

    def _run_phase_two(
        self, transactions, level, item_level, threshold, max_length, result
    ) -> None:
        run_bcs: list = []  # broadcasts that must outlive working-RDD recomputes
        working, weighted, dictionary, last_summary = self._prepare_working(
            transactions, item_level, result, run_bcs
        )
        enc_level = (
            {dictionary.encode_itemset(i): c for i, c in level.items()}
            if dictionary is not None
            else level
        )
        k = 2
        while enc_level and (max_length is None or k <= max_length):
            t0 = time.perf_counter()
            mark = self.ctx.event_log.mark()
            ship_mark = self.ctx.executor.shipped_bytes_total()
            passed = self._level_pass(k, enc_level, working, weighted, threshold)
            if passed is None:
                break
            enc_level, n_candidates, bc, bc_bytes, closure_bytes = passed
            if dictionary is not None:
                result.itemsets.update(
                    {dictionary.decode_itemset(c): n for c, n in enc_level.items()}
                )
            else:
                result.itemsets.update(enc_level)
            result.iterations.append(
                self._iteration_stats(
                    k=k,
                    seconds=time.perf_counter() - t0,
                    n_candidates=n_candidates,
                    n_frequent=len(enc_level),
                    mark=mark,
                    broadcast_bytes=bc_bytes,
                    closure_bytes=closure_bytes,
                    shipped_bytes=self.ctx.executor.shipped_bytes_total() - ship_mark,
                )
            )
            if bc is not None:
                bc.destroy()
            if self.clear_shuffles:
                self.ctx.clear_shuffle_outputs()
            if (
                self.use_compaction
                and enc_level
                and (max_length is None or k + 1 <= max_length)
            ):
                working, last_summary = self._compact_between(
                    working, enc_level, k, last_summary, result, run_bcs
                )
            k += 1
        for bc in run_bcs:
            bc.destroy()

    def _level_pass(self, k, enc_level, working, weighted, threshold):
        """Count one candidate level against the working RDD.

        Returns ``(L_k, n_candidates, bc, bc_bytes, closure_bytes)`` or
        ``None`` when ``apriori_gen`` produced no candidates.  Subclasses
        override this to swap a pass's counting strategy (R-Apriori's
        candidate-free pass 2).
        """
        with self.ctx.tracer.span(f"apriori_gen k={k}", "driver", n_seed=len(enc_level)):
            candidates = apriori_gen(enc_level.keys())
        if not candidates:
            return None
        with self.ctx.tracer.span(
            f"store_build k={k}", "driver",
            n_candidates=len(candidates), store=self.candidate_store,
        ):
            matcher = self._build_matcher(candidates)
        bc = self.ctx.broadcast(matcher) if self.use_broadcast else None
        bc_bytes = bc.size_bytes if bc is not None else 0
        closure_bytes = 0
        if bc is None:
            # Spark's default behaviour ships the closure (candidates
            # included) with EVERY task — charge it per map task so the
            # broadcast ablation can quantify the saving (§IV-C).
            closure_bytes = estimate_size(matcher) * working.num_partitions
        direct = None if bc is not None else matcher
        if self.use_in_tree_counting:
            kernel = CandidateCounter(bc=bc, matcher=direct, weighted=weighted)
            counted = (
                working.map_partitions(kernel)
                .reduce_by_key(lambda a, b: a + b, self.num_partitions)
                .filter(lambda kv: kv[1] >= threshold)
                .collect_as_map()
            )
            new_level = {candidates[i]: c for i, c in counted.items()}
        else:
            kernel = CandidateEmitter(bc=bc, matcher=direct, weighted=weighted)
            new_level = (
                working.map_partitions(kernel)
                .reduce_by_key(lambda a, b: a + b, self.num_partitions)
                .filter(lambda kv: kv[1] >= threshold)
                .collect_as_map()
            )
        return new_level, len(candidates), bc, bc_bytes, closure_bytes

    # -- working-set management ------------------------------------------------
    def _prepare_working(self, transactions, item_level, result, run_bcs):
        """Encode/project/dedupe the transaction RDD after Phase I.

        Returns ``(working_rdd, weighted, dictionary, after_summary)``.
        With both fast-path knobs off this is the identity — the paper's
        raw cached RDD flows straight into Phase II.
        """
        if not (self.use_dict_encoding or self.use_compaction):
            return transactions, False, None, None
        t0 = time.perf_counter()
        dictionary = keep = None
        ship_bc = None
        if self.use_dict_encoding:
            dictionary = ItemDictionary.from_counts(item_level)
            payload = dictionary
        else:
            keep = frozenset(item_level)
            payload = keep
        if self.use_broadcast:
            ship_bc = self.ctx.broadcast(payload)
            run_bcs.append(ship_bc)
        before = self._summarize(transactions, weighted=False)
        kernel = TransactionEncoder(
            dict_bc=ship_bc if dictionary is not None else None,
            dictionary=dictionary if ship_bc is None else None,
            keep_bc=ship_bc if dictionary is None else None,
            keep=keep if ship_bc is None else None,
            dedupe=self.use_compaction,
        )
        working = transactions.map_partitions(kernel)
        if self.cache_transactions:
            working = working.cache()
        after = self._summarize(working, weighted=self.use_compaction)
        stats = CompactionStats(
            kind="encode",
            seconds=time.perf_counter() - t0,
            txns_before=before[0], txns_after=after[0],
            items_before=before[1], items_after=after[1],
            bytes_before=before[2], bytes_after=after[2],
            weight_after=after[3],
            dict_items=len(dictionary) if dictionary is not None else 0,
            dict_broadcast_bytes=ship_bc.size_bytes if ship_bc is not None else 0,
        )
        result.iterations[-1].compaction = stats
        self._record_compaction_span(stats, t0, label="encode k=1")
        if self.cache_transactions:
            transactions.unpersist()  # superseded by the encoded working set
        return working, self.use_compaction, dictionary, after

    def _compact_between(self, working, enc_level, k, last_summary, result, run_bcs):
        """Shrink the weighted working RDD after pass k (fast path only)."""
        t0 = time.perf_counter()
        keep = frozenset(item for itemset in enc_level for item in itemset)
        keep_bc = None
        if self.use_broadcast:
            keep_bc = self.ctx.broadcast(keep)
            run_bcs.append(keep_bc)
        kernel = TransactionCompactor(
            keep_bc=keep_bc, keep=keep if keep_bc is None else None, min_len=k + 1
        )
        shrunk = working.map_partitions(kernel)
        if self.cache_transactions:
            shrunk = shrunk.cache()
        after = self._summarize(shrunk, weighted=True)
        before = last_summary or (0, 0, 0, 0)
        stats = CompactionStats(
            kind="compact",
            seconds=time.perf_counter() - t0,
            txns_before=before[0], txns_after=after[0],
            items_before=before[1], items_after=after[1],
            bytes_before=before[2], bytes_after=after[2],
            weight_after=after[3],
        )
        result.iterations[-1].compaction = stats
        self._record_compaction_span(stats, t0, label=f"compact k={k}")
        if self.cache_transactions:
            working.unpersist()
        return shrunk, after

    def _summarize(self, rdd, weighted: bool):
        """(rows, items, est_bytes, weight) for an RDD; materializes caches."""
        parts = self.ctx.run_job(rdd, PartitionSummarizer(weighted))
        return (
            sum(p[0] for p in parts),
            sum(p[1] for p in parts),
            sum(p[2] for p in parts),
            sum(p[3] for p in parts),
        )

    def _record_compaction_span(self, stats: CompactionStats, t0: float, label: str):
        self.ctx.tracer.add_span(
            label, "compaction", t0, stats.seconds,
            txns_before=stats.txns_before, txns_after=stats.txns_after,
            items_before=stats.items_before, items_after=stats.items_after,
            bytes_before=stats.bytes_before, bytes_after=stats.bytes_after,
        )

    def _fold_compaction_metrics(self, result) -> None:
        metrics = result.engine_metrics
        if metrics is None:
            return
        rounds = [it.compaction for it in result.iterations if it.compaction is not None]
        metrics.compaction_rounds = len(rounds)
        metrics.compaction_txns_dropped = sum(c.txns_dropped for c in rounds)
        metrics.compaction_bytes_saved = sum(c.bytes_saved for c in rounds)

    # -- helpers ---------------------------------------------------------------
    def _build_matcher(self, candidates: list):
        opts = dict(self.store_options)
        if self.candidate_store == "hashtree":
            opts.setdefault("fanout", self.hash_tree_fanout)
            opts.setdefault("max_leaf_size", self.hash_tree_leaf_size)
        return make_store(self.candidate_store, candidates, **opts)

    def _iteration_stats(
        self, k: int, seconds: float, n_candidates: int, n_frequent: int,
        mark: int, broadcast_bytes: int, closure_bytes: int = 0,
        shipped_bytes: int = 0,
    ) -> IterationStats:
        """Fold this iteration's engine tasks into replayable stage records."""
        return engine_iteration_stats(
            self.ctx.event_log.tasks_since(mark),
            k=k,
            seconds=seconds,
            n_candidates=n_candidates,
            n_frequent=n_frequent,
            broadcast_bytes=broadcast_bytes,
            closure_bytes=closure_bytes,
            shipped_bytes=shipped_bytes,
        )


#: Backwards-compatible name for the A3 ablation matcher, which now lives
#: in the store registry as ``candidate_store="linear"``.
_LinearMatcher = LinearStore
