"""Dataset generators: IBM Quest synthetic, UCI-shaped dense sets, medical cases."""

from repro.datasets.ibm_quest import quest_generator, t10i4d100k_like
from repro.datasets.io import (
    append_transactions,
    dataset_from_dfs,
    dataset_to_dfs,
    read_dat,
    write_dat,
)
from repro.datasets.retail import retail_like
from repro.datasets.medical import Condition, default_conditions, medical_cases
from repro.datasets.transactions import (
    PAPER_TABLE_1,
    DatasetStats,
    PaperShape,
    TransactionDataset,
    from_lines,
)
from repro.datasets.uci_like import (
    AttributeSpec,
    chess_like,
    dense_dataset,
    mushroom_like,
    pumsb_star_like,
)

__all__ = [
    "PAPER_TABLE_1",
    "AttributeSpec",
    "Condition",
    "DatasetStats",
    "PaperShape",
    "TransactionDataset",
    "append_transactions",
    "chess_like",
    "default_conditions",
    "dataset_from_dfs",
    "dataset_to_dfs",
    "dense_dataset",
    "from_lines",
    "medical_cases",
    "mushroom_like",
    "pumsb_star_like",
    "quest_generator",
    "read_dat",
    "retail_like",
    "t10i4d100k_like",
    "write_dat",
]
