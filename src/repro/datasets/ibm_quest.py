"""IBM Quest synthetic transaction generator (Agrawal & Srikant, VLDB'94).

The paper's T10I4D100K dataset comes from IBM's (long unavailable) Quest
``gen`` tool; this is a from-scratch reimplementation of the published
algorithm:

1. Draw ``n_patterns`` maximal potentially-frequent itemsets: sizes are
   Poisson(``avg_pattern_size``); a fraction of each pattern's items is
   inherited from the previous pattern (exponential with mean
   ``correlation``), the rest drawn uniformly; each pattern gets an
   exponential weight (normalised to a probability) and a corruption
   level ~ N(``corruption_mean``, ``corruption_sd``) clipped to [0, 1].
2. Each transaction draws its size from Poisson(``avg_transaction_size``)
   and is filled by sampling patterns by weight, dropping trailing items
   while a uniform draw stays below the corruption level, and inserting
   the (possibly corrupted) pattern if it fits — or, half the time, even
   when it overflows (as the original does to avoid size bias).

Naming follows the convention TxIyDz: T = avg transaction size,
I = avg pattern size, D = number of transactions.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DatasetError
from repro.common.rng import make_rng
from repro.datasets.transactions import PAPER_TABLE_1, TransactionDataset


def quest_generator(
    n_transactions: int = 10_000,
    avg_transaction_size: float = 10.0,
    avg_pattern_size: float = 4.0,
    n_patterns: int = 200,
    n_items: int = 870,
    correlation: float = 0.5,
    corruption_mean: float = 0.5,
    corruption_sd: float = 0.1,
    seed: int | None = 0,
    name: str | None = None,
) -> TransactionDataset:
    """Generate a Quest-style sparse market-basket dataset."""
    if n_transactions < 1 or n_patterns < 1 or n_items < 2:
        raise DatasetError("n_transactions, n_patterns >= 1 and n_items >= 2 required")
    if avg_transaction_size <= 0 or avg_pattern_size <= 0:
        raise DatasetError("average sizes must be positive")
    rng = make_rng(seed)

    patterns = _draw_patterns(
        rng, n_patterns, avg_pattern_size, n_items, correlation
    )
    weights = rng.exponential(1.0, size=n_patterns)
    weights /= weights.sum()
    corruption = np.clip(
        rng.normal(corruption_mean, corruption_sd, size=n_patterns), 0.0, 0.97
    )

    transactions: list[tuple] = []
    for _ in range(n_transactions):
        size = max(1, int(rng.poisson(avg_transaction_size)))
        txn: set = set()
        # cap pattern attempts so pathological parameters still terminate
        for _attempt in range(8 * max(1, size)):
            if len(txn) >= size:
                break
            pat_idx = int(rng.choice(n_patterns, p=weights))
            items = list(patterns[pat_idx])
            # corrupt: drop trailing items while uniform < corruption level
            while len(items) > 1 and rng.random() < corruption[pat_idx]:
                items.pop()
            if len(txn) + len(items) <= size or rng.random() < 0.5:
                txn.update(items)
        if not txn:
            txn = {int(rng.integers(0, n_items))}
        transactions.append(tuple(sorted(txn)))

    label = name or (
        f"T{avg_transaction_size:g}I{avg_pattern_size:g}D{n_transactions}"
    )
    return TransactionDataset(
        name=label,
        transactions=transactions,
        params={
            "generator": "ibm_quest",
            "n_transactions": n_transactions,
            "avg_transaction_size": avg_transaction_size,
            "avg_pattern_size": avg_pattern_size,
            "n_patterns": n_patterns,
            "n_items": n_items,
            "correlation": correlation,
            "corruption_mean": corruption_mean,
            "seed": seed,
        },
    )


def _draw_patterns(
    rng: np.random.Generator,
    n_patterns: int,
    avg_pattern_size: float,
    n_items: int,
    correlation: float,
) -> list[tuple]:
    patterns: list[tuple] = []
    previous: list[int] = []
    for _ in range(n_patterns):
        size = max(1, min(n_items, int(rng.poisson(avg_pattern_size))))
        items: set[int] = set()
        if previous:
            # fraction of items inherited from the previous pattern
            frac = min(1.0, rng.exponential(correlation))
            n_inherit = min(len(previous), int(round(frac * size)))
            if n_inherit:
                items.update(
                    int(i) for i in rng.choice(previous, size=n_inherit, replace=False)
                )
        while len(items) < size:
            items.add(int(rng.integers(0, n_items)))
        pattern = tuple(sorted(items))
        patterns.append(pattern)
        previous = list(pattern)
    return patterns


def t10i4d100k_like(
    scale: float = 0.02, seed: int | None = 0
) -> TransactionDataset:
    """The paper's T10I4D100K dataset (Table I: 870 items, 100k txns).

    ``scale`` shrinks the transaction count for laptop-speed benchmarks
    (``scale=1.0`` reproduces the full 100,000 transactions with the same
    item universe and pattern structure).
    """
    if scale <= 0.0:
        raise DatasetError("scale must be > 0")
    n_txn = max(200, int(round(100_000 * scale)))
    ds = quest_generator(
        n_transactions=n_txn,
        avg_transaction_size=10.0,
        avg_pattern_size=4.0,
        n_patterns=max(50, int(round(2000 * scale ** 0.5))),
        n_items=870,
        seed=seed,
        name=f"t10i4d100k(scale={scale:g})",
    )
    ds.paper_shape = PAPER_TABLE_1["t10i4d100k"]
    return ds
