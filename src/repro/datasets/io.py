"""Dataset file I/O — the FIMI ``.dat`` convention plus gzip support.

One transaction per line, items separated by single spaces.  This is the
format of the FIMI repository files the paper mines (and of IBM's
generator output), so datasets round-trip between this library, the
mini-DFS, and external FIM tools.
"""

from __future__ import annotations

import gzip
import os
from collections.abc import Iterable

from repro.common.errors import DatasetError
from repro.datasets.transactions import TransactionDataset, from_lines


def _opener(path: str, mode: str):
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_dat(dataset: TransactionDataset, path: str) -> int:
    """Write a dataset as a ``.dat`` (or ``.dat.gz``) file; returns bytes."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with _opener(path, "w") as f:
        for line in dataset.to_lines():
            f.write(line + "\n")
    return os.path.getsize(path)


def read_dat(path: str, name: str | None = None) -> TransactionDataset:
    """Read a ``.dat`` (or ``.dat.gz``) transaction file."""
    if not os.path.exists(path):
        raise DatasetError(f"no such dataset file: {path}")
    with _opener(path, "r") as f:
        return from_lines(name or os.path.basename(path), f)


def append_transactions(path: str, transactions: Iterable) -> int:
    """Append transactions to an existing ``.dat`` file; returns count.

    Gzip files cannot be appended to (members would need re-compression).
    """
    if path.endswith(".gz"):
        raise DatasetError("cannot append to a gzip dataset")
    n = 0
    with open(path, "a", encoding="utf-8") as f:
        for txn in transactions:
            f.write(" ".join(str(i) for i in sorted(set(txn))) + "\n")
            n += 1
    return n


def dataset_to_dfs(dataset: TransactionDataset, dfs, path: str) -> None:
    """Alias of :meth:`TransactionDataset.write_to_dfs` for symmetry."""
    dataset.write_to_dfs(dfs, path)


def dataset_from_dfs(dfs, path: str, name: str | None = None) -> TransactionDataset:
    """Read a transaction file back out of the mini-DFS."""
    return from_lines(name or path, dfs.read_lines(path))
