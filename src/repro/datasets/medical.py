"""Synthetic medical-case dataset (paper §V-D).

The paper mines a proprietary hospital dataset — "resemblance between
medical case and sales-purchase bill" — at Sup = 3% to find relationships
in medicine.  We emulate the structure that makes that workload
interesting: each patient case is a "transaction" of diagnosis, symptom
and prescription codes, where conditions come with correlated bundles
(a diagnosed condition pulls in its typical symptoms and its standard
co-prescription set), plus comorbidity between conditions.  Correlated
bundles are exactly what produces multi-item frequent sets at a 3%
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import DatasetError
from repro.common.rng import make_rng
from repro.datasets.transactions import TransactionDataset


@dataclass(frozen=True)
class Condition:
    """A disease with its typical symptoms and prescription bundle."""

    name: str
    prevalence: float  # P(condition in a case)
    symptoms: tuple  # symptom item codes
    medicines: tuple  # medicine item codes
    adherence: float = 0.8  # P(each bundle item | condition)
    comorbid_with: tuple = ()  # names of conditions this one drags in
    comorbidity: float = 0.0  # P(comorbid condition | this condition)


def default_conditions(rng: np.random.Generator, n_conditions: int = 12) -> list[Condition]:
    """A synthetic disease panel with overlapping prescriptions."""
    conditions = []
    med_pool = [f"med{m:03d}" for m in range(n_conditions * 6)]
    sym_pool = [f"sym{s:03d}" for s in range(n_conditions * 4)]
    for c in range(n_conditions):
        n_meds = int(rng.integers(3, 6))
        n_syms = int(rng.integers(2, 4))
        meds = tuple(
            med_pool[(c * 5 + j) % len(med_pool)] for j in range(n_meds)
        )
        syms = tuple(
            sym_pool[(c * 3 + j) % len(sym_pool)] for j in range(n_syms)
        )
        prevalence = float(0.04 + 0.16 * rng.random())  # 4%..20%
        # A minority of "protocolised" conditions have tightly adherent
        # bundles (these drive the deep frequent sets at Sup = 3%); the
        # rest are loosely adherent so the lattice stays tractable.
        if c % 3 == 0:
            adherence = float(0.82 + 0.08 * rng.random())
        else:
            adherence = float(0.50 + 0.12 * rng.random())
        comorbid = (f"dx{(c + 1) % n_conditions:02d}",) if c % 4 == 0 else ()
        conditions.append(
            Condition(
                name=f"dx{c:02d}",
                prevalence=prevalence,
                symptoms=syms,
                medicines=meds,
                adherence=adherence,
                comorbid_with=comorbid,
                comorbidity=0.3 if comorbid else 0.0,
            )
        )
    return conditions


def medical_cases(
    n_cases: int = 5_000,
    n_conditions: int = 12,
    noise_meds: int = 40,
    noise_rate: float = 0.8,
    seed: int | None = 0,
) -> TransactionDataset:
    """Generate ``n_cases`` patient cases.

    Each case: every condition occurs with its prevalence (plus
    comorbidity pulls); an occurring condition contributes its diagnosis
    code and a Bernoulli(``adherence``) subset of its symptom/medicine
    bundle; a Poisson(``noise_rate``) number of unrelated medicines is
    added as prescription noise.
    """
    if n_cases < 1:
        raise DatasetError("n_cases must be >= 1")
    rng = make_rng(seed)
    conditions = default_conditions(rng, n_conditions)
    by_name = {c.name: c for c in conditions}
    noise_pool = [f"otc{m:03d}" for m in range(noise_meds)]

    transactions: list[tuple] = []
    for _ in range(n_cases):
        case: set = set()
        active: list[Condition] = [
            c for c in conditions if rng.random() < c.prevalence
        ]
        # comorbidity closure (one hop is enough for the default panel)
        for c in list(active):
            for other_name in c.comorbid_with:
                if rng.random() < c.comorbidity:
                    other = by_name[other_name]
                    if other not in active:
                        active.append(other)
        for c in active:
            case.add(c.name)
            for sym in c.symptoms:
                if rng.random() < c.adherence:
                    case.add(sym)
            for med in c.medicines:
                if rng.random() < c.adherence:
                    case.add(med)
        for _ in range(int(rng.poisson(noise_rate))):
            case.add(noise_pool[int(rng.integers(0, noise_meds))])
        if not case:
            case.add(noise_pool[int(rng.integers(0, noise_meds))])
        transactions.append(tuple(sorted(case)))

    return TransactionDataset(
        name=f"medical({n_cases})",
        transactions=transactions,
        params={
            "generator": "medical",
            "n_cases": n_cases,
            "n_conditions": n_conditions,
            "noise_meds": noise_meds,
            "seed": seed,
            "paper_min_support": 0.03,
        },
    )
