"""Power-law retail basket generator (kosarak/retail-shaped).

The FIMI repository's click-stream and retail datasets (kosarak, retail)
differ from Quest data in item popularity: frequencies follow a steep
power law — a few blockbuster items appear in a large fraction of
baskets while the long tail is nearly unique.  This generator produces
that shape (Zipf-distributed item draws plus a small set of bundle
promotions), rounding out the library's workload families with the
skewed regime where Apriori's candidate explosion is item-popularity-
driven rather than pattern-driven.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import DatasetError
from repro.common.rng import make_rng
from repro.datasets.transactions import TransactionDataset


def retail_like(
    n_transactions: int = 5_000,
    n_items: int = 2_000,
    zipf_exponent: float = 1.4,
    avg_basket: float = 8.0,
    n_bundles: int = 25,
    bundle_rate: float = 0.15,
    seed: int | None = 0,
) -> TransactionDataset:
    """Generate power-law retail baskets.

    Parameters
    ----------
    n_transactions, n_items:
        Database shape.
    zipf_exponent:
        Popularity skew (>1); larger = steeper head.
    avg_basket:
        Poisson mean basket size.
    n_bundles, bundle_rate:
        Promotional bundles: ``n_bundles`` fixed 2-4 item sets; each
        basket includes one with probability ``bundle_rate`` (the
        correlated structure rule mining is after).
    """
    if n_transactions < 1 or n_items < 10:
        raise DatasetError("need n_transactions >= 1 and n_items >= 10")
    if zipf_exponent <= 1.0:
        raise DatasetError("zipf_exponent must be > 1")
    if not 0.0 <= bundle_rate <= 1.0:
        raise DatasetError("bundle_rate must be in [0, 1]")
    rng = make_rng(seed)

    # Zipf over a *bounded* item universe: normalised rank weights.
    ranks = np.arange(1, n_items + 1, dtype=float)
    weights = ranks ** (-zipf_exponent)
    weights /= weights.sum()

    bundles = [
        tuple(
            int(i)
            for i in rng.choice(n_items, size=int(rng.integers(2, 5)), replace=False)
        )
        for _ in range(n_bundles)
    ]

    sizes = np.maximum(1, rng.poisson(avg_basket, size=n_transactions))
    transactions: list[tuple] = []
    for size in sizes:
        basket = set(
            int(i) for i in rng.choice(n_items, size=int(size), replace=True, p=weights)
        )
        if bundles and rng.random() < bundle_rate:
            basket.update(bundles[int(rng.integers(0, len(bundles)))])
        transactions.append(tuple(sorted(basket)))

    return TransactionDataset(
        name=f"retail({n_transactions}x{n_items})",
        transactions=transactions,
        params={
            "generator": "retail_powerlaw",
            "n_transactions": n_transactions,
            "n_items": n_items,
            "zipf_exponent": zipf_exponent,
            "avg_basket": avg_basket,
            "n_bundles": n_bundles,
            "bundle_rate": bundle_rate,
            "seed": seed,
        },
    )
