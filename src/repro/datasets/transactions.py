"""Transaction dataset container and statistics.

Every generator returns a :class:`TransactionDataset`; the container
carries the generated transactions, the generator's parameters, and the
paper-reported shape of the dataset it emulates (Table I), so the Table I
benchmark can print generated-vs-paper columns side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import DatasetError
from repro.common.itemset import Itemset, canonical_transaction


@dataclass(frozen=True)
class PaperShape:
    """The row of Table I this dataset emulates."""

    name: str
    n_items: int
    n_transactions: int
    min_support: float  # the support the paper mined it at


#: Table I of the paper, verbatim.
PAPER_TABLE_1: dict[str, PaperShape] = {
    "mushroom": PaperShape("MushRoom", 119, 8_124, 0.35),
    "t10i4d100k": PaperShape("T10I4D100K", 870, 100_000, 0.0025),
    "chess": PaperShape("Chess", 75, 3_196, 0.85),
    "pumsb_star": PaperShape("Pumsb_star", 2_088, 49_046, 0.65),
}


@dataclass
class DatasetStats:
    n_transactions: int
    n_distinct_items: int
    avg_transaction_length: float
    max_transaction_length: int

    def __str__(self) -> str:
        return (
            f"{self.n_transactions} txns, {self.n_distinct_items} items, "
            f"avg len {self.avg_transaction_length:.1f}"
        )


@dataclass
class TransactionDataset:
    """A generated transactional database."""

    name: str
    transactions: list[Itemset]
    params: dict = field(default_factory=dict)
    paper_shape: PaperShape | None = None

    def __post_init__(self) -> None:
        if not self.transactions:
            raise DatasetError(f"dataset {self.name!r} has no transactions")

    @property
    def n_transactions(self) -> int:
        return len(self.transactions)

    def stats(self) -> DatasetStats:
        lengths = [len(t) for t in self.transactions]
        distinct = {i for t in self.transactions for i in t}
        return DatasetStats(
            n_transactions=len(self.transactions),
            n_distinct_items=len(distinct),
            avg_transaction_length=sum(lengths) / len(lengths),
            max_transaction_length=max(lengths),
        )

    # -- serialization ------------------------------------------------------
    def to_lines(self) -> list[str]:
        """Space-separated item lines — the FIMI ``.dat`` convention."""
        return [" ".join(str(i) for i in t) for t in self.transactions]

    def write_to_dfs(self, dfs, path: str) -> None:
        dfs.write_lines(path, self.to_lines())

    # -- manipulation ---------------------------------------------------------
    def replicated(self, times: int) -> "TransactionDataset":
        """Paper Fig. 4 sizeup: the dataset repeated ``times`` times.

        Replication multiplies every support count by ``times`` while
        keeping relative supports identical, so the frequent-itemset family
        is unchanged — only the data volume grows.
        """
        if times < 1:
            raise DatasetError("replication factor must be >= 1")
        return TransactionDataset(
            name=f"{self.name}x{times}",
            transactions=self.transactions * times,
            params={**self.params, "replicated": times},
            paper_shape=self.paper_shape,
        )

    def subset(self, n: int) -> "TransactionDataset":
        """First ``n`` transactions (for quick tests)."""
        if not 1 <= n <= len(self.transactions):
            raise DatasetError(f"subset size {n} out of range")
        return TransactionDataset(
            name=f"{self.name}[:{n}]",
            transactions=self.transactions[:n],
            params=dict(self.params),
            paper_shape=self.paper_shape,
        )


def from_lines(name: str, lines, sep: str | None = None) -> TransactionDataset:
    """Parse a FIMI-style ``.dat`` line iterable into a dataset."""
    txns = [canonical_transaction(line.split(sep)) for line in lines if line.strip()]
    if not txns:
        raise DatasetError(f"no transactions parsed for {name!r}")
    return TransactionDataset(name=name, transactions=txns)
