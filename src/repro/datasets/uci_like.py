"""UCI-shaped dense dataset generators (MushRoom, Chess, Pumsb_star).

The UCI/FIMI files the paper mines are attribute-value datasets: every
transaction holds exactly one item per attribute, items are the distinct
attribute=value codes, and a handful of near-constant attributes make the
frequent-itemset lattice deep at high support thresholds.  Without
network access to the originals we generate datasets with the same
*shape*:

* the Table I row is matched exactly at ``scale=1.0`` (item universe,
  transaction count, items-per-transaction),
* a block of ``n_core`` near-constant attributes whose dominant values
  have probability ``core_prob`` controls lattice depth at the paper's
  support threshold: the j most common core values stay frequent while
  ``core_prob ** j >= min_support``, giving the multi-pass level-wise
  runs the per-iteration figures need,
* remaining attributes get skewed categorical distributions so L1 and L2
  have realistic mass.

Depth calibration per dataset (threshold from Table I):

=============  =========  ==========  ======================  ======
dataset        min sup    core_prob   expected depth ~        cores
=============  =========  ==========  ======================  ======
mushroom       35%        0.87        ln(.35)/ln(.87) ~ 7.5   10
chess          85%        0.98        ln(.85)/ln(.98) ~ 8.0   10
pumsb_star     65%        0.93        ln(.65)/ln(.93) ~ 5.9   9
=============  =========  ==========  ======================  ======
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import DatasetError
from repro.common.rng import make_rng
from repro.datasets.transactions import PAPER_TABLE_1, TransactionDataset


@dataclass(frozen=True)
class AttributeSpec:
    """One categorical attribute: value count and dominant-value mass."""

    n_values: int
    dominant_prob: float

    def probabilities(self) -> np.ndarray:
        if self.n_values == 1:
            return np.ones(1)
        rest = (1.0 - self.dominant_prob) / (self.n_values - 1)
        p = np.full(self.n_values, rest)
        p[0] = self.dominant_prob
        return p


def dense_dataset(
    name: str,
    n_transactions: int,
    n_core: int,
    core_prob: float,
    attributes: list[AttributeSpec],
    seed: int | None = 0,
) -> TransactionDataset:
    """Generate an attribute-value dataset with a controlled deep core.

    Items ``0 .. n_core-1`` are the near-constant core values (each
    present independently with probability ``core_prob``); each attribute
    contributes exactly one item per transaction from its own id range.
    """
    if n_transactions < 1:
        raise DatasetError("n_transactions must be >= 1")
    if not 0.0 < core_prob < 1.0:
        raise DatasetError("core_prob must be in (0, 1)")
    rng = make_rng(seed)

    columns: list[np.ndarray] = []
    # near-constant core block (drives lattice depth)
    core_mask = rng.random((n_transactions, n_core)) < core_prob
    next_id = n_core
    for spec in attributes:
        values = rng.choice(spec.n_values, size=n_transactions, p=spec.probabilities())
        columns.append(values + next_id)
        next_id += spec.n_values

    attr_matrix = np.column_stack(columns) if columns else np.empty((n_transactions, 0), int)
    transactions: list[tuple] = []
    for row in range(n_transactions):
        items = set(attr_matrix[row].tolist())
        items.update(np.nonzero(core_mask[row])[0].tolist())
        if not items:
            items = {0}
        transactions.append(tuple(sorted(items)))

    return TransactionDataset(
        name=name,
        transactions=transactions,
        params={
            "generator": "dense",
            "n_transactions": n_transactions,
            "n_core": n_core,
            "core_prob": core_prob,
            "n_attributes": len(attributes),
            "n_items": next_id,
            "seed": seed,
        },
    )


def _scaled(n: int, scale: float) -> int:
    # scale > 1 is allowed: the generators draw rows i.i.d., so a larger
    # scale yields a bigger same-distribution dataset, not replication
    if scale <= 0.0:
        raise DatasetError("scale must be > 0")
    return max(200, int(round(n * scale)))


def _attr_specs(rng: np.random.Generator, n_attrs: int, n_values_total: int,
                dominant_lo: float, dominant_hi: float) -> list[AttributeSpec]:
    """Split ``n_values_total`` values across ``n_attrs`` attributes."""
    base = n_values_total // n_attrs
    counts = [base] * n_attrs
    for i in range(n_values_total - base * n_attrs):
        counts[i % n_attrs] += 1
    return [
        AttributeSpec(
            n_values=max(1, c),
            dominant_prob=float(rng.uniform(dominant_lo, dominant_hi)),
        )
        for c in counts
    ]


def mushroom_like(scale: float = 0.12, seed: int | None = 0) -> TransactionDataset:
    """MushRoom analogue (Table I: 119 items, 8,124 txns, mined at 35%).

    Real mushroom rows have 23 attribute values; here 10 core values plus
    13 categorical attributes covering the remaining 109 item codes.
    """
    rng = make_rng(seed)
    ds = dense_dataset(
        name=f"mushroom(scale={scale:g})",
        n_transactions=_scaled(8_124, scale),
        n_core=10,
        core_prob=0.87,
        attributes=_attr_specs(rng, n_attrs=13, n_values_total=109,
                               dominant_lo=0.25, dominant_hi=0.75),
        seed=seed,
    )
    ds.paper_shape = PAPER_TABLE_1["mushroom"]
    return ds


def chess_like(scale: float = 0.25, seed: int | None = 0) -> TransactionDataset:
    """Chess analogue (Table I: 75 items, 3,196 txns, mined at 85%).

    Real chess rows have 37 attribute values; 10 near-constant cores at
    0.98 give the ~8-level runs the paper's Fig. 3(c) shows, and 27
    attributes cover the remaining 65 item codes.
    """
    rng = make_rng(seed)
    ds = dense_dataset(
        name=f"chess(scale={scale:g})",
        n_transactions=_scaled(3_196, scale),
        n_core=10,
        core_prob=0.98,
        attributes=_attr_specs(rng, n_attrs=27, n_values_total=65,
                               dominant_lo=0.3, dominant_hi=0.8),
        seed=seed,
    )
    ds.paper_shape = PAPER_TABLE_1["chess"]
    return ds


def pumsb_star_like(scale: float = 0.03, seed: int | None = 0) -> TransactionDataset:
    """Pumsb_star analogue (Table I: 2,088 items, 49,046 txns, 65%).

    Census rows with ~50 attribute values over a 2,088-code universe; 9
    cores at 0.93 give roughly six levels at 65% support.
    """
    rng = make_rng(seed)
    ds = dense_dataset(
        name=f"pumsb_star(scale={scale:g})",
        n_transactions=_scaled(49_046, scale),
        n_core=9,
        core_prob=0.93,
        attributes=_attr_specs(rng, n_attrs=41, n_values_total=2_079,
                               dominant_lo=0.2, dominant_hi=0.7),
        seed=seed,
    )
    ds.paper_shape = PAPER_TABLE_1["pumsb_star"]
    return ds
