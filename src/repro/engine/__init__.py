"""Mini-Spark: lazy RDDs, lineage, DAG scheduling, shuffle, cache, broadcast.

Public surface::

    from repro.engine import Context, StorageLevel

    with Context(backend="threads", parallelism=4) as ctx:
        counts = (
            ctx.parallelize(words, 8)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
"""

from repro.engine.accumulator import (
    FLOAT_PARAM,
    INT_PARAM,
    LIST_PARAM,
    Accumulator,
    AccumulatorParam,
)
from repro.engine.broadcast import Broadcast, BroadcastManager
from repro.engine.context import Context
from repro.engine.dependencies import (
    Aggregator,
    NarrowDependency,
    OneToOneDependency,
    RangeDependency,
    ShuffleDependency,
)
from repro.engine.faults import FaultInjector, InjectedTaskFailure
from repro.engine.lineage import debug_string, explain, stage_count, to_networkx
from repro.engine.metrics import EventLog, JobSummary, StageSummary, TaskMetrics
from repro.engine.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    compute_range_bounds,
)
from repro.engine.rdd import RDD, ParallelCollectionRDD, ShuffledRDD, TextFileRDD, UnionRDD
from repro.engine.statcounter import StatCounter
from repro.engine.storage import BlockId, BlockManager, StorageLevel
from repro.engine.tracing import (
    EngineMetrics,
    Span,
    Tracer,
    collect_engine_metrics,
    export_chrome_trace,
)

__all__ = [
    "FLOAT_PARAM",
    "INT_PARAM",
    "LIST_PARAM",
    "Accumulator",
    "AccumulatorParam",
    "Aggregator",
    "BlockId",
    "BlockManager",
    "Broadcast",
    "BroadcastManager",
    "Context",
    "EngineMetrics",
    "EventLog",
    "FaultInjector",
    "HashPartitioner",
    "InjectedTaskFailure",
    "JobSummary",
    "NarrowDependency",
    "OneToOneDependency",
    "ParallelCollectionRDD",
    "Partitioner",
    "RDD",
    "RangeDependency",
    "RangePartitioner",
    "ShuffleDependency",
    "ShuffledRDD",
    "Span",
    "StageSummary",
    "StatCounter",
    "StorageLevel",
    "TaskMetrics",
    "TextFileRDD",
    "Tracer",
    "UnionRDD",
    "collect_engine_metrics",
    "compute_range_bounds",
    "debug_string",
    "explain",
    "export_chrome_trace",
    "stage_count",
    "to_networkx",
]
