"""Accumulators — write-only shared variables folded on the driver.

Tasks accumulate into a task-local buffer (so failed attempts do not
double-count); the scheduler merges each *successful* task's deltas into
the driver-side value, matching Spark's at-least-once-per-successful-task
semantics.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Generic, TypeVar

T = TypeVar("T")

_acc_ids = itertools.count()


class AccumulatorParam(Generic[T]):
    """How accumulator values combine."""

    def __init__(self, zero: Callable[[], T], add: Callable[[T, T], T]):
        self.zero = zero
        self.add = add


INT_PARAM = AccumulatorParam(zero=lambda: 0, add=lambda a, b: a + b)
FLOAT_PARAM = AccumulatorParam(zero=lambda: 0.0, add=lambda a, b: a + b)
LIST_PARAM = AccumulatorParam(zero=list, add=lambda a, b: a + b)


class Accumulator(Generic[T]):
    def __init__(self, initial: T, param: AccumulatorParam[T] | None = None):
        self.id = next(_acc_ids)
        self.param = param or INT_PARAM
        self._value = initial
        self._lock = threading.Lock()

    def add(self, delta: T) -> None:
        """Add ``delta``.

        Inside a running task this writes to the task-local buffer; on the
        driver it updates the global value directly.
        """
        from repro.engine.task import current_task_context

        ctx = current_task_context()
        if ctx is not None:
            ctx.accumulate(self, delta)
        else:
            with self._lock:
                self._value = self.param.add(self._value, delta)

    def merge_delta(self, delta: T) -> None:
        """Driver-side merge of a completed task's buffered delta."""
        with self._lock:
            self._value = self.param.add(self._value, delta)

    @property
    def value(self) -> T:
        return self._value

    # -- pickling (process backend): locks stay behind; a worker-side copy
    # only ever contributes through the task-context delta buffer keyed by
    # ``id``, so losing driver state is safe.
    def __getstate__(self):
        return {"id": self.id, "param": self.param, "_value": self._value}

    def __setstate__(self, state):
        self.id = state["id"]
        self.param = state["param"]
        self._value = state["_value"]
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return f"Accumulator(id={self.id}, value={self._value!r})"


class AccumulatorRegistry:
    """Driver-side id -> accumulator map used when merging task results."""

    def __init__(self):
        self._by_id: dict[int, Accumulator] = {}

    def register(self, acc: Accumulator) -> Accumulator:
        self._by_id[acc.id] = acc
        return acc

    def merge_all(self, deltas: dict[int, Any]) -> None:
        for acc_id, delta in deltas.items():
            acc = self._by_id.get(acc_id)
            if acc is not None:
                acc.merge_delta(delta)
