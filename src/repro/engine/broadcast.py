"""Broadcast variables.

The paper (§IV-C) leans on Spark's broadcast abstraction to ship the
candidate hash tree to each worker *once per node per iteration* instead of
once per task.  Here a :class:`Broadcast` wraps a value registered with the
driver-side :class:`BroadcastManager`; executors resolve it through a
per-worker cache, and the manager counts one logical transfer per worker —
the quantity the cluster cost model charges to the network.

Pickling a Broadcast (for the process-pool backend) carries the value with
it; the worker-side cache de-duplicates by broadcast id so repeated tasks on
the same worker do not count as repeated transfers, mirroring Torrent
broadcast's per-executor caching.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import TYPE_CHECKING, Any, Generic, TypeVar

from repro.common.sizeof import estimate_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.tracing import Tracer

T = TypeVar("T")


class Broadcast(Generic[T]):
    """Read-only shared variable; access the payload through ``.value``."""

    def __init__(self, bc_id: int, value: T, manager: "BroadcastManager | None"):
        self.id = bc_id
        self._value = value
        self._manager = manager
        self.size_bytes = estimate_size(value)

    @property
    def value(self) -> T:
        if self._manager is not None:
            self._manager.record_access(self)
        return self._value

    def destroy(self) -> None:
        """Release the value (driver side)."""
        self._value = None  # type: ignore[assignment]
        if self._manager is not None:
            self._manager.unregister(self)

    # -- pickling: the manager stays on the driver -------------------------
    def __getstate__(self):
        return {"id": self.id, "_value": self._value, "size_bytes": self.size_bytes}

    def __setstate__(self, state):
        self.id = state["id"]
        self._value = state["_value"]
        self.size_bytes = state["size_bytes"]
        self._manager = None

    def __repr__(self) -> str:
        return f"Broadcast(id={self.id}, ~{self.size_bytes}B)"


class BroadcastManager:
    """Driver-side registry + transfer accounting.

    ``record_access`` is called on every ``.value`` read with the current
    worker id (from the executing task's context, when any); the first
    access per (broadcast, worker) counts as one network transfer of
    ``size_bytes`` — all later accesses are cache hits.
    """

    def __init__(self, tracer: "Tracer | None" = None):
        self._counter = itertools.count()
        self._live: dict[int, Broadcast] = {}
        self._seen: set[tuple[int, str]] = set()
        self._lock = threading.Lock()
        self.transfers = 0
        self.transfer_bytes = 0
        self.tracer = tracer

    def new_broadcast(self, value: Any) -> Broadcast:
        t0 = time.perf_counter()
        bc = Broadcast(next(self._counter), value, self)
        self._live[bc.id] = bc
        if self.tracer is not None:
            self.tracer.add_span(
                f"broadcast_publish b{bc.id}",
                "broadcast",
                t0,
                time.perf_counter() - t0,
                size_bytes=bc.size_bytes,
            )
        return bc

    def record_access(self, bc: Broadcast) -> None:
        from repro.engine.task import current_worker_id

        worker = current_worker_id()
        with self._lock:
            key = (bc.id, worker)
            if key not in self._seen:
                self._seen.add(key)
                self.transfers += 1
                self.transfer_bytes += bc.size_bytes

    def unregister(self, bc: Broadcast) -> None:
        self._live.pop(bc.id, None)

    def reset(self) -> None:
        """Drop all live broadcasts and zero the transfer counters (used by
        :meth:`~repro.engine.context.Context.renew_run` between served jobs)."""
        with self._lock:
            self._live.clear()
            self._seen.clear()
            self.transfers = 0
            self.transfer_bytes = 0

    @property
    def live_count(self) -> int:
        return len(self._live)
