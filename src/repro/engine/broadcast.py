"""Broadcast variables.

The paper (§IV-C) leans on Spark's broadcast abstraction to ship the
candidate hash tree to each worker *once per node per iteration* instead of
once per task.  Here a :class:`Broadcast` wraps a value registered with the
driver-side :class:`BroadcastManager`; executors resolve it through a
per-worker cache, and the manager counts one logical transfer per worker —
the quantity the cluster cost model charges to the network.

For the process-pool backend a Broadcast is pickled **by reference**:
inside :func:`ship_broadcasts_by_ref` (entered by the executor while
serializing a task batch) ``__getstate__`` emits only the broadcast id
and registers the instance with the active collector; the worker-side
copy resolves the payload through its
:class:`~repro.engine.workerstore.WorkerBlockStore`, so the serialized
value crosses the process boundary at most once per worker — the
in-process analogue of Torrent broadcast.  Outside that context (plain
``pickle.dumps`` by user code) the value is embedded as before.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Generic, TypeVar

from repro.common.sizeof import estimate_size
from repro.engine.workerstore import broadcast_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.tracing import Tracer

T = TypeVar("T")

_ship_local = threading.local()


@contextmanager
def ship_broadcasts_by_ref(collector: dict):
    """While active (per thread), pickling a :class:`Broadcast` ships only
    its id and records ``collector[bc_id] = broadcast`` so the executor
    can push/pull the payload separately."""
    previous = getattr(_ship_local, "collector", None)
    _ship_local.collector = collector
    try:
        yield collector
    finally:
        _ship_local.collector = previous


class Broadcast(Generic[T]):
    """Read-only shared variable; access the payload through ``.value``."""

    def __init__(self, bc_id: int, value: T, manager: "BroadcastManager | None"):
        self.id = bc_id
        self._value = value
        self._manager = manager
        self._by_ref = False
        self._blob: bytes | None = None
        self.size_bytes = estimate_size(value)

    @property
    def value(self) -> T:
        if self._by_ref and self._value is None:
            from repro.engine.workerstore import resolve_block

            self._value = resolve_block(broadcast_key(self.id))
        if self._manager is not None:
            self._manager.record_access(self)
        return self._value

    def shipping_blob(self) -> bytes:
        """The serialized payload (cached; computed once per broadcast)."""
        if self._blob is None:
            import cloudpickle

            self._blob = cloudpickle.dumps(self._value)
        return self._blob

    def shipping_size_bytes(self) -> int:
        return len(self.shipping_blob())

    def destroy(self) -> None:
        """Release the value (driver side)."""
        self._value = None  # type: ignore[assignment]
        self._blob = None
        if self._manager is not None:
            self._manager.unregister(self)

    # -- pickling: the manager stays on the driver -------------------------
    def __getstate__(self):
        collector = getattr(_ship_local, "collector", None)
        if collector is not None:
            collector[self.id] = self
            return {"id": self.id, "size_bytes": self.size_bytes, "by_ref": True}
        return {"id": self.id, "_value": self._value, "size_bytes": self.size_bytes}

    def __setstate__(self, state):
        self.id = state["id"]
        self._value = state.get("_value")
        self.size_bytes = state["size_bytes"]
        self._by_ref = state.get("by_ref", False)
        self._blob = None
        self._manager = None

    def __repr__(self) -> str:
        return f"Broadcast(id={self.id}, ~{self.size_bytes}B)"


class BroadcastManager:
    """Driver-side registry + transfer accounting.

    ``record_access`` is called on every ``.value`` read with the current
    worker id (from the executing task's context, when any); the first
    access per (broadcast, worker) counts as one network transfer of
    ``size_bytes`` — all later accesses are cache hits.  The process
    backend reports real transfers instead: the executor calls
    :meth:`record_shipment` when a payload physically reaches a worker.
    """

    def __init__(self, tracer: "Tracer | None" = None):
        self._counter = itertools.count()
        self._live: dict[int, Broadcast] = {}
        self._seen: set[tuple[int, str]] = set()
        self._lock = threading.Lock()
        self.transfers = 0
        self.transfer_bytes = 0
        self.tracer = tracer
        #: Called with the Broadcast being destroyed; the Context wires
        #: this to the executor so worker-resident copies are dropped.
        self.on_unregister = None

    def new_broadcast(self, value: Any) -> Broadcast:
        t0 = time.perf_counter()
        bc = Broadcast(next(self._counter), value, self)
        self._live[bc.id] = bc
        if self.tracer is not None:
            self.tracer.add_span(
                f"broadcast_publish b{bc.id}",
                "broadcast",
                t0,
                time.perf_counter() - t0,
                size_bytes=bc.size_bytes,
            )
        return bc

    def record_access(self, bc: Broadcast) -> None:
        from repro.engine.task import current_worker_id

        worker = current_worker_id()
        with self._lock:
            key = (bc.id, worker)
            if key not in self._seen:
                self._seen.add(key)
                self.transfers += 1
                self.transfer_bytes += bc.size_bytes

    def record_shipment(self, bc_id: int, worker_id: str, nbytes: int) -> None:
        """A broadcast payload physically crossed to ``worker_id`` (process
        backend); counts once per (broadcast, worker) like an access."""
        with self._lock:
            key = (bc_id, worker_id)
            if key not in self._seen:
                self._seen.add(key)
                self.transfers += 1
                self.transfer_bytes += nbytes

    def unregister(self, bc: Broadcast) -> None:
        self._live.pop(bc.id, None)
        if self.on_unregister is not None:
            self.on_unregister(bc)

    def reset(self) -> None:
        """Drop all live broadcasts and zero the transfer counters (used by
        :meth:`~repro.engine.context.Context.renew_run` between served jobs)."""
        with self._lock:
            live = list(self._live.values())
            self._live.clear()
            self._seen.clear()
            self.transfers = 0
            self.transfer_bytes = 0
        if self.on_unregister is not None:
            for bc in live:
                self.on_unregister(bc)

    @property
    def live_count(self) -> int:
        return len(self._live)
