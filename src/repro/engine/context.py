"""Context — the engine's entry point (Spark's ``SparkContext``).

Owns every driver-side service: block manager, shuffle manager, broadcast
manager, accumulator registry, event log, fault injector, executor and DAG
scheduler.  Create one per application::

    with Context(backend="threads", parallelism=4) as ctx:
        rdd = ctx.parallelize(range(100), 4).map(lambda x: x * x)
        print(rdd.sum())
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

from repro.engine.accumulator import (
    FLOAT_PARAM,
    INT_PARAM,
    Accumulator,
    AccumulatorParam,
    AccumulatorRegistry,
)
from repro.engine.broadcast import Broadcast, BroadcastManager
from repro.engine.dag import DAGScheduler
from repro.engine.executors import make_executor
from repro.engine.faults import FaultInjector
from repro.engine.metrics import EventLog
from repro.engine.rdd import RDD, ParallelCollectionRDD, TextFileRDD
from repro.engine.shuffle import ShuffleManager
from repro.engine.storage import BlockManager, StorageLevel
from repro.engine.tracing import Tracer


class Context:
    """Driver context.

    Parameters
    ----------
    backend:
        ``"serial"`` (deterministic, used by benchmarks), ``"threads"``
        (default; concurrent I/O) or ``"processes"`` (true CPU parallelism
        via cloudpickled tasks).
    parallelism:
        Worker count for the chosen backend.
    memory_limit_bytes:
        Block-manager budget; ``None`` = unbounded.
    max_task_failures:
        Retry budget per task before the job is failed.
    worker_store_bytes:
        Byte budget for each process-pool worker's resident block cache
        (broadcast payloads, cached partitions, shuffle segments);
        ignored by the in-driver backends.  ``None`` = the default
        budget in :mod:`repro.engine.workerstore`.
    """

    def __init__(
        self,
        backend: str = "threads",
        parallelism: int | None = None,
        memory_limit_bytes: int | None = None,
        max_task_failures: int = 4,
        tracing: bool = True,
        worker_store_bytes: int | None = None,
    ):
        self.executor = make_executor(backend, parallelism, worker_store_bytes)
        self.backend = backend
        self.tracer = Tracer(enabled=tracing, label="engine")
        self.block_manager = BlockManager(memory_limit_bytes, tracer=self.tracer)
        self.shuffle_manager = ShuffleManager(tracer=self.tracer)
        self.broadcast_manager = BroadcastManager(tracer=self.tracer)
        # Process-backend wiring: destroyed broadcasts, released shuffle
        # outputs and removed cached partitions are all dropped from the
        # executor's driver registry and the worker caches (iterative
        # miners call clear_shuffle_outputs between passes precisely to
        # bound driver memory — without these hooks the executor would
        # accumulate every iteration's payloads twice, object + blob);
        # physical payload shipments feed the broadcast manager's
        # per-worker transfer accounting.
        self.broadcast_manager.on_unregister = (
            lambda bc: self.executor.invalidate_block(("bc", bc.id))
        )
        self.shuffle_manager.on_remove = lambda shuffle_id: self.executor.invalidate_prefix(
            ("shuf",) if shuffle_id is None else ("shuf", shuffle_id)
        )
        self.block_manager.on_remove = self.executor.invalidate_prefix
        self.executor.broadcast_ship_hook = self.broadcast_manager.record_shipment
        self.accumulators = AccumulatorRegistry()
        self.event_log = EventLog()
        self.fault_injector = FaultInjector()
        self.scheduler = DAGScheduler(self, max_task_failures=max_task_failures)
        self.default_parallelism = max(2, self.executor.parallelism)
        self._rdd_ids = itertools.count()
        self._rdd_levels: dict[int, Any] = {}
        self._stopped = False

    # -- RDD creation -------------------------------------------------------
    def parallelize(self, data: Iterable, num_slices: int | None = None) -> RDD:
        """Distribute a driver-side collection into an RDD."""
        self._check_alive()
        slices = self.default_parallelism if num_slices is None else num_slices
        return ParallelCollectionRDD(self, data, slices)

    def text_file(self, dfs, path: str) -> RDD:
        """Lines of a mini-DFS file; one partition per block-aligned split."""
        self._check_alive()
        return TextFileRDD(self, dfs, path)

    def empty_rdd(self) -> RDD:
        return ParallelCollectionRDD(self, [], 1)

    # -- shared variables -----------------------------------------------------
    def broadcast(self, value: Any) -> Broadcast:
        """Ship ``value`` to every worker once (§IV-C of the paper)."""
        self._check_alive()
        return self.broadcast_manager.new_broadcast(value)

    def accumulator(self, initial: Any = 0, param: AccumulatorParam | None = None) -> Accumulator:
        self._check_alive()
        if param is None:
            param = FLOAT_PARAM if isinstance(initial, float) else INT_PARAM
        return self.accumulators.register(Accumulator(initial, param))

    # -- execution ---------------------------------------------------------
    def run_job(self, rdd: RDD, func, partitions: list[int] | None = None) -> list:
        """Run ``func(task_ctx, iterator)`` over the given partitions."""
        self._check_alive()
        # Remember storage levels so worker-computed cache-backs can be
        # stored at the right level even though the worker-side RDD object
        # is a pickled copy.
        self._snapshot_levels(rdd)
        return self.scheduler.run_job(rdd, func, partitions)

    def _snapshot_levels(self, rdd: RDD, seen: set[int] | None = None) -> None:
        seen = seen if seen is not None else set()
        if rdd.id in seen:
            return
        seen.add(rdd.id)
        if rdd.storage_level is not None:
            self._rdd_levels[rdd.id] = rdd.storage_level
        for dep in rdd.dependencies:
            self._snapshot_levels(dep.rdd, seen)

    def _storage_level_of(self, rdd_id: int) -> StorageLevel | None:
        return self._rdd_levels.get(rdd_id)

    # -- housekeeping ------------------------------------------------------
    def renew_run(self, label: str | None = None) -> None:
        """Reset per-run observability state so this context can host a new,
        independently measured run (the serving layer reuses one warm context
        across jobs to amortize executor-pool startup, exactly as an inference
        server amortizes model load).

        Keeps the expensive parts — the executor pool and its workers — and
        discards everything a fresh :class:`Context` would start without:
        retained shuffle outputs, cached RDD blocks, the event log, the
        tracer, per-run metric counters, fault-injection rules and
        cached-level snapshots.

        Cached blocks must be dropped here: RDD ids never repeat, so blocks
        cached by a previous run are unreachable from the new run's lineage
        and would otherwise accumulate until the context stops — one
        dataset's worth of memory leaked per served job.
        """
        self._check_alive()
        self.clear_shuffle_outputs()
        self.block_manager.clear()
        self.tracer = Tracer(enabled=self.tracer.enabled, label=label or self.tracer.label)
        for manager in (self.block_manager, self.shuffle_manager, self.broadcast_manager):
            manager.tracer = self.tracer
        self.event_log = EventLog()
        self.fault_injector.clear()
        self._rdd_levels.clear()
        from repro.engine.shuffle import ShuffleMetrics
        from repro.engine.storage import StorageMetrics

        self.block_manager.metrics = StorageMetrics()
        self.shuffle_manager.metrics = ShuffleMetrics()
        self.broadcast_manager.reset()
        self.executor.reset_shipping()

    def clear_shuffle_outputs(self) -> None:
        """Drop all retained map outputs (iterative jobs call this between
        iterations to bound driver memory)."""
        self.shuffle_manager.clear()
        self.scheduler.reset_shuffle_state()

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.executor.shutdown()
        self.block_manager.close()
        self.shuffle_manager.clear()

    def _check_alive(self) -> None:
        if self._stopped:
            raise RuntimeError("Context is stopped")

    def _next_rdd_id(self) -> int:
        return next(self._rdd_ids)

    def __enter__(self) -> "Context":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
