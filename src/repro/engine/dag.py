"""DAG scheduler: lineage -> stages -> tasks -> results.

The algorithm is Spark's: walk the action RDD's lineage, cut it at every
:class:`ShuffleDependency` into :class:`ShuffleMapStage`s, run parents
before children, and finish with a :class:`ResultStage` that applies the
action function to each requested partition.  Shuffle stages whose map
outputs are already registered are skipped (map-output reuse across jobs),
which is what lets an iterative algorithm reuse the previous iteration's
work.  Failed task attempts are retried up to ``max_task_failures``.
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import TaskFailedError
from repro.engine.dependencies import ShuffleDependency
from repro.engine.metrics import JobSummary, TaskMetrics
from repro.engine.stage import ResultStage, ShuffleMapStage, Stage, Task, TaskResult
from repro.engine.storage import BlockId

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context
    from repro.engine.rdd import RDD


class DAGScheduler:
    def __init__(self, context: "Context", max_task_failures: int = 4):
        self.context = context
        self.max_task_failures = max_task_failures
        self._stage_ids = itertools.count()
        self._job_ids = itertools.count()
        self._shuffle_stages: dict[int, ShuffleMapStage] = {}
        self._final_results: dict[int, dict[int, Any]] = {}

    # -- public entry point --------------------------------------------------
    def run_job(
        self,
        rdd: "RDD",
        func: Callable,
        partitions: list[int] | None = None,
    ) -> list[Any]:
        job_id = next(self._job_ids)
        t0 = time.perf_counter()
        target = list(range(rdd.num_partitions)) if partitions is None else list(partitions)
        final = ResultStage(
            stage_id=next(self._stage_ids),
            rdd=rdd,
            parents=self._parent_stages(rdd),
            func=func,
            partitions=target,
        )
        with self.context.tracer.span(
            f"job-{job_id}", "job", n_partitions=len(target), rdd=type(rdd).__name__
        ):
            n_stages, n_tasks = self._execute_stage(final, counters=[0, 0])
            results = self._final_results.pop(final.stage_id)
        self.context.event_log.record_job(
            JobSummary(
                job_id=job_id,
                duration_s=time.perf_counter() - t0,
                n_stages=n_stages,
                n_tasks=n_tasks,
            )
        )
        return [results[p] for p in target]

    # -- stage graph ----------------------------------------------------------
    def _parent_stages(self, rdd: "RDD") -> list[Stage]:
        parents: list[Stage] = []
        visited: set[int] = set()

        def visit(r: "RDD") -> None:
            if r.id in visited:
                return
            visited.add(r.id)
            for dep in r.dependencies:
                if isinstance(dep, ShuffleDependency):
                    parents.append(self._shuffle_stage_for(dep))
                else:
                    visit(dep.rdd)

        visit(rdd)
        return parents

    def _shuffle_stage_for(self, dep: ShuffleDependency) -> ShuffleMapStage:
        stage = self._shuffle_stages.get(dep.shuffle_id)
        if stage is None:
            stage = ShuffleMapStage(
                stage_id=next(self._stage_ids),
                rdd=dep.rdd,
                parents=self._parent_stages(dep.rdd),
                shuffle_dep=dep,
            )
            self._shuffle_stages[dep.shuffle_id] = stage
        return stage

    def reset_shuffle_state(self) -> None:
        """Forget completed shuffle stages so later jobs rebuild (and
        re-run) them.  Pair with ``ShuffleManager.clear()`` — iterative
        drivers call both between iterations via
        :meth:`Context.clear_shuffle_outputs`."""
        self._shuffle_stages.clear()

    # -- execution --------------------------------------------------------------
    def _execute_stage(self, stage: Stage, counters: list[int]) -> tuple[int, int]:
        """Run ``stage`` (parents first). Returns (stages_run, tasks_run)."""
        if (
            isinstance(stage, ShuffleMapStage)
            and self.context.shuffle_manager.is_complete(stage.shuffle_dep.shuffle_id)
        ):
            return tuple(counters)  # map outputs already materialized
        for parent in stage.parents:
            self._execute_stage(parent, counters)

        with self.context.tracer.span(
            f"stage-{stage.stage_id}", "stage", kind=stage.kind
        ):
            ship_mark = self.context.executor.shipped_bytes_total()
            tasks = self._make_tasks(stage)
            results = self._run_with_retries(stage, tasks)
            shipped = self.context.executor.shipped_bytes_total() - ship_mark
            if shipped:
                self.context.tracer.instant(
                    f"stage_ship s{stage.stage_id}", "ship", bytes=shipped
                )

            if isinstance(stage, ShuffleMapStage):
                dep = stage.shuffle_dep
                self.context.shuffle_manager.register_shuffle(
                    dep.shuffle_id, len(stage.rdd.partitions())
                )
                for res in results.values():
                    written = self.context.shuffle_manager.put_map_output(
                        dep.shuffle_id, res.task.partition.index, res.value
                    )
                    res.metrics.shuffle_write_bytes = written
            else:
                self._final_results[stage.stage_id] = {
                    p: res.value for p, res in results.items()
                }
            for res in results.values():
                self._finish_task(res)
        self.context.event_log.summarize_stage(
            stage.stage_id, stage.kind, shipped_bytes=shipped
        )
        counters[0] += 1
        counters[1] += len(tasks)
        return tuple(counters)

    def _make_tasks(self, stage: Stage) -> list[Task]:
        rdd = stage.rdd
        parts = rdd.partitions()
        if isinstance(stage, ResultStage):
            indices = stage.partitions
            kind = "result"
        else:
            indices = list(range(len(parts)))
            kind = "shuffle_map"
        tasks = []
        for i in indices:
            task = Task(
                stage_id=stage.stage_id,
                kind=kind,
                rdd=rdd,
                partition=parts[i],
                func=stage.func if isinstance(stage, ResultStage) else None,
                shuffle_dep=stage.shuffle_dep if isinstance(stage, ShuffleMapStage) else None,
            )
            if self.context.executor.needs_preload:
                self._resolve_task_inputs(rdd, parts[i].index, task)
            tasks.append(task)
        return tasks

    def _resolve_task_inputs(self, rdd: "RDD", partition_index: int, task: Task) -> None:
        """Turn driver-resident inputs a remote worker cannot reach into
        block *references*: the payload is registered with the executor
        (``offer_block``) under a stable key and only the key rides on the
        task — the executor ships the bytes at most once per worker."""
        from repro.engine.rdd import CoGroupedRDD, ShuffledRDD

        offer = self.context.executor.offer_block
        if rdd.storage_level is not None:
            data = self.context.block_manager.get(BlockId(rdd.id, partition_index))
            if data is not None:
                ref = BlockId(rdd.id, partition_index).ref()
                offer(ref, data)
                task.block_refs.append(ref)
                return  # the cache hit cuts the pipeline here
        if isinstance(rdd, ShuffledRDD):
            key = (rdd.shuffle_dep.shuffle_id, partition_index)
            buckets, _ = self.context.shuffle_manager.fetch(*key)
            ref = ("shuf",) + key
            offer(ref, buckets)
            task.block_refs.append(ref)
            return
        if isinstance(rdd, CoGroupedRDD):
            for dep in rdd.shuffle_deps:
                key = (dep.shuffle_id, partition_index)
                buckets, _ = self.context.shuffle_manager.fetch(*key)
                ref = ("shuf",) + key
                offer(ref, buckets)
                task.block_refs.append(ref)
            return
        for dep in rdd.dependencies:
            for parent_idx in dep.get_parents(partition_index):
                self._resolve_task_inputs(dep.rdd, parent_idx, task)

    def _run_with_retries(self, stage: Stage, tasks: list[Task]) -> dict[int, TaskResult]:
        done: dict[int, TaskResult] = {}
        pending = list(tasks)
        injector = self.context.fault_injector
        while pending:
            run_now: list[Task] = []
            retry_later: list[Task] = []
            for task in pending:
                try:
                    injector.check(task.kind, task.partition.index, task.attempt)
                    run_now.append(task)
                except Exception as exc:  # injected pre-dispatch failure
                    self._note_failure(task, exc)
                    task.attempt += 1
                    if task.attempt >= self.max_task_failures:
                        raise TaskFailedError(task.describe(), task.attempt, exc) from exc
                    retry_later.append(task)
            outcomes = self.context.executor.run_tasks(run_now)
            pending = retry_later
            for task, outcome in outcomes:
                if not isinstance(outcome, BaseException):
                    # post-completion injection: the work ran, the result
                    # is lost anyway (crash at result delivery)
                    try:
                        injector.check(
                            task.kind, task.partition.index, task.attempt, when="after"
                        )
                    except Exception as exc:  # noqa: BLE001
                        outcome = exc
                if isinstance(outcome, BaseException):
                    self._note_failure(task, outcome)
                    task.attempt += 1
                    if task.attempt >= self.max_task_failures:
                        raise TaskFailedError(task.describe(), task.attempt, outcome)
                    pending.append(task)
                else:
                    done[task.partition.index] = outcome
        return done

    def _note_failure(self, task: Task, exc: BaseException) -> None:
        metrics = TaskMetrics(
            stage_id=task.stage_id,
            partition=task.partition.index,
            attempt=task.attempt,
            kind=f"failed_{task.kind}",
        )
        self.context.event_log.record_task(metrics)
        self.context.tracer.instant(
            f"task-failed s{task.stage_id}p{task.partition.index}",
            "task",
            error=type(exc).__name__,
            attempt=task.attempt,
        )

    def _finish_task(self, res: TaskResult) -> None:
        m = res.metrics
        self.context.tracer.add_span(
            f"task s{m.stage_id}p{m.partition}",
            "task",
            m.start_s,
            m.duration_s,
            track=m.worker_id or "driver",
            stage=m.stage_id,
            partition=m.partition,
            attempt=m.attempt,
            kind=m.kind,
            shuffle_read_bytes=m.shuffle_read_bytes,
            shuffle_write_bytes=m.shuffle_write_bytes,
            cache_hits=m.cache_hits,
            cache_misses=m.cache_misses,
        )
        self.context.event_log.record_task(res.metrics)
        self.context.accumulators.merge_all(res.accumulator_deltas)
        for (rdd_id, part), data in res.cache_back.items():
            level = self.context._storage_level_of(rdd_id)
            if level is not None:
                self.context.block_manager.put(BlockId(rdd_id, part), data, level)
