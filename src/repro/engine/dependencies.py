"""RDD dependencies — the edges of the lineage graph.

Narrow dependencies (each child partition depends on a bounded set of
parent partitions) are pipelined inside one task; a shuffle dependency
ends the pipeline and introduces a stage boundary, exactly as in Spark's
DAG scheduler paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.partitioner import Partitioner
    from repro.engine.rdd import RDD

_shuffle_ids = itertools.count()


@dataclass
class Aggregator:
    """combineByKey semantics: how shuffled values merge.

    ``create_combiner(v)`` starts a combiner from the first value of a key,
    ``merge_value(c, v)`` folds another value in, and
    ``merge_combiners(c1, c2)`` merges two partial combiners (used on the
    reduce side and, when ``map_side_combine`` is on, also on the map side).
    """

    create_combiner: Callable[[Any], Any]
    merge_value: Callable[[Any, Any], Any]
    merge_combiners: Callable[[Any, Any], Any]


class Dependency:
    """Base edge type."""

    def __init__(self, rdd: "RDD"):
        self.rdd = rdd  # the parent RDD


class NarrowDependency(Dependency):
    """Child partition i depends on parent partitions ``get_parents(i)``."""

    def get_parents(self, partition_index: int) -> list[int]:
        raise NotImplementedError


class OneToOneDependency(NarrowDependency):
    """map/filter/flatMap-style: child partition i <- parent partition i."""

    def get_parents(self, partition_index: int) -> list[int]:
        return [partition_index]


class RangeDependency(NarrowDependency):
    """union-style: a contiguous range of child partitions maps to the
    parent's partitions shifted by ``out_start``."""

    def __init__(self, rdd: "RDD", in_start: int, out_start: int, length: int):
        super().__init__(rdd)
        self.in_start = in_start
        self.out_start = out_start
        self.length = length

    def get_parents(self, partition_index: int) -> list[int]:
        if self.out_start <= partition_index < self.out_start + self.length:
            return [partition_index - self.out_start + self.in_start]
        return []


class ShuffleDependency(Dependency):
    """Stage boundary: the parent's records are repartitioned by key."""

    def __init__(
        self,
        rdd: "RDD",
        partitioner: "Partitioner",
        aggregator: Aggregator | None = None,
        map_side_combine: bool = False,
    ):
        super().__init__(rdd)
        if map_side_combine and aggregator is None:
            raise ValueError("map_side_combine requires an aggregator")
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.map_side_combine = map_side_combine
        self.shuffle_id = next(_shuffle_ids)
