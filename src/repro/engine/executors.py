"""Executor backends: serial, thread pool, process pool.

The scheduler hands an executor a batch of :class:`~repro.engine.stage.Task`
objects; the executor returns ``(task, result_or_exception)`` pairs.  The
process backend ships tasks with cloudpickle so user lambdas survive the
hop; driver-resident inputs were already resolved into the task by the
scheduler (see ``DAGScheduler._preload_task_inputs``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.stage import Task, TaskResult


class Executor:
    """Backend interface."""

    needs_preload = False  # True when tasks run outside the driver process

    def run_tasks(self, tasks: list["Task"]) -> list[tuple["Task", "TaskResult | BaseException"]]:
        raise NotImplementedError

    def shutdown(self) -> None:
        pass

    @property
    def parallelism(self) -> int:
        return 1


class SerialExecutor(Executor):
    """Runs tasks one by one on the driver thread (deterministic; used by
    the benchmark harness so per-task durations are interference-free)."""

    def run_tasks(self, tasks):
        out = []
        for task in tasks:
            try:
                out.append((task, task.run(worker_id="worker-0")))
            except BaseException as exc:  # noqa: BLE001 - scheduler decides
                out.append((task, exc))
        return out


class ThreadExecutor(Executor):
    """Thread-pool backend: shared memory, concurrent I/O."""

    def __init__(self, n_threads: int):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self._n = n_threads
        self._pool = ThreadPoolExecutor(
            max_workers=n_threads, thread_name_prefix="repro-exec"
        )

    @property
    def parallelism(self) -> int:
        return self._n

    def run_tasks(self, tasks):
        def run_one(indexed):
            slot, task = indexed
            return task.run(worker_id=f"worker-{slot % self._n}")

        futures = [
            (task, self._pool.submit(run_one, (i, task))) for i, task in enumerate(tasks)
        ]
        out = []
        for task, fut in futures:
            try:
                out.append((task, fut.result()))
            except BaseException as exc:  # noqa: BLE001
                out.append((task, exc))
        return out

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


def _run_pickled_task(blob: bytes, worker_id: str) -> bytes:
    """Top-level worker entry point (must be importable by child processes)."""
    import pickle

    import cloudpickle

    task = pickle.loads(blob)
    result = task.run(worker_id=worker_id)
    return cloudpickle.dumps(result)


class ProcessExecutor(Executor):
    """Process-pool backend: true CPU parallelism via cloudpickled tasks."""

    needs_preload = True

    def __init__(self, n_processes: int | None = None):
        self._n = n_processes or max(1, (os.cpu_count() or 2) - 1)
        self._pool = ProcessPoolExecutor(max_workers=self._n)

    @property
    def parallelism(self) -> int:
        return self._n

    def run_tasks(self, tasks):
        import pickle

        import cloudpickle

        futures = []
        for i, task in enumerate(tasks):
            blob = cloudpickle.dumps(task)
            futures.append(
                (task, self._pool.submit(_run_pickled_task, blob, f"worker-{i % self._n}"))
            )
        out = []
        for task, fut in futures:
            try:
                out.append((task, pickle.loads(fut.result())))
            except BaseException as exc:  # noqa: BLE001
                out.append((task, exc))
        return out

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


#: Valid ``backend=`` names, in documentation order.  The CLI derives its
#: ``--backend`` choices from this tuple so typos fail at argument parsing
#: instead of deep inside the engine.
BACKENDS = ("serial", "threads", "processes")


def make_executor(backend: str, parallelism: int | None = None) -> Executor:
    """Factory: ``"serial"``, ``"threads"`` or ``"processes"``."""
    if backend == "serial":
        return SerialExecutor()
    if backend == "threads":
        return ThreadExecutor(parallelism or max(2, (os.cpu_count() or 2)))
    if backend == "processes":
        return ProcessExecutor(parallelism)
    raise ValueError(
        f"unknown executor backend {backend!r}; valid backends: {', '.join(BACKENDS)}"
    )
