"""Executor backends: serial, thread pool, persistent process pool.

The scheduler hands an executor a batch of :class:`~repro.engine.stage.Task`
objects; the executor returns ``(task, result_or_exception)`` pairs.

The process backend keeps **persistent, stateful workers**: a task ships
as a small closure blob plus *references* to named data blocks
(broadcast payloads, cached RDD partitions, shuffle segments), and each
worker resolves the references through its process-local
:class:`~repro.engine.workerstore.WorkerBlockStore` — the driver pushes
blocks a worker lacks piggybacked on the task batch, the worker pulls
anything else (e.g. after an LRU eviction) over its pipe.  Tasks are
batched per worker slot so one cloudpickle round covers the whole batch,
and every shipped byte is accounted in :class:`ShippingMetrics`.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.common.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.stage import Task, TaskResult


@dataclass
class ShippingMetrics:
    """Driver-side accounting of everything the process pool ships.

    ``naive_block_bytes`` models the seed per-task-pickling path (every
    task re-ships every payload it references) so benchmarks can report
    the saving without re-running the old code.
    """

    batches: int = 0
    task_bytes: int = 0  # serialized closure blobs (per-batch, shared graph)
    result_bytes: int = 0
    blocks_pushed: int = 0
    block_bytes_pushed: int = 0
    blocks_pulled: int = 0
    block_bytes_pulled: int = 0
    ref_requests: int = 0  # (batch, ref) demand
    dedup_hits: int = 0  # refs already resident on the target worker
    broadcast_blocks_shipped: int = 0
    broadcast_bytes_shipped: int = 0
    broadcast_unique_blocks: int = 0
    broadcast_payload_bytes: int = 0  # sum of distinct broadcast blob sizes
    naive_block_bytes: int = 0  # modeled per-task embedding volume
    worker_store_evictions: int = 0
    worker_store_hits: int = 0

    @property
    def dedup_hit_rate(self) -> float:
        return self.dedup_hits / self.ref_requests if self.ref_requests else 0.0

    @property
    def total_shipped_bytes(self) -> int:
        return self.task_bytes + self.block_bytes_pushed + self.block_bytes_pulled


class Executor:
    """Backend interface."""

    needs_preload = False  # True when tasks run outside the driver process
    shipping_metrics: ShippingMetrics | None = None
    #: Called as ``hook(bc_id, worker_id, nbytes)`` whenever a broadcast
    #: payload physically reaches a worker (wired by the Context to
    #: ``BroadcastManager.record_shipment``).
    broadcast_ship_hook: Callable[[int, str, int], None] | None = None

    def run_tasks(self, tasks: list["Task"]) -> list[tuple["Task", "TaskResult | BaseException"]]:
        raise NotImplementedError

    def offer_block(self, key: tuple, data: Any) -> None:
        """Driver-side registration of a referenceable payload (no-op for
        backends that share the driver's memory)."""

    def invalidate_block(self, key: tuple) -> None:
        """Forget a payload (destroyed broadcast); workers drop it too."""

    def invalidate_prefix(self, prefix: tuple) -> None:
        """Forget every payload whose key starts with ``prefix`` — e.g.
        ``("shuf", 3)`` when shuffle 3's map outputs are released, or
        ``("rdd",)`` when the block manager is cleared.  Iterative jobs
        rely on this to keep driver and worker memory bounded."""

    def reset_shipping(self) -> None:
        """Zero shipping counters and forget driver-side payloads (used by
        ``Context.renew_run`` between served jobs)."""

    def shipped_bytes_total(self) -> int:
        return 0

    def shutdown(self) -> None:
        pass

    @property
    def parallelism(self) -> int:
        return 1


class SerialExecutor(Executor):
    """Runs tasks one by one on the driver thread (deterministic; used by
    the benchmark harness so per-task durations are interference-free)."""

    def run_tasks(self, tasks):
        out = []
        for task in tasks:
            try:
                out.append((task, task.run(worker_id="worker-0")))
            except BaseException as exc:  # noqa: BLE001 - scheduler decides
                out.append((task, exc))
        return out


class ThreadExecutor(Executor):
    """Thread-pool backend: shared memory, concurrent I/O.

    Worker ids come from the *executing* thread (assigned once per pool
    thread by the initializer), not from the submission index — so
    broadcast-transfer accounting and straggler attribution name the
    worker that really ran the task.
    """

    def __init__(self, n_threads: int):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self._n = n_threads
        self._slot_counter = itertools.count()
        self._slots = threading.local()
        self._pool = ThreadPoolExecutor(
            max_workers=n_threads,
            thread_name_prefix="repro-exec",
            initializer=self._assign_slot,
        )

    def _assign_slot(self) -> None:
        self._slots.worker_id = f"worker-{next(self._slot_counter)}"

    @property
    def parallelism(self) -> int:
        return self._n

    def run_tasks(self, tasks):
        def run_one(task):
            return task.run(worker_id=self._slots.worker_id)

        futures = [(task, self._pool.submit(run_one, task)) for task in tasks]
        out = []
        for task, fut in futures:
            try:
                out.append((task, fut.result()))
            except BaseException as exc:  # noqa: BLE001
                out.append((task, exc))
        return out

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


@dataclass
class _WorkerHandle:
    """Driver-side view of one persistent worker process."""

    slot: int
    proc: Any
    conn: Any
    known: set = field(default_factory=set)  # keys believed resident
    pending_drops: list = field(default_factory=list)

    @property
    def worker_id(self) -> str:
        return f"worker-{self.slot}"


class ProcessExecutor(Executor):
    """Persistent process-pool backend with worker-resident block caches.

    Workers are long-lived (stable ``worker-{slot}`` identities, one pipe
    each); ``run_tasks`` batches tasks round-robin across slots, ships
    each batch as one cloudpickle blob with broadcasts reduced to ids,
    and pushes only the block payloads the target worker does not
    already hold.  Worker-side misses (LRU evictions, restarts) fall
    back to a pull over the pipe.
    """

    needs_preload = True

    def __init__(self, n_processes: int | None = None, worker_store_bytes: int | None = None):
        from repro.engine.workerstore import DEFAULT_STORE_BYTES

        self._n = n_processes or max(1, (os.cpu_count() or 2) - 1)
        self._store_budget = (
            DEFAULT_STORE_BYTES if worker_store_bytes is None else worker_store_bytes
        )
        self._handles: list[_WorkerHandle] | None = None
        self._dispatch: ThreadPoolExecutor | None = None
        self._mpctx = None
        self._lock = threading.Lock()
        self._driver_blocks: dict[tuple, Any] = {}  # key -> payload object
        self._blob_cache: dict[tuple, bytes] = {}  # key -> serialized payload
        self._bc_payloads: dict[tuple, Any] = {}  # ("bc", id) -> Broadcast
        self.shipping_metrics = ShippingMetrics()

    @property
    def parallelism(self) -> int:
        return self._n

    # -- driver-side block registry ---------------------------------------
    def offer_block(self, key: tuple, data: Any) -> None:
        with self._lock:
            if key not in self._driver_blocks:
                self._driver_blocks[key] = data

    def invalidate_block(self, key: tuple) -> None:
        self.invalidate_prefix(key)

    def invalidate_prefix(self, prefix: tuple) -> None:
        n = len(prefix)
        with self._lock:
            for registry in (self._driver_blocks, self._blob_cache, self._bc_payloads):
                for key in [k for k in registry if k[:n] == prefix]:
                    del registry[key]
            if self._handles:
                for handle in self._handles:
                    dropped = [k for k in handle.known if k[:n] == prefix]
                    if dropped:
                        handle.known.difference_update(dropped)
                        handle.pending_drops.extend(dropped)

    def reset_shipping(self) -> None:
        with self._lock:
            self._driver_blocks.clear()
            self._blob_cache.clear()
            self._bc_payloads.clear()
            if self._handles:
                for handle in self._handles:
                    handle.pending_drops.extend(handle.known)
                    handle.known.clear()
            self.shipping_metrics = ShippingMetrics()

    def shipped_bytes_total(self) -> int:
        return self.shipping_metrics.total_shipped_bytes

    def _payload_blob(self, key: tuple) -> bytes | None:
        """Serialized payload for ``key`` (cached; one pickling per key)."""
        import cloudpickle

        with self._lock:
            blob = self._blob_cache.get(key)
            if blob is not None:
                return blob
            bc = self._bc_payloads.get(key)
            obj = self._driver_blocks.get(key)
        if bc is not None:
            blob = bc.shipping_blob()
        elif obj is not None or key in self._driver_blocks:
            blob = cloudpickle.dumps(obj)
        else:
            return None
        with self._lock:
            self._blob_cache[key] = blob
        return blob

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_started(self) -> None:
        if self._handles is not None:
            return
        import multiprocessing as mp

        # Fork is cheap (workers inherit the driver's imports), but forking
        # a multi-threaded process can deadlock the child on locks held by
        # other threads at fork time (and is deprecated on Python 3.12+).
        # Under repro.serve the first batch arrives on a thread of the
        # multi-threaded HTTP server, so fall back to spawn whenever other
        # threads are already alive.
        methods = mp.get_all_start_methods()
        use_fork = "fork" in methods and threading.active_count() == 1
        self._mpctx = mp.get_context("fork" if use_fork else "spawn")
        self._handles = [self._spawn(slot) for slot in range(self._n)]
        self._dispatch = ThreadPoolExecutor(
            max_workers=self._n, thread_name_prefix="repro-ship"
        )

    def _spawn(self, slot: int) -> _WorkerHandle:
        from repro.engine.workerstore import _worker_main

        parent_conn, child_conn = self._mpctx.Pipe()
        proc = self._mpctx.Process(
            target=_worker_main,
            args=(child_conn, slot, self._store_budget),
            daemon=True,
            name=f"repro-worker-{slot}",
        )
        proc.start()
        child_conn.close()
        return _WorkerHandle(slot=slot, proc=proc, conn=parent_conn)

    def _respawn(self, slot: int) -> None:
        handle = self._handles[slot]
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.proc.is_alive():
            handle.proc.terminate()
        handle.proc.join(timeout=5)
        self._handles[slot] = self._spawn(slot)

    # -- execution ---------------------------------------------------------
    def run_tasks(self, tasks):
        if not tasks:
            return []
        self._ensure_started()
        batches: list[list] = [[] for _ in range(self._n)]
        for i, task in enumerate(tasks):
            batches[i % self._n].append(task)
        futures = [
            self._dispatch.submit(self._run_batch, slot, batch)
            for slot, batch in enumerate(batches)
            if batch
        ]
        out = []
        for fut in futures:
            out.extend(fut.result())
        return out

    def _run_batch(self, slot: int, batch: list):
        import pickle

        import cloudpickle

        from repro.engine.broadcast import broadcast_key, ship_broadcasts_by_ref

        handle = self._handles[slot]
        ms = self.shipping_metrics

        # One cloudpickle round per batch: the RDD graph is serialized
        # once (pickle memoization shares it across the batch's tasks)
        # and broadcasts collapse to ids, collected for shipping below.
        collector: dict[int, Any] = {}
        with ship_broadcasts_by_ref(collector):
            batch_blob = cloudpickle.dumps(batch)

        bc_refs = {broadcast_key(bc_id): bc for bc_id, bc in collector.items()}
        with self._lock:
            self._bc_payloads.update(bc_refs)
        ref_demand: dict[tuple, int] = {}  # key -> number of referencing tasks
        for key in bc_refs:
            ref_demand[key] = len(batch)  # the closure is shared batch-wide
        for task in batch:
            for key in task.block_refs:
                ref_demand[key] = ref_demand.get(key, 0) + 1

        push: dict[tuple, bytes] = {}
        for key in sorted(ref_demand):
            blob = self._payload_blob(key)
            if blob is None:
                continue  # resolvable driver-side only; worker will fail loudly
            demand = ref_demand[key]
            with self._lock:
                # Count demand per *task reference*: that is the unit the
                # seed shipped at (one embedded copy per task), so the
                # dedup hit-rate reads as "fraction of references served
                # from a worker-resident copy".
                ms.ref_requests += demand
                ms.naive_block_bytes += len(blob) * demand
                if key in handle.known:
                    ms.dedup_hits += demand
                    continue
                push[key] = blob
                ms.dedup_hits += demand - 1  # one shipment covers the rest
                handle.known.add(key)
                ms.blocks_pushed += 1
                ms.block_bytes_pushed += len(blob)
                if key[0] == "bc":
                    self._record_broadcast_shipment(key, handle, len(blob))
        with self._lock:
            drops, handle.pending_drops = handle.pending_drops, []

        try:
            handle.conn.send(("run", batch_blob, drops, push))
            while True:
                msg = handle.conn.recv()
                if msg[0] == "pull":
                    key = msg[1]
                    blob = self._payload_blob(key)
                    handle.conn.send(("block", key, blob))
                    if blob is not None:
                        with self._lock:
                            handle.known.add(key)
                            ms.blocks_pulled += 1
                            ms.block_bytes_pulled += len(blob)
                            if key[0] == "bc":
                                self._record_broadcast_shipment(key, handle, len(blob))
                    continue
                _tag, results_blob, stored_keys, stats = msg
                break
        except (EOFError, OSError, BrokenPipeError) as exc:
            self._respawn(slot)
            err = EngineError(f"worker-{slot} died mid-batch: {exc!r}")
            return [(task, err) for task in batch]

        with self._lock:
            handle.known.update(stored_keys)
            ms.batches += 1
            ms.task_bytes += len(batch_blob)
            ms.result_bytes += len(results_blob)
            ms.worker_store_evictions += stats.get("evictions", 0)
            ms.worker_store_hits += stats.get("store_hits", 0)

        outcomes = pickle.loads(results_blob)
        if len(outcomes) != len(batch):
            # zip() would silently drop tasks; a worker that miscounts its
            # batch cannot be trusted — restart it and fail the whole batch
            # as retryable so the scheduler re-runs every task.
            self._respawn(slot)
            err = EngineError(
                f"worker-{slot} returned {len(outcomes)} outcomes for a "
                f"batch of {len(batch)} tasks"
            )
            return [(task, err) for task in batch]
        out = []
        for task, (ok, payload) in zip(batch, outcomes):
            if ok:
                payload.task = task  # reattach the driver's Task object
            out.append((task, payload))
        return out

    def _record_broadcast_shipment(self, key: tuple, handle: _WorkerHandle, nbytes: int) -> None:
        """Caller holds ``self._lock``."""
        ms = self.shipping_metrics
        ms.broadcast_blocks_shipped += 1
        ms.broadcast_bytes_shipped += nbytes
        shipped_before = any(
            key in h.known for h in self._handles if h is not handle
        )
        if not shipped_before:
            ms.broadcast_unique_blocks += 1
            ms.broadcast_payload_bytes += nbytes
        if self.broadcast_ship_hook is not None:
            self.broadcast_ship_hook(key[1], handle.worker_id, nbytes)

    def shutdown(self) -> None:
        if self._handles is not None:
            for handle in self._handles:
                try:
                    handle.conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
                try:
                    handle.conn.close()
                except OSError:
                    pass
            for handle in self._handles:
                handle.proc.join(timeout=5)
                if handle.proc.is_alive():
                    handle.proc.terminate()
            self._handles = None
        if self._dispatch is not None:
            self._dispatch.shutdown(wait=True)
            self._dispatch = None


#: Valid ``backend=`` names, in documentation order.  The CLI derives its
#: ``--backend`` choices from this tuple so typos fail at argument parsing
#: instead of deep inside the engine.
BACKENDS = ("serial", "threads", "processes")


def make_executor(
    backend: str,
    parallelism: int | None = None,
    worker_store_bytes: int | None = None,
) -> Executor:
    """Factory: ``"serial"``, ``"threads"`` or ``"processes"``.

    ``worker_store_bytes`` budgets each process-pool worker's resident
    block cache (ignored by the in-driver backends).
    """
    if backend == "serial":
        return SerialExecutor()
    if backend == "threads":
        return ThreadExecutor(parallelism or max(2, (os.cpu_count() or 2)))
    if backend == "processes":
        return ProcessExecutor(parallelism, worker_store_bytes=worker_store_bytes)
    raise ValueError(
        f"unknown executor backend {backend!r}; valid backends: {', '.join(BACKENDS)}"
    )
