"""Fault injection for the engine.

Rules are matched by the scheduler immediately before dispatching a task
attempt; a matching rule makes that attempt fail with
:class:`InjectedTaskFailure`, exercising the retry path.  Cache-block loss
(``drop_cached_block``) exercises lineage recomputation instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import EngineError


class InjectedTaskFailure(EngineError):
    """Synthetic failure raised by the fault injector."""


@dataclass
class FailureRule:
    """Fail attempts of matching tasks while ``times`` budget remains.

    ``stage_kind``/``partition`` of ``None`` match anything.  ``when``
    selects the failure point: ``"before"`` fails the attempt before any
    work happens (a scheduling/launch failure); ``"after"`` lets the task
    run to completion and then discards its result (a crash at result
    delivery — the expensive case, since the work is wasted).
    """

    stage_kind: str | None = None
    partition: int | None = None
    times: int = 1
    when: str = "before"
    fired: int = field(default=0, init=False)

    def matches(self, kind: str, partition: int) -> bool:
        if self.fired >= self.times:
            return False
        if self.stage_kind is not None and self.stage_kind != kind:
            return False
        if self.partition is not None and self.partition != partition:
            return False
        return True


class FaultInjector:
    def __init__(self):
        self.rules: list[FailureRule] = []
        self.injected = 0

    def fail_task(
        self,
        stage_kind: str | None = None,
        partition: int | None = None,
        times: int = 1,
        when: str = "before",
    ) -> FailureRule:
        if when not in ("before", "after"):
            raise ValueError("when must be 'before' or 'after'")
        rule = FailureRule(stage_kind=stage_kind, partition=partition, times=times, when=when)
        self.rules.append(rule)
        return rule

    def check(self, kind: str, partition: int, attempt: int, when: str = "before") -> None:
        """Raise when a rule for the given failure point matches."""
        for rule in self.rules:
            if rule.when == when and rule.matches(kind, partition):
                rule.fired += 1
                self.injected += 1
                raise InjectedTaskFailure(
                    f"injected {when}-failure: {kind} partition {partition} "
                    f"attempt {attempt}"
                )

    def clear(self) -> None:
        self.rules.clear()
