"""Lineage introspection: debug strings and networkx export.

Fault tolerance in the engine is lineage-based (lost cached partitions are
recomputed from ancestors), and these helpers make the lineage inspectable
— both for tests and for the docs' Fig.-1/Fig.-2-style diagrams of the
YAFIM dataflow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import networkx as nx

from repro.engine.dependencies import NarrowDependency, ShuffleDependency

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD


def to_networkx(rdd: "RDD") -> nx.DiGraph:
    """Directed lineage graph: edges point parent -> child."""
    g = nx.DiGraph()

    def visit(node: "RDD") -> None:
        if g.has_node(node.id):
            return
        g.add_node(
            node.id,
            type=type(node).__name__,
            partitions=node.num_partitions,
            cached=node.storage_level is not None,
        )
        for dep in node.dependencies:
            visit(dep.rdd)
            kind = "shuffle" if isinstance(dep, ShuffleDependency) else "narrow"
            g.add_edge(dep.rdd.id, node.id, kind=kind)

    visit(rdd)
    return g


def debug_string(rdd: "RDD") -> str:
    """Spark-style indented lineage dump (children above parents)."""
    lines: list[str] = []

    def visit(node: "RDD", depth: int) -> None:
        marker = " [cached]" if node.storage_level is not None else ""
        lines.append(
            f"{'  ' * depth}({node.num_partitions}) {type(node).__name__}[{node.id}]{marker}"
        )
        for dep in node.dependencies:
            if isinstance(dep, ShuffleDependency):
                lines.append(f"{'  ' * (depth + 1)}+- shuffle {dep.shuffle_id}")
                visit(dep.rdd, depth + 2)
            else:
                assert isinstance(dep, NarrowDependency)
                visit(dep.rdd, depth + 1)

    visit(rdd, 0)
    return "\n".join(lines)


def stage_count(rdd: "RDD") -> int:
    """Number of stages a job on ``rdd`` would run (shuffles + 1)."""
    g = to_networkx(rdd)
    shuffles = sum(1 for _u, _v, d in g.edges(data=True) if d["kind"] == "shuffle")
    return shuffles + 1


def explain(rdd: "RDD") -> str:
    """Execution-plan preview: the stages a job on ``rdd`` would run.

    Walks the lineage exactly like the DAG scheduler does — cutting at
    shuffle dependencies — and prints one block per stage with the RDDs
    pipelined into it, in execution order (parents before children).

    >>> # doctest-style sketch:
    >>> # Stage 0 (shuffle-map, 4 tasks): ParallelCollectionRDD[0] -> ...
    >>> # Stage 1 (result, 2 tasks): ShuffledRDD[2]
    """
    from repro.engine.dependencies import ShuffleDependency

    stages: list[tuple[str, list[str], int]] = []
    seen_shuffles: set[int] = set()

    def pipeline_of(node: "RDD") -> list[str]:
        """RDDs pipelined into the stage ending at ``node`` (post-order)."""
        names: list[str] = []

        def visit(r: "RDD") -> None:
            for dep in r.dependencies:
                if isinstance(dep, ShuffleDependency):
                    schedule_parent(dep)
                else:
                    visit(dep.rdd)
            names.append(f"{type(r).__name__}[{r.id}]")

        visit(node)
        return names

    def schedule_parent(dep) -> None:
        if dep.shuffle_id in seen_shuffles:
            return
        seen_shuffles.add(dep.shuffle_id)
        names = pipeline_of(dep.rdd)
        stages.append(
            (f"shuffle-map (shuffle {dep.shuffle_id})", names, dep.rdd.num_partitions)
        )

    final_names = pipeline_of(rdd)
    stages.append(("result", final_names, rdd.num_partitions))
    lines = []
    for i, (kind, names, n_tasks) in enumerate(stages):
        lines.append(f"Stage {i} [{kind}, {n_tasks} task(s)]:")
        lines.append("  " + " -> ".join(names))
    return "\n".join(lines)
