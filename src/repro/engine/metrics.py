"""Task/stage metrics and the job event log.

Every task records its wall-clock duration and byte counters.  The event
log is the bridge to :mod:`repro.cluster`: scalability experiments replay
these *measured* task records through the cluster cost model instead of
inventing task costs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class TaskMetrics:
    """Counters for one task attempt."""

    stage_id: int = -1
    partition: int = -1
    attempt: int = 0
    kind: str = ""  # "shuffle_map" | "result"
    start_s: float = 0.0  # perf_counter at task start (feeds the tracer)
    duration_s: float = 0.0
    records_in: int = 0
    records_out: int = 0
    #: Records entering the shuffle-map bucket/combine step — the pairs the
    #: upstream pipeline actually allocated; equals records_out when no
    #: map-side combine runs.
    combine_records_in: int = 0
    input_bytes: int = 0  # bytes read from the mini-DFS
    shuffle_read_bytes: int = 0
    shuffle_write_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    worker_id: str = ""


@dataclass
class StageSummary:
    stage_id: int
    kind: str
    n_tasks: int
    total_task_seconds: float
    max_task_seconds: float
    shuffle_read_bytes: int
    shuffle_write_bytes: int
    input_bytes: int
    #: Bytes the executor physically shipped to workers while running this
    #: stage (closure blobs + pushed/pulled blocks); 0 for in-driver backends.
    shipped_bytes: int = 0


@dataclass
class JobSummary:
    job_id: int
    duration_s: float
    n_stages: int
    n_tasks: int


class EventLog:
    """Append-only record of every completed task/stage/job.

    Thread-safe: executor threads append concurrently.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.tasks: list[TaskMetrics] = []
        self.stages: list[StageSummary] = []
        self.jobs: list[JobSummary] = []

    def record_task(self, metrics: TaskMetrics) -> None:
        with self._lock:
            self.tasks.append(metrics)

    def record_stage(self, summary: StageSummary) -> None:
        with self._lock:
            self.stages.append(summary)

    def record_job(self, summary: JobSummary) -> None:
        with self._lock:
            self.jobs.append(summary)

    # -- queries -----------------------------------------------------------
    def tasks_for_stage(self, stage_id: int) -> list[TaskMetrics]:
        return [t for t in self.tasks if t.stage_id == stage_id]

    def tasks_since(self, index: int) -> list[TaskMetrics]:
        """Tasks appended after a previously captured :meth:`mark`."""
        return self.tasks[index:]

    def mark(self) -> int:
        """Current task count; pair with :meth:`tasks_since` to scope a run."""
        return len(self.tasks)

    def total_task_seconds(self) -> float:
        return sum(t.duration_s for t in self.tasks)

    def summarize_stage(self, stage_id: int, kind: str, shipped_bytes: int = 0) -> StageSummary:
        ts = self.tasks_for_stage(stage_id)
        summary = StageSummary(
            stage_id=stage_id,
            kind=kind,
            n_tasks=len(ts),
            total_task_seconds=sum(t.duration_s for t in ts),
            max_task_seconds=max((t.duration_s for t in ts), default=0.0),
            shuffle_read_bytes=sum(t.shuffle_read_bytes for t in ts),
            shuffle_write_bytes=sum(t.shuffle_write_bytes for t in ts),
            input_bytes=sum(t.input_bytes for t in ts),
            shipped_bytes=shipped_bytes,
        )
        self.record_stage(summary)
        return summary
