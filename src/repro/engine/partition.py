"""Partition descriptors.

A partition is the unit of parallelism: every RDD is a list of partitions
and every task computes exactly one of them.  Concrete RDDs attach their
own payload (a slice of driver data, an input split, a reduce-bucket id).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Partition:
    """Base partition: just an index within its RDD."""

    index: int


@dataclass(frozen=True)
class DataPartition(Partition):
    """Partition of a parallelized driver-side collection."""

    data: tuple

    def __repr__(self) -> str:  # keep reprs small; data can be huge
        return f"DataPartition(index={self.index}, n={len(self.data)})"


@dataclass(frozen=True)
class SplitPartition(Partition):
    """Partition backed by a mini-DFS input split."""

    split: Any  # repro.hdfs.textio.InputSplit


@dataclass(frozen=True)
class ReducePartition(Partition):
    """Post-shuffle partition: one reduce bucket of a shuffle."""
