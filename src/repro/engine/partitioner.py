"""Partitioners map record keys to reduce-partition indices.

Partitioning must be *stable across processes* — the driver and a
process-pool worker must agree on where a key lands — so the hash
partitioner uses :func:`repro.common.rng.stable_hash` rather than
Python's per-process-salted ``hash``.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.common.rng import stable_hash


class Partitioner:
    """Base partitioner interface."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:  # pragma: no cover - dict use only
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Deterministic hash partitioning (Spark's default)."""

    def partition(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Range partitioning over sorted ``bounds`` (used by ``sortBy``).

    ``bounds`` holds ``num_partitions - 1`` ascending split points; keys are
    placed by binary search, so output partition *i* holds keys <= the i-th
    bound and the concatenation of sorted partitions is globally sorted.
    """

    def __init__(self, bounds: list, ascending: bool = True):
        super().__init__(len(bounds) + 1)
        self.bounds = list(bounds)
        self.ascending = ascending

    def partition(self, key: Any) -> int:
        idx = bisect.bisect_left(self.bounds, key)
        if not self.ascending:
            idx = self.num_partitions - 1 - idx
        return idx


def compute_range_bounds(sample: list, num_partitions: int) -> list:
    """Choose ``num_partitions - 1`` split points from a key sample.

    Mirrors Spark's ``RangePartitioner.determineBounds``: sort the sample and
    take evenly spaced quantiles, de-duplicating identical neighbours.
    """
    if num_partitions <= 1 or not sample:
        return []
    ordered = sorted(sample)
    bounds: list = []
    for i in range(1, num_partitions):
        pos = int(round(i * len(ordered) / num_partitions))
        pos = min(max(pos, 0), len(ordered) - 1)
        candidate = ordered[pos]
        if not bounds or candidate > bounds[-1]:
            bounds.append(candidate)
    return bounds
