"""The RDD abstraction: lazy, partitioned, lineage-tracked collections.

This is the engine's public surface and deliberately mirrors Spark's RDD
API (the paper's pseudocode is written directly against ``flatMap`` /
``map`` / ``reduceByKey``).  Transformations build new RDD nodes linked by
:mod:`repro.engine.dependencies`; nothing executes until an action calls
``context.run_job`` which hands the lineage to the DAG scheduler.

Worker-side execution note: for the process-pool backend the RDD graph is
cloudpickled into the worker with ``context`` stripped (see
``RDD.__getstate__``).  Driver-resident services (block manager, shuffle
manager) are then reached through *preloaded* task inputs resolved by the
scheduler before shipping — ``iterator`` and ``ShuffledRDD.compute`` check
the task context's preloads first.
"""

from __future__ import annotations

import builtins
import itertools
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, Any, Callable, Generic, TypeVar

from repro.common.errors import EngineError
from repro.engine.dependencies import (
    Aggregator,
    Dependency,
    NarrowDependency,
    OneToOneDependency,
    RangeDependency,
    ShuffleDependency,
)
from repro.engine.partition import DataPartition, Partition, ReducePartition, SplitPartition
from repro.engine.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    compute_range_bounds,
)
from repro.engine.storage import BlockId, StorageLevel
from repro.engine.task import TaskContext


def _append_value(acc: list, v) -> list:
    """In-place ``group_by_key`` value merge (module-level: must pickle)."""
    acc.append(v)
    return acc


def _extend_list(a: list, b: list) -> list:
    """In-place ``group_by_key`` combiner merge (module-level: must pickle)."""
    a.extend(b)
    return a


if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.context import Context

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")


class RDD(Generic[T]):
    """A resilient distributed dataset.

    Subclasses define :meth:`compute`; everything else (caching, the whole
    transformation/action API) lives here.
    """

    def __init__(self, context: "Context", dependencies: list[Dependency]):
        self.context = context
        self.id = context._next_rdd_id()
        self.dependencies = dependencies
        self.storage_level: StorageLevel | None = None
        self._partitions: list[Partition] | None = None

    # -- to be provided by subclasses ------------------------------------
    def _make_partitions(self) -> list[Partition]:
        raise NotImplementedError

    def compute(self, partition: Partition, task_ctx: TaskContext | None) -> Iterator[T]:
        raise NotImplementedError

    @property
    def partitioner(self) -> Partitioner | None:
        """Set when records are already key-partitioned (post-shuffle)."""
        return None

    # -- partitions --------------------------------------------------------
    def partitions(self) -> list[Partition]:
        if self._partitions is None:
            self._partitions = self._make_partitions()
        return self._partitions

    @property
    def num_partitions(self) -> int:
        return len(self.partitions())

    # -- caching -----------------------------------------------------------
    def persist(self, level: StorageLevel = StorageLevel.MEMORY_ONLY) -> "RDD[T]":
        self.storage_level = level
        return self

    def cache(self) -> "RDD[T]":
        return self.persist(StorageLevel.MEMORY_ONLY)

    def unpersist(self) -> "RDD[T]":
        self.storage_level = None
        if self.context is not None:
            self.context.block_manager.remove_rdd(self.id)
        return self

    def iterator(self, partition: Partition, task_ctx: TaskContext | None) -> Iterator[T]:
        """Cache-aware access to a partition's records."""
        # Worker-side preloaded cache hit (process backend).
        if task_ctx is not None:
            pre = task_ctx.preloaded_blocks.get((self.id, partition.index))
            if pre is not None:
                return iter(pre)
        if self.storage_level is None:
            return self.compute(partition, task_ctx)
        if self.context is not None:
            # Driver-resident block manager path (serial/thread backends).
            block = BlockId(self.id, partition.index)
            cached = self.context.block_manager.get(block)
            if cached is not None:
                if task_ctx is not None:
                    task_ctx.metrics.cache_hits += 1
                return iter(cached)
            if task_ctx is not None:
                task_ctx.metrics.cache_misses += 1
            data = list(self.compute(partition, task_ctx))
            self.context.block_manager.put(block, data, self.storage_level)
            return iter(data)
        # Worker side without preload: compute and offer the data back to
        # the driver for caching.
        data = list(self.compute(partition, task_ctx))
        if task_ctx is not None:
            task_ctx.cache_back[(self.id, partition.index)] = data
        return iter(data)

    # -- pickling (process backend) -----------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        state["context"] = None  # driver-only service locator
        return state

    # =====================================================================
    # Transformations
    # =====================================================================
    def map_partitions_with_index(
        self, f: Callable[[int, Iterator[T]], Iterable[U]], preserves_partitioning: bool = False
    ) -> "RDD[U]":
        return MapPartitionsRDD(self, f, preserves_partitioning)

    def map_partitions(self, f: Callable[[Iterator[T]], Iterable[U]]) -> "RDD[U]":
        return self.map_partitions_with_index(lambda _i, it: f(it))

    def map(self, f: Callable[[T], U]) -> "RDD[U]":
        return self.map_partitions_with_index(lambda _i, it: builtins.map(f, it))

    def flat_map(self, f: Callable[[T], Iterable[U]]) -> "RDD[U]":
        return self.map_partitions_with_index(
            lambda _i, it: itertools.chain.from_iterable(builtins.map(f, it))
        )

    def filter(self, pred: Callable[[T], bool]) -> "RDD[T]":
        return self.map_partitions_with_index(
            lambda _i, it: builtins.filter(pred, it), preserves_partitioning=True
        )

    def glom(self) -> "RDD[list[T]]":
        return self.map_partitions_with_index(lambda _i, it: [list(it)])

    def key_by(self, f: Callable[[T], K]) -> "RDD[tuple[K, T]]":
        return self.map(lambda x: (f(x), x))

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def map_values(self, f: Callable[[V], U]) -> "RDD[tuple[K, U]]":
        return self.map_partitions_with_index(
            lambda _i, it: ((k, f(v)) for k, v in it), preserves_partitioning=True
        )

    def flat_map_values(self, f: Callable[[V], Iterable[U]]) -> "RDD[tuple[K, U]]":
        return self.map_partitions_with_index(
            lambda _i, it: ((k, u) for k, v in it for u in f(v)),
            preserves_partitioning=True,
        )

    def union(self, other: "RDD[T]") -> "RDD[T]":
        return UnionRDD(self.context, [self, other])

    def distinct(self, num_partitions: int | None = None) -> "RDD[T]":
        return (
            self.map(lambda x: (x, None))
            .reduce_by_key(lambda a, _b: a, num_partitions)
            .map(lambda kv: kv[0])
        )

    def sample(self, fraction: float, seed: int = 0) -> "RDD[T]":
        """Bernoulli sampling, deterministic per (seed, partition)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

        def sample_part(index: int, it: Iterator[T]) -> Iterator[T]:
            import numpy as np

            rng = np.random.default_rng((seed, index))
            return (x for x in it if rng.random() < fraction)

        return self.map_partitions_with_index(sample_part)

    def zip_with_index(self) -> "RDD[tuple[T, int]]":
        """Pairs each element with its global index (runs a size job first)."""
        sizes = self.context.run_job(
            self, lambda _ctx, it: sum(1 for _ in it)
        )
        offsets = [0]
        for s in sizes[:-1]:
            offsets.append(offsets[-1] + s)

        def with_index(index: int, it: Iterator[T]) -> Iterator[tuple[T, int]]:
            return ((x, offsets[index] + j) for j, x in enumerate(it))

        return self.map_partitions_with_index(with_index)

    def coalesce(self, num_partitions: int) -> "RDD[T]":
        """Narrow merge into fewer partitions (no shuffle)."""
        return CoalescedRDD(self, num_partitions)

    def repartition(self, num_partitions: int) -> "RDD[T]":
        """Full shuffle into ``num_partitions`` balanced partitions."""
        keyed = self.map_partitions_with_index(
            lambda i, it: ((i + j, x) for j, x in enumerate(it))
        )
        return ShuffledRDD(keyed, HashPartitioner(num_partitions)).map(lambda kv: kv[1])

    def intersection(self, other: "RDD[T]") -> "RDD[T]":
        """Distinct elements present in both RDDs (set semantics)."""
        return (
            self.map(lambda x: (x, 1))
            .cogroup(other.map(lambda x: (x, 2)))
            .filter(lambda kv: bool(kv[1][0]) and bool(kv[1][1]))
            .map(lambda kv: kv[0])
        )

    def subtract(self, other: "RDD[T]") -> "RDD[T]":
        """Elements of this RDD absent from ``other`` (keeps duplicates)."""
        return (
            self.map(lambda x: (x, True))
            .subtract_by_key(other.map(lambda x: (x, True)))
            .map(lambda kv: kv[0])
        )

    def cartesian(self, other: "RDD[U]") -> "RDD[tuple[T, U]]":
        """All pairs (a, b); |left| x |right| partitions."""
        return CartesianRDD(self, other)

    def take_sample(self, n: int, seed: int = 0) -> list[T]:
        """``n`` elements sampled without replacement (driver-side finish).

        Follows Spark's approach: over-sample distributed, then trim on
        the driver with a seeded shuffle for exactness on small ``n``.
        """
        if n <= 0:
            return []
        total = self.count()
        if n >= total:
            return self.collect()
        import numpy as np

        fraction = min(1.0, (n / total) * 2 + 0.02)
        pool = self.sample(fraction, seed=seed).collect()
        attempt = seed
        while len(pool) < n:  # extremely unlikely; widen until satisfied
            attempt += 1
            fraction = min(1.0, fraction * 2)
            pool = self.sample(fraction, seed=attempt).collect()
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(pool), size=n, replace=False)
        return [pool[i] for i in sorted(idx.tolist())]

    def histogram(self, buckets: int | list) -> tuple[list, list[int]]:
        """(bucket_edges, counts) over a numeric RDD.

        ``buckets`` is either a bucket count (evenly spaced over
        [min, max]) or an explicit ascending edge list.  The final bucket
        is closed on the right, as in Spark.
        """
        if isinstance(buckets, int):
            if buckets < 1:
                raise EngineError("bucket count must be >= 1")
            lo, hi = self.min(), self.max()
            if lo == hi:
                edges = [lo, hi]
            else:
                step = (hi - lo) / buckets
                edges = [lo + i * step for i in range(buckets)] + [hi]
        else:
            edges = list(buckets)
            if len(edges) < 2 or any(a >= b for a, b in zip(edges, edges[1:])):
                raise EngineError("bucket edges must be ascending, >= 2 entries")
        n_buckets = len(edges) - 1

        def count_part(_ctx, it: Iterator[T]) -> list[int]:
            import bisect

            counts = [0] * n_buckets
            for x in it:
                if x < edges[0] or x > edges[-1]:
                    continue
                idx = min(bisect.bisect_right(edges, x) - 1, n_buckets - 1)
                counts[idx] += 1
            return counts

        totals = [0] * n_buckets
        for partial in self.context.run_job(self, count_part):
            for i, c in enumerate(partial):
                totals[i] += c
        return edges, totals

    def sort_by(
        self,
        key_func: Callable[[T], Any],
        ascending: bool = True,
        num_partitions: int | None = None,
        sample_fraction: float = 0.2,
    ) -> "RDD[T]":
        """Total sort: sample keys, range-partition, sort each partition."""
        n_out = num_partitions or self.num_partitions
        sample = (
            self.map(key_func).sample(min(1.0, sample_fraction), seed=17).collect()
        )
        if not sample:  # tiny input: fall back to collecting all keys
            sample = self.map(key_func).collect()
        bounds = compute_range_bounds(sample, n_out)
        part = RangePartitioner(bounds, ascending=ascending)
        keyed = self.key_by(key_func)
        shuffled = ShuffledRDD(keyed, part)

        def sort_part(_i: int, it: Iterator) -> Iterator[T]:
            items = sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            return (v for _k, v in items)

        return shuffled.map_partitions_with_index(sort_part, preserves_partitioning=True)

    # -- pair-RDD shuffles ---------------------------------------------------
    def partition_by(self, partitioner: Partitioner) -> "RDD[tuple[K, V]]":
        if self.partitioner == partitioner:
            return self
        return ShuffledRDD(self, partitioner)

    def combine_by_key(
        self,
        create_combiner: Callable[[V], U],
        merge_value: Callable[[U, V], U],
        merge_combiners: Callable[[U, U], U],
        num_partitions: int | None = None,
        map_side_combine: bool = True,
    ) -> "RDD[tuple[K, U]]":
        agg = Aggregator(create_combiner, merge_value, merge_combiners)
        part = HashPartitioner(num_partitions or self.num_partitions)
        return ShuffledRDD(self, part, aggregator=agg, map_side_combine=map_side_combine)

    def reduce_by_key(
        self, f: Callable[[V, V], V], num_partitions: int | None = None
    ) -> "RDD[tuple[K, V]]":
        return self.combine_by_key(lambda v: v, f, f, num_partitions)

    def fold_by_key(
        self, zero: V, f: Callable[[V, V], V], num_partitions: int | None = None
    ) -> "RDD[tuple[K, V]]":
        return self.combine_by_key(lambda v: f(zero, v), f, f, num_partitions)

    def aggregate_by_key(
        self,
        zero: U,
        seq_op: Callable[[U, V], U],
        comb_op: Callable[[U, U], U],
        num_partitions: int | None = None,
    ) -> "RDD[tuple[K, U]]":
        import copy

        return self.combine_by_key(
            lambda v: seq_op(copy.deepcopy(zero), v), seq_op, comb_op, num_partitions
        )

    def group_by_key(self, num_partitions: int | None = None) -> "RDD[tuple[K, list[V]]]":
        # No map-side combine: grouping map-side only moves bytes earlier.
        # The merge functions mutate in place — `acc + [v]` would copy the
        # accumulated list on every record, O(n^2) per key under skew.
        return self.combine_by_key(
            lambda v: [v],
            _append_value,
            _extend_list,
            num_partitions,
            map_side_combine=False,
        )

    def group_by(
        self, f: Callable[[T], K], num_partitions: int | None = None
    ) -> "RDD[tuple[K, list[T]]]":
        return self.key_by(f).group_by_key(num_partitions)

    def cogroup(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        part = HashPartitioner(num_partitions or max(self.num_partitions, other.num_partitions))
        return CoGroupedRDD(self.context, [self, other], part)

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda groups: [(a, b) for a in groups[0] for b in groups[1]]
        )

    def left_outer_join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda g: [(a, b) for a in g[0] for b in (g[1] or [None])]
        )

    def right_outer_join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda g: [(a, b) for b in g[1] for a in (g[0] or [None])]
        )

    def full_outer_join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda g: [(a, b) for a in (g[0] or [None]) for b in (g[1] or [None])]
        )

    def subtract_by_key(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        return self.cogroup(other, num_partitions).flat_map(
            lambda kv: [(kv[0], v) for v in kv[1][0]] if not kv[1][1] else []
        )

    # =====================================================================
    # Actions
    # =====================================================================
    def collect(self) -> list[T]:
        chunks = self.context.run_job(self, lambda _ctx, it: list(it))
        return [x for chunk in chunks for x in chunk]

    def collect_as_map(self) -> dict:
        return dict(self.collect())

    def count(self) -> int:
        return sum(self.context.run_job(self, lambda _ctx, it: sum(1 for _ in it)))

    def is_empty(self) -> bool:
        return self.take(1) == []

    def first(self) -> T:
        got = self.take(1)
        if not got:
            raise EngineError("first() on empty RDD")
        return got[0]

    def take(self, n: int) -> list[T]:
        """Collect partitions one at a time until ``n`` elements are found."""
        if n <= 0:
            return []
        out: list[T] = []
        for p in range(self.num_partitions):
            chunk = self.context.run_job(
                self, lambda _ctx, it: list(itertools.islice(it, n - len(out))), [p]
            )[0]
            out.extend(chunk)
            if len(out) >= n:
                break
        return out[:n]

    def reduce(self, f: Callable[[T, T], T]) -> T:
        def reduce_part(_ctx, it: Iterator[T]) -> list[T]:
            acc = None
            empty = True
            for x in it:
                acc = x if empty else f(acc, x)
                empty = False
            return [] if empty else [acc]

        partials = [x for chunk in self.context.run_job(self, reduce_part) for x in chunk]
        if not partials:
            raise EngineError("reduce() on empty RDD")
        acc = partials[0]
        for x in partials[1:]:
            acc = f(acc, x)
        return acc

    def fold(self, zero: T, f: Callable[[T, T], T]) -> T:
        import copy

        def fold_part(_ctx, it: Iterator[T]) -> T:
            acc = copy.deepcopy(zero)
            for x in it:
                acc = f(acc, x)
            return acc

        acc = copy.deepcopy(zero)
        for partial in self.context.run_job(self, fold_part):
            acc = f(acc, partial)
        return acc

    def aggregate(self, zero: U, seq_op: Callable[[U, T], U], comb_op: Callable[[U, U], U]) -> U:
        import copy

        def agg_part(_ctx, it: Iterator[T]) -> U:
            acc = copy.deepcopy(zero)
            for x in it:
                acc = seq_op(acc, x)
            return acc

        acc = copy.deepcopy(zero)
        for partial in self.context.run_job(self, agg_part):
            acc = comb_op(acc, partial)
        return acc

    def sum(self):
        return self.fold(0, lambda a, b: a + b)

    def max(self):
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self):
        return self.reduce(lambda a, b: a if a <= b else b)

    def stats(self):
        """Count/mean/stdev/min/max of a numeric RDD in one pass."""
        from repro.engine.statcounter import StatCounter

        def stat_part(_ctx, it: Iterator[T]) -> StatCounter:
            counter = StatCounter()
            for x in it:
                counter.add(x)
            return counter

        total = StatCounter()
        for partial in self.context.run_job(self, stat_part):
            total.merge(partial)
        return total

    def stdev(self) -> float:
        return self.stats().stdev

    def variance(self) -> float:
        return self.stats().variance

    def mean(self) -> float:
        total, n = self.aggregate(
            (0.0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        if n == 0:
            raise EngineError("mean() on empty RDD")
        return total / n

    def count_by_value(self) -> dict[T, int]:
        return dict(self.map(lambda x: (x, 1)).reduce_by_key(lambda a, b: a + b).collect())

    def count_by_key(self) -> dict:
        return dict(self.map(lambda kv: (kv[0], 1)).reduce_by_key(lambda a, b: a + b).collect())

    def lookup(self, key: K) -> list[V]:
        part = self.partitioner
        if part is not None:
            idx = part.partition(key)
            rows = self.context.run_job(
                self, lambda _ctx, it: [v for k, v in it if k == key], [idx]
            )
            return rows[0]
        return self.filter(lambda kv: kv[0] == key).values().collect()

    def top(self, n: int, key: Callable[[T], Any] | None = None) -> list[T]:
        import heapq

        def top_part(_ctx, it: Iterator[T]) -> list[T]:
            return heapq.nlargest(n, it, key=key)

        partials = [x for chunk in self.context.run_job(self, top_part) for x in chunk]
        return heapq.nlargest(n, partials, key=key)

    def take_ordered(self, n: int, key: Callable[[T], Any] | None = None) -> list[T]:
        import heapq

        def small_part(_ctx, it: Iterator[T]) -> list[T]:
            return heapq.nsmallest(n, it, key=key)

        partials = [x for chunk in self.context.run_job(self, small_part) for x in chunk]
        return heapq.nsmallest(n, partials, key=key)

    def foreach(self, f: Callable[[T], None]) -> None:
        self.context.run_job(self, lambda _ctx, it: [f(x) for x in it] and None)

    def foreach_partition(self, f: Callable[[Iterator[T]], None]) -> None:
        self.context.run_job(self, lambda _ctx, it: f(it))

    def save_as_text_file(self, dfs, path: str) -> None:
        """Write one ``part-NNNNN`` file per partition into the mini-DFS."""
        chunks = self.context.run_job(self, lambda _ctx, it: [str(x) for x in it])
        for i, lines in enumerate(chunks):
            dfs.write_lines(f"{path.rstrip('/')}/part-{i:05d}", lines)

    # -- introspection -----------------------------------------------------
    def to_debug_string(self) -> str:
        from repro.engine.lineage import debug_string

        return debug_string(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.id}, partitions={self.num_partitions})"


# =========================================================================
# Concrete RDDs
# =========================================================================
class ParallelCollectionRDD(RDD[T]):
    """Driver-side collection sliced into ``num_slices`` partitions."""

    def __init__(self, context: "Context", data: Iterable[T], num_slices: int):
        super().__init__(context, [])
        if num_slices < 1:
            raise EngineError("num_slices must be >= 1")
        items = list(data)
        n = len(items)
        self._slices: list[tuple] = []
        for i in range(num_slices):
            lo = (i * n) // num_slices
            hi = ((i + 1) * n) // num_slices
            self._slices.append(tuple(items[lo:hi]))

    def _make_partitions(self) -> list[Partition]:
        return [DataPartition(index=i, data=s) for i, s in enumerate(self._slices)]

    def compute(self, partition: Partition, task_ctx) -> Iterator[T]:
        assert isinstance(partition, DataPartition)
        if task_ctx is not None:
            task_ctx.metrics.records_in += len(partition.data)
        return iter(partition.data)


class TextFileRDD(RDD[str]):
    """Lines of a mini-DFS file, one partition per input split."""

    def __init__(self, context: "Context", dfs, path: str):
        super().__init__(context, [])
        self.dfs = dfs
        self.path = path

    def _make_partitions(self) -> list[Partition]:
        from repro.hdfs.textio import compute_splits

        return [
            SplitPartition(index=i, split=s)
            for i, s in enumerate(compute_splits(self.dfs, self.path))
        ]

    def compute(self, partition: Partition, task_ctx) -> Iterator[str]:
        from repro.hdfs.textio import read_split_lines

        assert isinstance(partition, SplitPartition)
        lines = read_split_lines(self.dfs, partition.split)
        if task_ctx is not None:
            task_ctx.metrics.input_bytes += partition.split.length
            task_ctx.metrics.records_in += len(lines)
        return iter(lines)


class MapPartitionsRDD(RDD[U]):
    """Narrow one-to-one transformation of a parent RDD."""

    def __init__(
        self,
        parent: RDD,
        f: Callable[[int, Iterator], Iterable[U]],
        preserves_partitioning: bool = False,
    ):
        super().__init__(parent.context, [OneToOneDependency(parent)])
        self.parent = parent
        self.f = f
        self.preserves_partitioning = preserves_partitioning

    def _make_partitions(self) -> list[Partition]:
        return [Partition(index=p.index) for p in self.parent.partitions()]

    @property
    def partitioner(self) -> Partitioner | None:
        return self.parent.partitioner if self.preserves_partitioning else None

    def compute(self, partition: Partition, task_ctx) -> Iterator[U]:
        parent_part = self.parent.partitions()[partition.index]
        return iter(self.f(partition.index, self.parent.iterator(parent_part, task_ctx)))


class UnionRDD(RDD[T]):
    """Concatenation of several RDDs; partitions are stacked end-to-end."""

    def __init__(self, context: "Context", parents: list[RDD[T]]):
        deps: list[Dependency] = []
        offset = 0
        for parent in parents:
            deps.append(RangeDependency(parent, 0, offset, parent.num_partitions))
            offset += parent.num_partitions
        super().__init__(context, deps)
        self.parents = parents

    def _make_partitions(self) -> list[Partition]:
        return [Partition(index=i) for i in range(sum(p.num_partitions for p in self.parents))]

    def compute(self, partition: Partition, task_ctx) -> Iterator[T]:
        idx = partition.index
        for parent in self.parents:
            if idx < parent.num_partitions:
                return parent.iterator(parent.partitions()[idx], task_ctx)
            idx -= parent.num_partitions
        raise EngineError(f"union partition {partition.index} out of range")


class CoalescedRDD(RDD[T]):
    """Merges parent partitions into fewer child partitions without shuffle."""

    def __init__(self, parent: RDD[T], num_partitions: int):
        if num_partitions < 1:
            raise EngineError("coalesce target must be >= 1")
        self._target = min(num_partitions, max(1, parent.num_partitions))
        self.parent = parent
        dep = _CoalesceDependency(parent, parent.num_partitions, self._target)
        super().__init__(parent.context, [dep])
        self._dep = dep

    def _make_partitions(self) -> list[Partition]:
        return [Partition(index=i) for i in range(self._target)]

    def compute(self, partition: Partition, task_ctx) -> Iterator[T]:
        parent_parts = self.parent.partitions()
        return itertools.chain.from_iterable(
            self.parent.iterator(parent_parts[i], task_ctx)
            for i in self._dep.get_parents(partition.index)
        )


class _CoalesceDependency(NarrowDependency):
    def __init__(self, rdd: RDD, n_parent: int, n_child: int):
        super().__init__(rdd)
        self.n_parent = n_parent
        self.n_child = n_child

    def get_parents(self, partition_index: int) -> list[int]:
        lo = (partition_index * self.n_parent) // self.n_child
        hi = ((partition_index + 1) * self.n_parent) // self.n_child
        return list(range(lo, hi))


class CartesianRDD(RDD[tuple]):
    """Cross product: one child partition per (left, right) partition pair."""

    def __init__(self, left: RDD, right: RDD):
        super().__init__(left.context, [_CartesianDependency(left, True, right.num_partitions),
                                        _CartesianDependency(right, False, right.num_partitions)])
        self.left = left
        self.right = right

    def _make_partitions(self) -> list[Partition]:
        n = self.left.num_partitions * self.right.num_partitions
        return [Partition(index=i) for i in range(n)]

    def compute(self, partition: Partition, task_ctx) -> Iterator[tuple]:
        n_right = self.right.num_partitions
        li, ri = divmod(partition.index, n_right)
        left_part = self.left.partitions()[li]
        right_part = self.right.partitions()[ri]
        left_items = list(self.left.iterator(left_part, task_ctx))
        right_items = list(self.right.iterator(right_part, task_ctx))
        return ((a, b) for a in left_items for b in right_items)


class _CartesianDependency(NarrowDependency):
    def __init__(self, rdd: RDD, is_left: bool, n_right: int):
        super().__init__(rdd)
        self.is_left = is_left
        self.n_right = n_right

    def get_parents(self, partition_index: int) -> list[int]:
        li, ri = divmod(partition_index, self.n_right)
        return [li if self.is_left else ri]


class ShuffledRDD(RDD[tuple]):
    """Output side of a shuffle: one partition per reduce bucket."""

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Aggregator | None = None,
        map_side_combine: bool = False,
    ):
        dep = ShuffleDependency(parent, partitioner, aggregator, map_side_combine)
        super().__init__(parent.context, [dep])
        self.shuffle_dep = dep
        self._partitioner = partitioner

    def _make_partitions(self) -> list[Partition]:
        return [ReducePartition(index=i) for i in range(self._partitioner.num_partitions)]

    @property
    def partitioner(self) -> Partitioner | None:
        return self._partitioner

    def _fetch(self, partition: Partition, task_ctx) -> list[list]:
        key = (self.shuffle_dep.shuffle_id, partition.index)
        if task_ctx is not None and key in task_ctx.preloaded_shuffle:
            return task_ctx.preloaded_shuffle[key]
        if self.context is None:
            raise EngineError(
                "shuffle fetch in worker without preloaded input "
                f"(shuffle {self.shuffle_dep.shuffle_id})"
            )
        buckets, nbytes = self.context.shuffle_manager.fetch(*key)
        if task_ctx is not None:
            task_ctx.metrics.shuffle_read_bytes += nbytes
        return buckets

    def compute(self, partition: Partition, task_ctx) -> Iterator[tuple]:
        buckets = self._fetch(partition, task_ctx)
        agg = self.shuffle_dep.aggregator
        if agg is None:
            return itertools.chain.from_iterable(buckets)
        merged: dict = {}
        if self.shuffle_dep.map_side_combine:
            # Records are already (key, combiner) pairs.
            for bucket in buckets:
                for k, c in bucket:
                    if k in merged:
                        merged[k] = agg.merge_combiners(merged[k], c)
                    else:
                        merged[k] = c
        else:
            for bucket in buckets:
                for k, v in bucket:
                    if k in merged:
                        merged[k] = agg.merge_value(merged[k], v)
                    else:
                        merged[k] = agg.create_combiner(v)
        return iter(merged.items())


class CoGroupedRDD(RDD[tuple]):
    """Groups the values of several pair-RDDs by key in one shuffle round."""

    def __init__(self, context: "Context", parents: list[RDD], partitioner: Partitioner):
        deps = [ShuffleDependency(p, partitioner) for p in parents]
        super().__init__(context, deps)
        self.shuffle_deps = deps
        self._partitioner = partitioner

    def _make_partitions(self) -> list[Partition]:
        return [ReducePartition(index=i) for i in range(self._partitioner.num_partitions)]

    @property
    def partitioner(self) -> Partitioner | None:
        return self._partitioner

    def compute(self, partition: Partition, task_ctx) -> Iterator[tuple]:
        n = len(self.shuffle_deps)
        table: dict[Any, tuple[list, ...]] = {}
        for slot, dep in enumerate(self.shuffle_deps):
            key = (dep.shuffle_id, partition.index)
            if task_ctx is not None and key in task_ctx.preloaded_shuffle:
                buckets = task_ctx.preloaded_shuffle[key]
            elif self.context is not None:
                buckets, nbytes = self.context.shuffle_manager.fetch(*key)
                if task_ctx is not None:
                    task_ctx.metrics.shuffle_read_bytes += nbytes
            else:
                raise EngineError("cogroup fetch in worker without preloaded input")
            for bucket in buckets:
                for k, v in bucket:
                    if k not in table:
                        table[k] = tuple([] for _ in range(n))
                    table[k][slot].append(v)
        return iter(table.items())
