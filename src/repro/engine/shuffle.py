"""Shuffle manager: map-output registration and reduce-side fetches.

Map tasks bucket their output records by the shuffle's partitioner and
register the buckets here; reduce tasks fetch one bucket per map task.
Blocks live in driver memory (this is a single-process engine), but every
byte is accounted so the cluster model can charge network cost for the
all-to-all exchange a real cluster would perform.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.errors import EngineError
from repro.common.sizeof import estimate_size
from repro.engine.task import current_worker_id

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.tracing import Tracer


@dataclass
class ShuffleMetrics:
    blocks_written: int = 0
    bytes_written: int = 0
    blocks_fetched: int = 0
    bytes_fetched: int = 0


class ShuffleManager:
    def __init__(self, tracer: "Tracer | None" = None):
        # (shuffle_id, map_partition) -> list of buckets (one per reducer)
        self._outputs: dict[tuple[int, int], list[list]] = {}
        self._sizes: dict[tuple[int, int], list[int]] = {}
        self._expected_maps: dict[int, int] = {}
        # Registered map-output count per shuffle, maintained by
        # put_map_output so is_complete is O(1) instead of a scan over
        # every output (it runs once per stage execution attempt).
        self._registered_maps: dict[int, int] = {}
        self._lock = threading.Lock()
        self.metrics = ShuffleMetrics()
        self.tracer = tracer
        #: Called with a shuffle id (or ``None`` for "all shuffles") when
        #: map outputs are released; the Context wires this to the executor
        #: so driver-registry and worker-resident shuffle segments are
        #: dropped with them instead of accumulating across iterations.
        self.on_remove = None

    def register_shuffle(self, shuffle_id: int, num_maps: int) -> None:
        with self._lock:
            self._expected_maps[shuffle_id] = num_maps

    def put_map_output(self, shuffle_id: int, map_partition: int, buckets: list[list]) -> int:
        """Store the bucketed output of one map task; returns bytes written."""
        t0 = time.perf_counter()
        size_by_bucket = [estimate_size(b) if b else 0 for b in buckets]
        total = sum(size_by_bucket)
        with self._lock:
            key = (shuffle_id, map_partition)
            if key not in self._outputs:  # re-puts (retries) count once
                self._registered_maps[shuffle_id] = (
                    self._registered_maps.get(shuffle_id, 0) + 1
                )
            self._outputs[key] = buckets
            self._sizes[key] = size_by_bucket
            self.metrics.blocks_written += sum(1 for b in buckets if b)
            self.metrics.bytes_written += total
        if self.tracer is not None:
            self.tracer.add_span(
                f"shuffle_write s{shuffle_id}m{map_partition}",
                "shuffle",
                t0,
                time.perf_counter() - t0,
                track=current_worker_id(),
                bytes=total,
            )
        return total

    def is_complete(self, shuffle_id: int) -> bool:
        with self._lock:
            expected = self._expected_maps.get(shuffle_id)
            if expected is None:
                return False
            return self._registered_maps.get(shuffle_id, 0) >= expected

    def fetch(self, shuffle_id: int, reduce_partition: int) -> tuple[list[list], int]:
        """All map buckets destined for ``reduce_partition``.

        Returns ``(buckets, bytes_fetched)``.  Raises when some map output
        is missing (the stage ordering guarantees this never happens in a
        healthy run).
        """
        t0 = time.perf_counter()
        with self._lock:
            expected = self._expected_maps.get(shuffle_id)
            if expected is None:
                raise EngineError(f"unknown shuffle {shuffle_id}")
            buckets: list[list] = []
            fetched = 0
            for map_partition in range(expected):
                key = (shuffle_id, map_partition)
                if key not in self._outputs:
                    raise EngineError(
                        f"shuffle {shuffle_id} missing output of map {map_partition}"
                    )
                bucket = self._outputs[key][reduce_partition]
                size = self._sizes[key][reduce_partition]
                buckets.append(bucket)
                self.metrics.blocks_fetched += 1 if bucket else 0
                self.metrics.bytes_fetched += size
                fetched += size
        if self.tracer is not None:
            self.tracer.add_span(
                f"shuffle_read s{shuffle_id}r{reduce_partition}",
                "shuffle",
                t0,
                time.perf_counter() - t0,
                track=current_worker_id(),
                bytes=fetched,
            )
        return buckets, fetched

    def remove_shuffle(self, shuffle_id: int) -> None:
        with self._lock:
            for key in [k for k in list(self._outputs) if k[0] == shuffle_id]:
                del self._outputs[key]
                del self._sizes[key]
            self._expected_maps.pop(shuffle_id, None)
            self._registered_maps.pop(shuffle_id, None)
        if self.on_remove is not None:
            self.on_remove(shuffle_id)

    def clear(self) -> None:
        with self._lock:
            self._outputs.clear()
            self._sizes.clear()
            self._expected_maps.clear()
            self._registered_maps.clear()
        if self.on_remove is not None:
            self.on_remove(None)
