"""Stages and tasks — the schedulable units built from an RDD lineage.

A job splits into a tree of stages at shuffle boundaries: every
:class:`ShuffleDependency` becomes a :class:`ShuffleMapStage` whose tasks
bucket their output by the shuffle's partitioner; the action itself runs
as a :class:`ResultStage`.  Task bodies are pure with respect to driver
state — every driver-resident input they need (cached blocks, shuffle
buckets) is resolved into the task context beforehand when running on the
process backend.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.engine.dependencies import ShuffleDependency
from repro.engine.metrics import TaskMetrics
from repro.engine.partition import Partition
from repro.engine.task import TaskContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.rdd import RDD


@dataclass
class Stage:
    stage_id: int
    rdd: "RDD"
    parents: list["Stage"] = field(default_factory=list)

    @property
    def kind(self) -> str:
        raise NotImplementedError


@dataclass
class ShuffleMapStage(Stage):
    shuffle_dep: ShuffleDependency | None = None

    @property
    def kind(self) -> str:
        return "shuffle_map"


@dataclass
class ResultStage(Stage):
    func: Callable[[TaskContext, Any], Any] | None = None
    partitions: list[int] | None = None  # None = all

    @property
    def kind(self) -> str:
        return "result"


@dataclass
class Task:
    """One partition's worth of work for one stage."""

    stage_id: int
    kind: str  # "shuffle_map" | "result"
    rdd: "RDD"
    partition: Partition
    func: Callable | None = None  # result tasks
    shuffle_dep: ShuffleDependency | None = None  # shuffle-map tasks
    #: References to driver-registered data blocks this task needs —
    #: ``("rdd", rdd_id, part)`` / ``("shuf", shuffle_id, part)`` tuples.
    #: The process backend ships these ids instead of the payloads; the
    #: worker resolves them through its block store (see
    #: :mod:`repro.engine.workerstore`) before running the task.
    block_refs: list = field(default_factory=list)
    preloaded_blocks: dict = field(default_factory=dict)
    preloaded_shuffle: dict = field(default_factory=dict)
    attempt: int = 0

    def describe(self) -> str:
        return f"{self.kind}(stage={self.stage_id}, partition={self.partition.index})"

    def resolve_refs(self, resolver: Callable[[tuple], Any]) -> None:
        """Materialize :attr:`block_refs` into the preloaded-input dicts
        (worker side; ``resolver`` is the block store's cache-or-pull)."""
        for ref in self.block_refs:
            kind = ref[0]
            if kind == "rdd":
                self.preloaded_blocks[(ref[1], ref[2])] = resolver(ref)
            elif kind == "shuf":
                self.preloaded_shuffle[(ref[1], ref[2])] = resolver(ref)

    def run(self, worker_id: str = "driver") -> "TaskResult":
        metrics = TaskMetrics(
            stage_id=self.stage_id,
            partition=self.partition.index,
            attempt=self.attempt,
            kind=self.kind,
            worker_id=worker_id,
        )
        ctx = TaskContext(metrics, worker_id=worker_id)
        ctx.preloaded_blocks = self.preloaded_blocks
        ctx.preloaded_shuffle = self.preloaded_shuffle
        t0 = time.perf_counter()
        metrics.start_s = t0
        with ctx:
            if self.kind == "shuffle_map":
                value = self._run_shuffle_map(ctx)
            else:
                value = self.func(ctx, self.rdd.iterator(self.partition, ctx))
        metrics.duration_s = time.perf_counter() - t0
        return TaskResult(
            task=self,
            value=value,
            metrics=metrics,
            accumulator_deltas=ctx.accumulator_deltas,
            cache_back=ctx.cache_back,
        )

    def _run_shuffle_map(self, ctx: TaskContext) -> list[list]:
        """Bucket this partition's records by the shuffle partitioner.

        With map-side combine enabled the buckets hold (key, combiner)
        pairs pre-merged per key — Apriori's per-partition support counts —
        which is what makes ``reduceByKey`` shuffle O(distinct keys) rather
        than O(records).
        """
        dep = self.shuffle_dep
        assert dep is not None
        n_out = dep.partitioner.num_partitions
        records = self.rdd.iterator(self.partition, ctx)
        n_in = 0
        if dep.map_side_combine:
            # Combine first, partition after: the partitioner then runs
            # once per distinct key instead of once per record (profiling
            # showed per-record hashing dominating Apriori counting).
            agg = dep.aggregator
            combined: dict = {}
            for k, v in records:
                n_in += 1
                if k in combined:
                    combined[k] = agg.merge_value(combined[k], v)
                else:
                    combined[k] = agg.create_combiner(v)
            buckets = [[] for _ in range(n_out)]
            for k, c in combined.items():
                buckets[dep.partitioner.partition(k)].append((k, c))
        else:
            buckets = [[] for _ in range(n_out)]
            for k, v in records:
                n_in += 1
                buckets[dep.partitioner.partition(k)].append((k, v))
        ctx.metrics.combine_records_in += n_in
        ctx.metrics.records_out += sum(len(b) for b in buckets)
        return buckets


@dataclass
class TaskResult:
    task: Task
    value: Any
    metrics: TaskMetrics
    accumulator_deltas: dict[int, Any]
    cache_back: dict[tuple[int, int], list]
