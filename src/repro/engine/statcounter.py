"""StatCounter — mergeable running statistics (Spark's ``StatCounter``).

Numerically stable single-pass mean/variance via Welford's algorithm with
Chan's parallel merge, so per-partition counters combine exactly on the
driver.  Backs ``RDD.stats()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class StatCounter:
    count: int = 0
    mean: float = 0.0
    m2: float = 0.0  # sum of squared deviations from the mean
    min_value: float = math.inf
    max_value: float = -math.inf

    def add(self, value: float) -> "StatCounter":
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        return self

    def merge(self, other: "StatCounter") -> "StatCounter":
        """Chan et al. parallel combine; exact for disjoint partitions."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min_value = other.min_value
            self.max_value = other.max_value
            return self
        delta = other.mean - self.mean
        total = self.count + other.count
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        return self

    @property
    def sum(self) -> float:
        return self.mean * self.count

    @property
    def variance(self) -> float:
        """Population variance (nan for an empty counter)."""
        return self.m2 / self.count if self.count else math.nan

    @property
    def sample_variance(self) -> float:
        return self.m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def stdev(self) -> float:
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    @property
    def sample_stdev(self) -> float:
        v = self.sample_variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    def __repr__(self) -> str:
        return (
            f"StatCounter(count={self.count}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.min_value:.6g}, max={self.max_value:.6g})"
        )
