"""Block manager: partition caching with memory budget and disk spill.

Implements the piece of Spark that YAFIM's §IV-B depends on: ``cache()``-d
RDD partitions are kept in memory across iterations.  The manager enforces
a (configurable) memory budget with LRU eviction; under MEMORY_AND_DISK the
evicted partition is pickled to a spill directory and transparently
reloaded, under MEMORY_ONLY it is dropped and the engine recomputes it from
lineage — both behaviours are exercised by tests.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.common.sizeof import estimate_size

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.tracing import Tracer


class StorageLevel(Enum):
    MEMORY_ONLY = "MEMORY_ONLY"
    MEMORY_AND_DISK = "MEMORY_AND_DISK"
    DISK_ONLY = "DISK_ONLY"


@dataclass(frozen=True)
class BlockId:
    """Identifies one cached partition of one RDD."""

    rdd_id: int
    partition: int

    def filename(self) -> str:
        return f"rdd_{self.rdd_id}_part_{self.partition}.pkl"

    def ref(self) -> tuple:
        """The worker-store reference key for this cached partition (the
        process backend ships this id instead of the partition's data;
        see :mod:`repro.engine.workerstore`)."""
        return ("rdd", self.rdd_id, self.partition)


@dataclass
class StorageMetrics:
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    spills: int = 0
    memory_bytes: int = 0
    disk_bytes: int = 0


class BlockManager:
    """Thread-safe cached-partition store with LRU memory accounting."""

    def __init__(
        self,
        memory_limit_bytes: int | None = None,
        spill_dir: str | None = None,
        tracer: "Tracer | None" = None,
    ):
        self.memory_limit = memory_limit_bytes  # None = unbounded
        self._owns_spill = spill_dir is None
        self.spill_dir = spill_dir or tempfile.mkdtemp(prefix="blockmgr_")
        os.makedirs(self.spill_dir, exist_ok=True)
        self._mem: OrderedDict[BlockId, tuple[list, int]] = OrderedDict()
        self._disk: dict[BlockId, int] = {}  # block -> spilled size
        self._levels: dict[BlockId, StorageLevel] = {}
        self._lock = threading.RLock()
        self.metrics = StorageMetrics()
        self.tracer = tracer
        #: Called with an executor block-key prefix — ``("rdd", rdd_id)``,
        #: ``("rdd", rdd_id, part)`` or ``("rdd",)`` — when cached
        #: partitions are removed; the Context wires this to the executor
        #: so its driver registry and the worker stores drop them too.
        self.on_remove = None

    # -- store -------------------------------------------------------------
    def put(self, block: BlockId, data: list, level: StorageLevel) -> None:
        t0 = time.perf_counter()
        size = estimate_size(data)
        with self._lock:
            self._levels[block] = level
            if level is StorageLevel.DISK_ONLY:
                self._spill(block, data, size)
            else:
                self._mem[block] = (data, size)
                self._mem.move_to_end(block)
                self.metrics.memory_bytes += size
                self._enforce_budget()
        if self.tracer is not None:
            from repro.engine.task import current_worker_id

            self.tracer.add_span(
                f"cache_store rdd{block.rdd_id}p{block.partition}",
                "cache",
                t0,
                time.perf_counter() - t0,
                track=current_worker_id(),
                bytes=size,
                level=level.value,
            )

    def _spill(self, block: BlockId, data: list, size: int) -> None:
        path = os.path.join(self.spill_dir, block.filename())
        with open(path, "wb") as f:
            pickle.dump(data, f, protocol=pickle.HIGHEST_PROTOCOL)
        self._disk[block] = size
        self.metrics.spills += 1
        self.metrics.disk_bytes += size

    def _enforce_budget(self) -> None:
        if self.memory_limit is None:
            return
        while self.metrics.memory_bytes > self.memory_limit and len(self._mem) > 1:
            victim, (data, size) = self._mem.popitem(last=False)  # LRU
            self.metrics.memory_bytes -= size
            self.metrics.evictions += 1
            if self._levels.get(victim) is StorageLevel.MEMORY_AND_DISK:
                self._spill(victim, data, size)

    # -- fetch ---------------------------------------------------------------
    def get(self, block: BlockId) -> list | None:
        with self._lock:
            hit = self._mem.get(block)
            if hit is not None:
                self._mem.move_to_end(block)
                self.metrics.memory_hits += 1
                return hit[0]
            if block in self._disk:
                path = os.path.join(self.spill_dir, block.filename())
                with open(path, "rb") as f:
                    data = pickle.load(f)
                self.metrics.disk_hits += 1
                return data
            self.metrics.misses += 1
            return None

    def contains(self, block: BlockId) -> bool:
        with self._lock:
            return block in self._mem or block in self._disk

    # -- removal --------------------------------------------------------------
    def remove_rdd(self, rdd_id: int) -> int:
        """Drop every cached partition of an RDD; returns count removed."""
        removed = 0
        with self._lock:
            for block in [b for b in list(self._mem) if b.rdd_id == rdd_id]:
                _, size = self._mem.pop(block)
                self.metrics.memory_bytes -= size
                removed += 1
            for block in [b for b in list(self._disk) if b.rdd_id == rdd_id]:
                self._remove_disk(block)
                removed += 1
        if self.on_remove is not None:
            self.on_remove(("rdd", rdd_id))
        return removed

    def drop_block(self, block: BlockId) -> bool:
        """Fault-injection hook: lose one cached partition."""
        dropped = False
        with self._lock:
            if block in self._mem:
                _, size = self._mem.pop(block)
                self.metrics.memory_bytes -= size
                dropped = True
            elif block in self._disk:
                self._remove_disk(block)
                dropped = True
        if dropped and self.on_remove is not None:
            self.on_remove(block.ref())
        return dropped

    def _remove_disk(self, block: BlockId) -> None:
        size = self._disk.pop(block)
        self.metrics.disk_bytes -= size
        path = os.path.join(self.spill_dir, block.filename())
        if os.path.exists(path):
            os.remove(path)

    def clear(self) -> None:
        with self._lock:
            self._mem.clear()
            for block in list(self._disk):
                self._remove_disk(block)
            self.metrics.memory_bytes = 0
        if self.on_remove is not None:
            self.on_remove(("rdd",))

    def close(self) -> None:
        self.clear()
        if self._owns_spill and os.path.isdir(self.spill_dir):
            import shutil

            shutil.rmtree(self.spill_dir, ignore_errors=True)

    @property
    def cached_block_count(self) -> int:
        with self._lock:
            return len(self._mem) + len(self._disk)
