"""Task context — the per-attempt execution environment.

A :class:`TaskContext` is installed in a thread-local while a task runs so
that accumulators, broadcast accounting and metric counters can find "the
current task" without threading it through every user function, mirroring
Spark's ``TaskContext.get()``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.accumulator import Accumulator
    from repro.engine.metrics import TaskMetrics

_local = threading.local()


class TaskContext:
    def __init__(self, metrics: "TaskMetrics", worker_id: str = "driver"):
        self.metrics = metrics
        self.worker_id = worker_id
        self.accumulator_deltas: dict[int, Any] = {}
        self._accumulator_params: dict[int, Any] = {}
        # Inputs resolved by the scheduler before shipping (process backend):
        self.preloaded_blocks: dict[tuple[int, int], list] = {}  # (rdd_id, part) -> data
        self.preloaded_shuffle: dict[tuple[int, int], list] = {}  # (shuffle_id, part) -> buckets
        # Outputs a worker computed for a cached RDD, returned for the
        # driver's block manager to store:
        self.cache_back: dict[tuple[int, int], list] = {}

    def accumulate(self, acc: "Accumulator", delta: Any) -> None:
        if acc.id in self.accumulator_deltas:
            self.accumulator_deltas[acc.id] = acc.param.add(
                self.accumulator_deltas[acc.id], delta
            )
        else:
            self.accumulator_deltas[acc.id] = acc.param.add(acc.param.zero(), delta)

    def __enter__(self) -> "TaskContext":
        push_task_context(self)
        return self

    def __exit__(self, *exc) -> None:
        pop_task_context()


def push_task_context(ctx: TaskContext) -> None:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(ctx)


def pop_task_context() -> None:
    _local.stack.pop()


def current_task_context() -> TaskContext | None:
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


def current_worker_id() -> str:
    ctx = current_task_context()
    return ctx.worker_id if ctx is not None else "driver"
