"""Hierarchical run tracing and aggregate engine metrics.

The paper's evaluation (Figs. 3-6) is an argument about *where time goes
per iteration* — cached re-scans vs. shuffle vs. broadcast.  This module
is the observability layer that makes those mechanisms visible: every
:class:`~repro.engine.context.Context` owns a :class:`Tracer` that the
scheduler, shuffle manager, broadcast manager and block manager feed with
hierarchical spans (job -> stage -> task, plus driver-side spans such as
``apriori_gen`` and ``store_build`` emitted by the miners).

Exporters:

* :meth:`Tracer.to_chrome_trace` / :func:`export_chrome_trace` — the
  ``chrome://tracing`` (Trace Event Format) JSON; load the file in
  ``chrome://tracing`` or https://ui.perfetto.dev to see the timeline.
* :meth:`Tracer.to_text` — an indented plain-text rendering for
  terminals and log files.

:func:`collect_engine_metrics` folds a context's counters into one
:class:`EngineMetrics` snapshot that rides on
:class:`~repro.core.results.MiningRunResult.engine_metrics`.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class Span:
    """One timed interval on one track (thread/worker lane)."""

    name: str
    category: str  # "job" | "stage" | "task" | "driver" | "broadcast" | "shuffle" | "cache" | "ship"
    start_s: float  # perf_counter timestamp
    duration_s: float
    track: str = "driver"
    args: dict = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class InstantEvent:
    """A zero-duration marker (e.g. a task failure)."""

    name: str
    category: str
    ts_s: float
    track: str = "driver"
    args: dict = field(default_factory=dict)


class Tracer:
    """Thread-safe span collector with Chrome-trace and text exporters.

    Recording is cheap (one dataclass append under a lock); a disabled
    tracer records nothing, so instrumented code never needs to guard.
    """

    def __init__(self, enabled: bool = True, label: str = "repro"):
        self.enabled = enabled
        self.label = label
        self.origin_s = time.perf_counter()
        self._lock = threading.Lock()
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []

    # -- recording ---------------------------------------------------------
    def add_span(
        self,
        name: str,
        category: str,
        start_s: float,
        duration_s: float,
        track: str = "driver",
        **args,
    ) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.spans.append(Span(name, category, start_s, duration_s, track, args))

    @contextmanager
    def span(self, name: str, category: str, track: str = "driver", **args):
        """Record the wrapped block as one span (measured on exit)."""
        if not self.enabled:
            yield self
            return
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add_span(name, category, t0, time.perf_counter() - t0, track, **args)

    def instant(self, name: str, category: str, track: str = "driver", **args) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.instants.append(
                InstantEvent(name, category, time.perf_counter(), track, args)
            )

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.instants.clear()

    # -- queries -----------------------------------------------------------
    def spans_in(self, category: str) -> list[Span]:
        with self._lock:
            return [s for s in self.spans if s.category == category]

    def categories(self) -> set[str]:
        with self._lock:
            return {s.category for s in self.spans} | {i.category for i in self.instants}

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans) + len(self.instants)

    # -- exporters ---------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """This tracer alone as a Trace Event Format document."""
        return chrome_trace_document([self])

    def to_text(self) -> str:
        """Indented per-track rendering of the recorded spans."""
        with self._lock:
            spans = list(self.spans)
        if not spans:
            return "(no spans recorded)"
        lines: list[str] = []
        for track in sorted({s.track for s in spans}):
            lines.append(f"[{track}]")
            stack: list[float] = []  # end timestamps of open ancestors
            ordered = sorted(
                (s for s in spans if s.track == track),
                key=lambda s: (s.start_s, -s.duration_s),
            )
            for s in ordered:
                while stack and s.start_s >= stack[-1] - 1e-9:
                    stack.pop()
                indent = "  " * (len(stack) + 1)
                at = (s.start_s - self.origin_s) * 1e3
                lines.append(
                    f"{indent}{s.name}  [{s.category}]  "
                    f"+{at:.3f}ms  {s.duration_s * 1e3:.3f}ms"
                )
                stack.append(s.end_s)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------
def chrome_trace_document(tracers: Iterable["Tracer"]) -> dict:
    """Merge tracers into one ``chrome://tracing`` JSON document.

    Each tracer becomes one ``pid`` (named after its label); each track
    becomes one ``tid`` within it.  Timestamps are microseconds relative
    to the earliest tracer origin, so merged documents stay aligned.
    """
    tracers = [t for t in tracers if t is not None]
    origin = min((t.origin_s for t in tracers), default=0.0)
    events: list[dict] = []
    for pid, tracer in enumerate(tracers):
        with tracer._lock:
            spans = list(tracer.spans)
            instants = list(tracer.instants)
        tracks = sorted({s.track for s in spans} | {i.track for i in instants})
        tids = {track: tid for tid, track in enumerate(tracks)}
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": tracer.label}}
        )
        for track, tid in tids.items():
            events.append(
                {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                 "args": {"name": track}}
            )
        for s in spans:
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": (s.start_s - origin) * 1e6,
                    "dur": s.duration_s * 1e6,
                    "pid": pid,
                    "tid": tids[s.track],
                    "args": s.args,
                }
            )
        for i in instants:
            events.append(
                {
                    "name": i.name,
                    "cat": i.category,
                    "ph": "i",
                    "s": "t",
                    "ts": (i.ts_s - origin) * 1e6,
                    "pid": pid,
                    "tid": tids[i.track],
                    "args": i.args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(tracers: Iterable["Tracer"], path: str) -> str:
    """Write the merged trace of ``tracers`` to ``path``; returns ``path``."""
    document = chrome_trace_document(tracers)
    with open(path, "w") as f:
        json.dump(document, f)
    return path


def export_text_trace(tracer: "Tracer", path: str) -> str:
    with open(path, "w") as f:
        f.write(tracer.to_text() + "\n")
    return path


# ---------------------------------------------------------------------------
# Aggregate engine metrics
# ---------------------------------------------------------------------------
@dataclass
class EngineMetrics:
    """One engine run's counters, folded from every driver-side service."""

    n_jobs: int = 0
    n_stages: int = 0
    n_tasks: int = 0
    total_task_seconds: float = 0.0
    shuffle_bytes_written: int = 0
    shuffle_bytes_fetched: int = 0
    broadcast_transfers: int = 0
    broadcast_bytes: int = 0
    cache_memory_hits: int = 0
    cache_disk_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_spills: int = 0
    # task-shipping economics (process backend; zero for in-driver backends)
    shipped_task_bytes: int = 0
    shipped_block_bytes_pushed: int = 0
    shipped_block_bytes_pulled: int = 0
    blocks_pushed: int = 0
    blocks_pulled: int = 0
    broadcast_blocks_shipped: int = 0
    broadcast_bytes_shipped: int = 0
    ship_dedup_hits: int = 0
    ship_ref_requests: int = 0
    worker_store_evictions: int = 0
    # counting fast-path working-set shrink (filled by the miner from its
    # per-pass CompactionStats; zero when the fast path is off)
    compaction_rounds: int = 0
    compaction_txns_dropped: int = 0
    compaction_bytes_saved: int = 0

    @property
    def cache_hit_rate(self) -> float:
        hits = self.cache_memory_hits + self.cache_disk_hits
        total = hits + self.cache_misses
        return hits / total if total else 0.0

    @property
    def total_shipped_bytes(self) -> int:
        return (
            self.shipped_task_bytes
            + self.shipped_block_bytes_pushed
            + self.shipped_block_bytes_pulled
        )

    @property
    def ship_dedup_hit_rate(self) -> float:
        """Fraction of block references served from a worker-resident
        cache instead of being shipped (broadcast/block dedup)."""
        return self.ship_dedup_hits / self.ship_ref_requests if self.ship_ref_requests else 0.0

    def summary(self) -> str:
        return (
            f"jobs={self.n_jobs} stages={self.n_stages} tasks={self.n_tasks} "
            f"task_seconds={self.total_task_seconds:.3f} "
            f"shuffle_written={self.shuffle_bytes_written}B "
            f"shuffle_fetched={self.shuffle_bytes_fetched}B "
            f"broadcast={self.broadcast_transfers}x/{self.broadcast_bytes}B "
            f"cache_hit_rate={self.cache_hit_rate:.2f} "
            f"shipped={self.total_shipped_bytes}B "
            f"ship_dedup={self.ship_dedup_hit_rate:.2f}"
        ) + (
            f" compaction={self.compaction_rounds}x/"
            f"-{self.compaction_txns_dropped}txn/-{self.compaction_bytes_saved}B"
            if self.compaction_rounds else ""
        )


def collect_engine_metrics(ctx) -> EngineMetrics:
    """Snapshot a :class:`~repro.engine.context.Context`'s counters."""
    log = ctx.event_log
    shuffle = ctx.shuffle_manager.metrics
    storage = ctx.block_manager.metrics
    broadcast = ctx.broadcast_manager
    ship = getattr(ctx.executor, "shipping_metrics", None)
    ship_fields = {}
    if ship is not None:
        ship_fields = dict(
            shipped_task_bytes=ship.task_bytes,
            shipped_block_bytes_pushed=ship.block_bytes_pushed,
            shipped_block_bytes_pulled=ship.block_bytes_pulled,
            blocks_pushed=ship.blocks_pushed,
            blocks_pulled=ship.blocks_pulled,
            broadcast_blocks_shipped=ship.broadcast_blocks_shipped,
            broadcast_bytes_shipped=ship.broadcast_bytes_shipped,
            ship_dedup_hits=ship.dedup_hits,
            ship_ref_requests=ship.ref_requests,
            worker_store_evictions=ship.worker_store_evictions,
        )
    return EngineMetrics(
        n_jobs=len(log.jobs),
        n_stages=len(log.stages),
        n_tasks=len(log.tasks),
        total_task_seconds=log.total_task_seconds(),
        shuffle_bytes_written=shuffle.bytes_written,
        shuffle_bytes_fetched=shuffle.bytes_fetched,
        broadcast_transfers=broadcast.transfers,
        broadcast_bytes=broadcast.transfer_bytes,
        cache_memory_hits=storage.memory_hits,
        cache_disk_hits=storage.disk_hits,
        cache_misses=storage.misses,
        cache_evictions=storage.evictions,
        cache_spills=storage.spills,
        **ship_fields,
    )
