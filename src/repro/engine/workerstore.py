"""Worker-resident block store for the persistent process-pool backend.

The paper's §IV-C economics — ship the candidate hash tree once per node
per iteration, keep the transaction data resident — only hold if workers
outlive tasks and remember what they were sent.  This module is the
worker half of that design (the driver half is
:class:`~repro.engine.executors.ProcessExecutor`):

* a task arrives as a small closure blob plus *references* to named data
  blocks — ``("bc", broadcast_id)``, ``("rdd", rdd_id, partition)`` or
  ``("shuf", shuffle_id, partition)``;
* each worker process owns one :class:`WorkerBlockStore`, an LRU cache
  with a byte budget, that resolves those references;
* on a miss the worker **pulls** the block once from the driver over its
  IPC pipe (the driver also **pushes** blocks it knows the worker lacks,
  piggybacked on the task batch), after which every later task on the
  worker hits the cache.

This mirrors Spark's Torrent broadcast + executor-side block manager
(see PAPERS.md: Zaharia et al., NSDI'12): data moves by id, workers
cache it, and the driver ships each payload at most once per worker.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.common.errors import EngineError

#: Default per-worker cache budget (bytes).  Large enough to hold a
#: YAFIM iteration's hash tree plus several cached transaction
#: partitions at benchmark scale; small enough that a worker never
#: doubles the driver's footprint.
DEFAULT_STORE_BYTES = 64 * 1024 * 1024

_MISS = object()


def broadcast_key(bc_id: int) -> tuple:
    return ("bc", bc_id)


def rdd_block_key(rdd_id: int, partition: int) -> tuple:
    return ("rdd", rdd_id, partition)


def shuffle_block_key(shuffle_id: int, partition: int) -> tuple:
    return ("shuf", shuffle_id, partition)


class WorkerBlockStore:
    """Process-local LRU cache of resolved blocks, byte-budgeted.

    Values are stored *deserialized* (a worker resolves a block many
    times but deserializes it once); sizes are the serialized blob
    lengths the driver shipped, which keeps the budget comparable to
    actual transfer volume.
    """

    def __init__(self, budget_bytes: int | None = DEFAULT_STORE_BYTES):
        self.budget_bytes = budget_bytes  # None = unbounded
        self._blocks: OrderedDict[tuple, tuple[Any, int]] = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple) -> Any:
        """The cached value, or the :data:`_MISS` sentinel (checked via
        :meth:`lookup` by callers outside this module)."""
        entry = self._blocks.get(key)
        if entry is None:
            self.misses += 1
            return _MISS
        self._blocks.move_to_end(key)
        self.hits += 1
        return entry[0]

    def lookup(self, key: tuple) -> tuple[bool, Any]:
        """(hit, value) — the miss-sentinel-free public accessor."""
        value = self.get(key)
        return (value is not _MISS, None if value is _MISS else value)

    def put(self, key: tuple, value: Any, nbytes: int) -> None:
        old = self._blocks.pop(key, None)
        if old is not None:
            self.total_bytes -= old[1]
        self._blocks[key] = (value, nbytes)
        self.total_bytes += nbytes
        if self.budget_bytes is not None:
            # Keep at least the newest block even when it alone exceeds
            # the budget — evicting the block a task is about to use
            # would livelock the pull protocol.
            while self.total_bytes > self.budget_bytes and len(self._blocks) > 1:
                _victim, (_value, size) = self._blocks.popitem(last=False)
                self.total_bytes -= size
                self.evictions += 1

    def remove(self, key: tuple) -> bool:
        entry = self._blocks.pop(key, None)
        if entry is not None:
            self.total_bytes -= entry[1]
            return True
        return False

    def __contains__(self, key: tuple) -> bool:
        return key in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)


class WorkerRuntime:
    """Per-process execution environment: the store plus the pull channel."""

    def __init__(self, store: WorkerBlockStore, conn, worker_id: str):
        self.store = store
        self.conn = conn
        self.worker_id = worker_id
        # Per-batch accounting, reset by the worker loop:
        self.pulled = 0
        self.pulled_bytes = 0
        self.local_hits = 0

    def resolve(self, key: tuple) -> Any:
        """Resolve a block reference: local cache first, pull on a miss."""
        import pickle

        value = self.store.get(key)
        if value is not _MISS:
            self.local_hits += 1
            return value
        self.conn.send(("pull", key))
        tag, rkey, blob = self.conn.recv()
        if tag != "block" or rkey != key:  # protocol is strictly request/reply
            raise EngineError(f"worker pull protocol violation: got {tag} for {key}")
        if blob is None:
            raise EngineError(f"driver has no payload for block {key}")
        value = pickle.loads(blob)
        self.store.put(key, value, len(blob))
        self.pulled += 1
        self.pulled_bytes += len(blob)
        return value


_runtime: WorkerRuntime | None = None


def set_worker_runtime(runtime: WorkerRuntime | None) -> None:
    global _runtime
    _runtime = runtime


def current_worker_runtime() -> WorkerRuntime | None:
    return _runtime


def resolve_block(key: tuple) -> Any:
    """Resolve a block reference in the current worker process (used by
    :class:`~repro.engine.broadcast.Broadcast` when shipped by id)."""
    if _runtime is None:
        raise EngineError(
            f"block reference {key} resolved outside a worker process "
            "(by-reference payloads only exist inside the process pool)"
        )
    return _runtime.resolve(key)


def _worker_main(conn, slot: int, budget_bytes: int | None) -> None:
    """Persistent worker loop: receive task batches, resolve block refs
    through the local store (pulling misses from the driver), run tasks,
    return the results.

    Protocol (driver -> worker):
      ``("run", batch_blob, drops, push)`` — run a batch; ``drops`` are
      keys to forget (destroyed broadcasts), ``push`` maps keys to
      serialized payloads the driver believes this worker lacks.
      ``("stop",)`` — exit the loop.

    Worker -> driver:
      ``("pull", key)`` — mid-batch block request (replied with
      ``("block", key, blob)``).
      ``("done", results_blob, stored_keys, stats)`` — batch finished;
      ``stored_keys`` are blocks the worker now additionally holds (from
      cache-backs), so the driver can skip pushing them later.
    """
    import pickle

    import cloudpickle

    store = WorkerBlockStore(budget_bytes)
    worker_id = f"worker-{slot}"
    runtime = WorkerRuntime(store, conn, worker_id)
    set_worker_runtime(runtime)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "stop":
                break
            _tag, batch_blob, drops, push = msg
            for key in drops:
                store.remove(key)
            for key, blob in push.items():
                store.put(key, pickle.loads(blob), len(blob))
            runtime.pulled = 0
            runtime.pulled_bytes = 0
            runtime.local_hits = 0
            evictions_before = store.evictions
            stored_keys: list[tuple] = []
            tasks = pickle.loads(batch_blob)
            outcomes = []
            for task in tasks:
                try:
                    task.resolve_refs(runtime.resolve)
                    result = task.run(worker_id=worker_id)
                    for (rdd_id, part), data in result.cache_back.items():
                        key = rdd_block_key(rdd_id, part)
                        from repro.common.sizeof import estimate_size

                        store.put(key, data, estimate_size(data))
                        stored_keys.append(key)
                    # The driver reattaches its own Task object by batch
                    # order; shipping the graph back would undo the
                    # closure-splitting savings.
                    result.task = None
                    outcomes.append((True, result))
                except BaseException as exc:  # noqa: BLE001 - scheduler decides
                    outcomes.append((False, _picklable_exception(exc)))
            stats = {
                "evictions": store.evictions - evictions_before,
                "store_hits": runtime.local_hits,
                "store_blocks": len(store),
                "store_bytes": store.total_bytes,
            }
            conn.send(("done", cloudpickle.dumps(outcomes), stored_keys, stats))
    finally:
        set_worker_runtime(None)
        conn.close()


def _picklable_exception(exc: BaseException) -> BaseException:
    """Exceptions cross the pipe by pickle; fall back to a summary when
    the original carries unpicklable state."""
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001
        return EngineError(f"{type(exc).__name__}: {exc}")
