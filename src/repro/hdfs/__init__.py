"""Mini-DFS: an in-process HDFS analogue with real local-disk block storage."""

from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE, BlockId, BlockInfo, FileMeta
from repro.hdfs.datanode import DataNode
from repro.hdfs.filesystem import DfsMetrics, MiniDfs
from repro.hdfs.namenode import NameNode, normalize_path
from repro.hdfs.textio import (
    InputSplit,
    compute_splits,
    read_all_lines_via_splits,
    read_split_lines,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockId",
    "BlockInfo",
    "DataNode",
    "DfsMetrics",
    "FileMeta",
    "InputSplit",
    "MiniDfs",
    "NameNode",
    "compute_splits",
    "normalize_path",
    "read_all_lines_via_splits",
    "read_split_lines",
]
