"""Block-level primitives for the mini-DFS.

A file in the mini-DFS is a sequence of fixed-size blocks; each block is
replicated onto ``replication`` distinct datanodes.  Block ids are globally
unique within a namenode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_BLOCK_SIZE = 1 << 20  # 1 MiB — scaled-down analogue of HDFS's 64 MB


@dataclass(frozen=True)
class BlockId:
    """Globally unique block identifier."""

    value: int

    def filename(self) -> str:
        return f"blk_{self.value:016d}"


@dataclass
class BlockInfo:
    """Namenode-side metadata for one block of one file."""

    block_id: BlockId
    offset: int  # byte offset of this block within the file
    length: int  # actual bytes stored (last block may be short)
    replicas: list[str] = field(default_factory=list)  # datanode ids

    def is_available(self, live: set[str]) -> bool:
        return any(r in live for r in self.replicas)


@dataclass
class FileMeta:
    """Namenode-side metadata for one file."""

    path: str
    blocks: list[BlockInfo] = field(default_factory=list)

    @property
    def length(self) -> int:
        return sum(b.length for b in self.blocks)
