"""Datanode: stores block replicas as real files in a local directory.

Writes go through the OS so the MapReduce baseline pays genuine filesystem
cost per job, which is the structural overhead the paper attributes to
Hadoop's per-iteration HDFS round-trips.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.common.errors import BlockUnavailableError
from repro.hdfs.blocks import BlockId


@dataclass
class DataNodeMetrics:
    bytes_written: int = 0
    bytes_read: int = 0
    blocks_stored: int = 0


class DataNode:
    """One storage node. ``node_id`` doubles as the locality hint used by
    the MapReduce scheduler for map-task placement."""

    def __init__(self, node_id: str, root_dir: str):
        self.node_id = node_id
        self.root_dir = root_dir
        self.alive = True
        self.metrics = DataNodeMetrics()
        os.makedirs(root_dir, exist_ok=True)

    def _path(self, block_id: BlockId) -> str:
        return os.path.join(self.root_dir, block_id.filename())

    def write_block(self, block_id: BlockId, data: bytes) -> None:
        if not self.alive:
            raise BlockUnavailableError(f"datanode {self.node_id} is down")
        with open(self._path(block_id), "wb") as f:
            f.write(data)
        self.metrics.bytes_written += len(data)
        self.metrics.blocks_stored += 1

    def read_block(self, block_id: BlockId) -> bytes:
        if not self.alive:
            raise BlockUnavailableError(f"datanode {self.node_id} is down")
        path = self._path(block_id)
        if not os.path.exists(path):
            raise BlockUnavailableError(
                f"datanode {self.node_id} has no replica of {block_id}"
            )
        with open(path, "rb") as f:
            data = f.read()
        self.metrics.bytes_read += len(data)
        return data

    def has_block(self, block_id: BlockId) -> bool:
        return self.alive and os.path.exists(self._path(block_id))

    def delete_block(self, block_id: BlockId) -> None:
        path = self._path(block_id)
        if os.path.exists(path):
            os.remove(path)
            self.metrics.blocks_stored -= 1

    def fail(self) -> None:
        """Simulate a node crash; stored files remain but are unreachable."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True
