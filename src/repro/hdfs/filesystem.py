"""MiniDfs — the user-facing facade over namenode + datanodes.

Data really lands on the local filesystem (one subdirectory per datanode),
so every MapReduce iteration's read/write is a genuine disk round-trip.
The facade also keeps aggregate I/O metrics that the cluster cost model
replays when projecting multi-node timings.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.common.errors import BlockUnavailableError, HdfsError
from repro.hdfs.blocks import DEFAULT_BLOCK_SIZE, BlockInfo, FileMeta
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode, normalize_path


@dataclass
class DfsMetrics:
    """Aggregate I/O counters across all datanodes plus namenode ops."""

    bytes_written: int = 0
    bytes_read: int = 0
    files_created: int = 0
    files_read: int = 0
    files_deleted: int = 0

    def snapshot(self) -> "DfsMetrics":
        return DfsMetrics(
            self.bytes_written, self.bytes_read,
            self.files_created, self.files_read, self.files_deleted,
        )

    def delta(self, earlier: "DfsMetrics") -> "DfsMetrics":
        return DfsMetrics(
            self.bytes_written - earlier.bytes_written,
            self.bytes_read - earlier.bytes_read,
            self.files_created - earlier.files_created,
            self.files_read - earlier.files_read,
            self.files_deleted - earlier.files_deleted,
        )


class MiniDfs:
    """An in-process distributed filesystem with real local-disk storage.

    Parameters
    ----------
    root_dir:
        Local directory holding one subdirectory per datanode. A temp dir
        is created (and owned by this instance) when omitted.
    n_datanodes:
        Number of simulated storage nodes.
    block_size:
        Split threshold in bytes; files larger than this span several
        blocks, which become separate MapReduce input splits.
    replication:
        Replica count per block (capped at ``n_datanodes``).
    """

    def __init__(
        self,
        root_dir: str | None = None,
        n_datanodes: int = 4,
        block_size: int = DEFAULT_BLOCK_SIZE,
        replication: int = 2,
    ):
        if n_datanodes < 1:
            raise HdfsError("need at least one datanode")
        if block_size < 1:
            raise HdfsError("block_size must be positive")
        self._owns_root = root_dir is None
        self.root_dir = root_dir or tempfile.mkdtemp(prefix="minidfs_")
        self.block_size = block_size
        node_ids = [f"dn{i}" for i in range(n_datanodes)]
        self.datanodes = {
            nid: DataNode(nid, os.path.join(self.root_dir, nid)) for nid in node_ids
        }
        self.namenode = NameNode(node_ids, replication=replication)
        self.metrics = DfsMetrics()

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        """Remove on-disk state when this instance created its root dir."""
        if self._owns_root and os.path.isdir(self.root_dir):
            import shutil

            shutil.rmtree(self.root_dir, ignore_errors=True)

    def __enter__(self) -> "MiniDfs":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writes -----------------------------------------------------------
    def write_bytes(self, path: str, data: bytes) -> FileMeta:
        meta = self.namenode.create_file(path)
        live = [nid for nid, node in self.datanodes.items() if node.alive]
        for offset in range(0, max(len(data), 1), self.block_size):
            chunk = data[offset : offset + self.block_size]
            if not chunk and offset > 0:
                break
            info = self.namenode.allocate_block(meta, offset, len(chunk), live=live)
            for node_id in info.replicas:
                self.datanodes[node_id].write_block(info.block_id, chunk)
                self.metrics.bytes_written += len(chunk)
        self.metrics.files_created += 1
        return meta

    def write_text(self, path: str, text: str) -> FileMeta:
        return self.write_bytes(path, text.encode("utf-8"))

    def write_lines(self, path: str, lines) -> FileMeta:
        return self.write_text(path, "".join(f"{line}\n" for line in lines))

    # -- reads ------------------------------------------------------------
    def _read_block(self, info: BlockInfo) -> bytes:
        last_err: Exception | None = None
        for node_id in info.replicas:
            node = self.datanodes[node_id]
            try:
                data = node.read_block(info.block_id)
                self.metrics.bytes_read += len(data)
                return data
            except BlockUnavailableError as err:
                last_err = err
        raise BlockUnavailableError(
            f"no live replica of block {info.block_id}: {last_err}"
        )

    def read_bytes(self, path: str) -> bytes:
        meta = self.namenode.get_file(path)
        self.metrics.files_read += 1
        return b"".join(self._read_block(b) for b in meta.blocks)

    def read_text(self, path: str) -> str:
        return self.read_bytes(path).decode("utf-8")

    def read_lines(self, path: str) -> list[str]:
        text = self.read_text(path)
        return text.splitlines()

    def read_block_range(self, path: str, offset: int, length: int) -> bytes:
        """Read an arbitrary byte range (used by line-aligned input splits)."""
        meta = self.namenode.get_file(path)
        out = bytearray()
        end = offset + length
        for info in meta.blocks:
            b_start, b_end = info.offset, info.offset + info.length
            if b_end <= offset or b_start >= end:
                continue
            data = self._read_block(info)
            lo = max(offset, b_start) - b_start
            hi = min(end, b_end) - b_start
            out += data[lo:hi]
        return bytes(out)

    # -- namespace ---------------------------------------------------------
    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def delete(self, path: str) -> None:
        meta = self.namenode.delete_file(path)
        for info in meta.blocks:
            for node_id in info.replicas:
                self.datanodes[node_id].delete_block(info.block_id)
        self.metrics.files_deleted += 1

    def file_length(self, path: str) -> int:
        return self.namenode.get_file(path).length

    def list_files(self, prefix: str = "/") -> list[str]:
        return self.namenode.list_files(prefix)

    def block_locations(self, path: str) -> list[BlockInfo]:
        return list(self.namenode.get_file(path).blocks)

    # -- fault injection ----------------------------------------------------
    def fail_datanode(self, node_id: str) -> None:
        self.datanodes[node_id].fail()

    def recover_datanode(self, node_id: str) -> None:
        self.datanodes[node_id].recover()

    # -- replication maintenance ------------------------------------------
    def under_replicated_blocks(self) -> list[tuple[str, "BlockInfo"]]:
        """(path, block) pairs with fewer live replicas than the target."""
        live = {nid for nid, node in self.datanodes.items() if node.alive}
        target = self.namenode.replication
        out = []
        for path in self.namenode.list_files("/"):
            for info in self.namenode.get_file(path).blocks:
                alive_replicas = [r for r in info.replicas if r in live]
                if 0 < len(alive_replicas) < min(target, len(live)):
                    out.append((path, info))
        return out

    def rereplicate(self) -> int:
        """Restore the replication factor of damaged blocks.

        What the HDFS namenode does continuously in the background: for
        every under-replicated block, copy a surviving replica onto live
        datanodes that don't hold one yet.  Returns the number of new
        replicas created.  Blocks with no live replica are unrecoverable
        and left untouched (reads raise BlockUnavailableError).
        """
        live = {nid for nid, node in self.datanodes.items() if node.alive}
        created = 0
        for _path, info in self.under_replicated_blocks():
            sources = [r for r in info.replicas if r in live]
            if not sources:
                continue
            data = self.datanodes[sources[0]].read_block(info.block_id)
            self.metrics.bytes_read += len(data)
            targets = sorted(live - set(info.replicas))
            need = min(self.namenode.replication, len(live)) - len(sources)
            for node_id in targets[:need]:
                self.datanodes[node_id].write_block(info.block_id, data)
                self.metrics.bytes_written += len(data)
                info.replicas.append(node_id)
                created += 1
            # drop dead replicas from metadata (the namenode's view)
            info.replicas = [r for r in info.replicas if r in live]
        return created


__all__ = ["MiniDfs", "DfsMetrics", "normalize_path"]
