"""Namenode: the mini-DFS namespace and block-placement policy.

Holds the path -> :class:`FileMeta` mapping and allocates replicas
round-robin across live datanodes (a simplification of HDFS's
rack-aware placement that still spreads load and exercises locality).
"""

from __future__ import annotations

import itertools

from repro.common.errors import FileAlreadyExists, FileNotFoundInDfs, HdfsError
from repro.hdfs.blocks import BlockId, BlockInfo, FileMeta


class NameNode:
    def __init__(self, datanode_ids: list[str], replication: int = 2):
        if not datanode_ids:
            raise HdfsError("a mini-DFS needs at least one datanode")
        if replication < 1:
            raise HdfsError("replication factor must be >= 1")
        self.datanode_ids = list(datanode_ids)
        self.replication = min(replication, len(datanode_ids))
        self._files: dict[str, FileMeta] = {}
        self._block_counter = itertools.count()
        self._placement = itertools.cycle(range(len(datanode_ids)))

    # -- namespace -------------------------------------------------------
    def create_file(self, path: str) -> FileMeta:
        path = normalize_path(path)
        if path in self._files:
            raise FileAlreadyExists(path)
        meta = FileMeta(path=path)
        self._files[path] = meta
        return meta

    def get_file(self, path: str) -> FileMeta:
        path = normalize_path(path)
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundInDfs(path) from None

    def exists(self, path: str) -> bool:
        return normalize_path(path) in self._files

    def delete_file(self, path: str) -> FileMeta:
        path = normalize_path(path)
        meta = self.get_file(path)
        del self._files[path]
        return meta

    def list_files(self, prefix: str = "/") -> list[str]:
        prefix = normalize_path(prefix)
        if not prefix.endswith("/"):
            prefix += "/"
        return sorted(
            p for p in self._files if p.startswith(prefix) or p == prefix.rstrip("/")
        )

    # -- block allocation --------------------------------------------------
    def allocate_block(
        self, meta: FileMeta, offset: int, length: int, live: list[str] | None = None
    ) -> BlockInfo:
        """Allocate a new block id and choose ``replication`` replica nodes.

        Placement is round-robin over the *live* datanodes (HDFS never
        places new replicas on dead nodes); replication degrades
        gracefully when fewer live nodes remain.
        """
        candidates = self.datanode_ids if live is None else [
            d for d in self.datanode_ids if d in live
        ]
        if not candidates:
            raise HdfsError("no live datanodes available for block placement")
        block_id = BlockId(next(self._block_counter))
        start = next(self._placement)
        n = len(candidates)
        replicas = list(dict.fromkeys(
            candidates[(start + i) % n] for i in range(min(self.replication, n))
        ))
        info = BlockInfo(block_id=block_id, offset=offset, length=length, replicas=replicas)
        meta.blocks.append(info)
        return info

    def total_bytes(self) -> int:
        return sum(m.length for m in self._files.values())


def normalize_path(path: str) -> str:
    """Collapse repeated slashes and require absolute paths."""
    if not path.startswith("/"):
        raise HdfsError(f"mini-DFS paths must be absolute, got {path!r}")
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)
