"""Line-aligned input splits over mini-DFS files.

Implements Hadoop's ``TextInputFormat`` record-boundary rule: a split
covering bytes ``[start, end)`` yields every line that *begins* inside the
range.  A split that does not start at byte 0 discards the partial line it
lands in (the previous split owns it) and reads past ``end`` to finish its
final line.  This guarantees each line is processed exactly once even
though block boundaries fall mid-line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdfs.filesystem import MiniDfs

_OVERREAD = 1 << 16  # how far past the split end we look for the final newline


@dataclass(frozen=True)
class InputSplit:
    """One schedulable chunk of an input file."""

    path: str
    start: int
    length: int
    hosts: tuple[str, ...]  # datanodes holding the underlying block (locality)

    @property
    def end(self) -> int:
        return self.start + self.length


def compute_splits(dfs: MiniDfs, path: str) -> list[InputSplit]:
    """One split per block, carrying the block's replica hosts."""
    return [
        InputSplit(path=path, start=b.offset, length=b.length, hosts=tuple(b.replicas))
        for b in dfs.block_locations(path)
        if b.length > 0
    ]


def read_split_lines(dfs: MiniDfs, split: InputSplit) -> list[str]:
    """Decode the lines owned by ``split`` per the TextInputFormat rule.

    Hadoop's ``LineRecordReader`` trick: a split with ``start > 0`` begins
    reading at ``start - 1`` and discards everything up to (and including)
    the first newline it sees.  If byte ``start - 1`` is itself a newline,
    nothing real is discarded and the line beginning exactly at ``start``
    is correctly owned by this split.  A line beginning exactly at the
    split end belongs to the *next* split.
    """
    file_len = dfs.file_length(split.path)
    start = split.start
    read_from = start - 1 if start > 0 else 0
    raw = dfs.read_block_range(
        split.path,
        read_from,
        min(split.end + _OVERREAD, file_len) - read_from,
    )
    # Absolute file offset where owned content begins.
    if start > 0:
        nl = raw.find(b"\n")
        if nl < 0:
            return []  # the previous split's final line runs past our end
        first_owned = read_from + nl + 1
    else:
        first_owned = 0
    if first_owned >= split.end:
        return []  # no line starts inside [start, end)
    data = raw[first_owned - read_from :]
    owned_span = split.end - first_owned  # lines must *start* before split.end
    lines: list[str] = []
    pos = 0
    while pos < owned_span and pos < len(data):
        nl = data.find(b"\n", pos)
        if nl < 0:
            lines.append(data[pos:].decode("utf-8"))
            break
        lines.append(data[pos:nl].decode("utf-8"))
        pos = nl + 1
    return lines


def read_all_lines_via_splits(dfs: MiniDfs, path: str) -> list[str]:
    """Reassemble the whole file through its splits (testing helper)."""
    out: list[str] = []
    for split in compute_splits(dfs, path):
        out.extend(read_split_lines(dfs, split))
    return out
