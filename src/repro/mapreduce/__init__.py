"""MapReduce runtime over the mini-DFS (substrate of the MRApriori baseline)."""

from repro.mapreduce.counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    GROUP_TASK,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    Counters,
)
from repro.mapreduce.job import (
    FunctionMapper,
    FunctionReducer,
    JobSpec,
    Mapper,
    Reducer,
    default_partitioner,
)
from repro.mapreduce.jobchain import ChainResult, JobChain
from repro.mapreduce.runner import JobMetrics, JobResult, JobRunner, read_job_output

__all__ = [
    "COMBINE_INPUT_RECORDS",
    "COMBINE_OUTPUT_RECORDS",
    "ChainResult",
    "Counters",
    "FunctionMapper",
    "FunctionReducer",
    "GROUP_TASK",
    "JobChain",
    "JobMetrics",
    "JobResult",
    "JobRunner",
    "JobSpec",
    "MAP_INPUT_RECORDS",
    "MAP_OUTPUT_RECORDS",
    "Mapper",
    "REDUCE_INPUT_RECORDS",
    "REDUCE_OUTPUT_RECORDS",
    "Reducer",
    "default_partitioner",
    "read_job_output",
]
