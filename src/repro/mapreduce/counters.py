"""Hadoop-style job counters: ``(group, name) -> int``."""

from __future__ import annotations

import threading
from collections import defaultdict


class Counters:
    def __init__(self):
        self._values: dict[tuple[str, str], int] = defaultdict(int)
        self._lock = threading.Lock()

    def increment(self, group: str, name: str, amount: int = 1) -> None:
        with self._lock:
            self._values[(group, name)] += amount

    def value(self, group: str, name: str) -> int:
        return self._values.get((group, name), 0)

    def group(self, group: str) -> dict[str, int]:
        return {n: v for (g, n), v in self._values.items() if g == group}

    def as_dict(self) -> dict[tuple[str, str], int]:
        return dict(self._values)

    def merge(self, other: "Counters") -> None:
        with self._lock:
            for key, v in other._values.items():
                self._values[key] += v

    def __repr__(self) -> str:
        return f"Counters({dict(self._values)!r})"


# Builtin counter names (subset of Hadoop's).
GROUP_TASK = "task"
MAP_INPUT_RECORDS = "map_input_records"
MAP_OUTPUT_RECORDS = "map_output_records"
COMBINE_INPUT_RECORDS = "combine_input_records"
COMBINE_OUTPUT_RECORDS = "combine_output_records"
REDUCE_INPUT_RECORDS = "reduce_input_records"
REDUCE_OUTPUT_RECORDS = "reduce_output_records"
