"""Job specification: mapper/combiner/reducer interfaces and JobSpec.

The API is a faithful, pythonic port of Hadoop 1.x MapReduce:

* ``Mapper.map(key, value, emit)`` is called once per input record, where
  ``key`` is the byte offset of the line and ``value`` the line text.
* ``Combiner`` (optional) runs over each map task's local output before
  the shuffle.
* ``Reducer.reduce(key, values, emit)`` is called once per key with every
  shuffled value for that key.
* ``distributed_cache`` reproduces Hadoop's DistributedCache: a read-only
  dict shipped to every task — MRApriori ships the previous level's
  frequent itemsets through it, exactly like the PApriori paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import JobConfigError
from repro.common.rng import stable_hash


class Mapper:
    """Override :meth:`map`.  ``setup``/``cleanup`` bracket each map task."""

    def setup(self, config: dict) -> None:  # noqa: B027 - optional hook
        pass

    def map(self, key: Any, value: Any, emit: Callable[[Any, Any], None]) -> None:
        raise NotImplementedError

    def cleanup(self, emit: Callable[[Any, Any], None]) -> None:  # noqa: B027
        pass


class Reducer:
    """Override :meth:`reduce`.  Values arrive grouped by key."""

    def setup(self, config: dict) -> None:  # noqa: B027
        pass

    def reduce(self, key: Any, values: list, emit: Callable[[Any, Any], None]) -> None:
        raise NotImplementedError

    def cleanup(self, emit: Callable[[Any, Any], None]) -> None:  # noqa: B027
        pass


def default_partitioner(key: Any, num_reducers: int) -> int:
    return stable_hash(key) % num_reducers


@dataclass
class JobSpec:
    """Everything needed to run one MapReduce job."""

    name: str
    input_paths: list[str]
    output_path: str
    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer]
    combiner_factory: Callable[[], Reducer] | None = None
    num_reducers: int = 2
    partitioner: Callable[[Any, int], int] = default_partitioner
    config: dict = field(default_factory=dict)
    distributed_cache: dict = field(default_factory=dict)
    # How reducer output is rendered into the text part files:
    output_formatter: Callable[[Any, Any], str] = lambda k, v: f"{k}\t{v}"

    def validate(self) -> None:
        if not self.input_paths:
            raise JobConfigError(f"job {self.name!r}: no input paths")
        if not self.output_path.startswith("/"):
            raise JobConfigError(f"job {self.name!r}: output path must be absolute")
        if self.num_reducers < 1:
            raise JobConfigError(f"job {self.name!r}: num_reducers must be >= 1")


class FunctionMapper(Mapper):
    """Adapter: build a Mapper from ``fn(key, value) -> iterable[(k, v)]``."""

    def __init__(self, fn: Callable[[Any, Any], Any]):
        self._fn = fn

    def map(self, key, value, emit) -> None:
        for k, v in self._fn(key, value):
            emit(k, v)


class FunctionReducer(Reducer):
    """Adapter: build a Reducer from ``fn(key, values) -> iterable[(k, v)]``."""

    def __init__(self, fn: Callable[[Any, list], Any]):
        self._fn = fn

    def reduce(self, key, values, emit) -> None:
        for k, v in self._fn(key, values):
            emit(k, v)
