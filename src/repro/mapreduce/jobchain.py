"""Iterative job chaining — the k-phase structure of MapReduce Apriori.

Hadoop has no iteration primitive: a k-level Apriori run is *k separate
jobs*, each re-reading the transaction file from HDFS and writing its
level's output back (HaLoop's motivating observation, cited by the
paper).  :class:`JobChain` packages that pattern and collects the per-job
metrics the evaluation plots per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.mapreduce.job import JobSpec
from repro.mapreduce.runner import JobMetrics, JobResult, JobRunner, read_job_output


@dataclass
class ChainResult:
    results: list[JobResult] = field(default_factory=list)

    @property
    def per_job_metrics(self) -> list[JobMetrics]:
        return [r.metrics for r in self.results]

    @property
    def total_wall_seconds(self) -> float:
        return sum(r.metrics.wall_seconds for r in self.results)


class JobChain:
    """Runs jobs produced one at a time by ``next_job``.

    ``next_job(iteration, previous_result)`` returns the next
    :class:`JobSpec`, or ``None`` to stop.  The previous job's *text
    output* is available through :meth:`read_output` so drivers can decide
    termination (MRApriori stops when a level yields no frequent itemsets).
    """

    def __init__(self, runner: JobRunner, max_iterations: int = 64):
        self.runner = runner
        self.max_iterations = max_iterations

    def run(
        self, next_job: Callable[[int, JobResult | None], JobSpec | None]
    ) -> ChainResult:
        chain = ChainResult()
        previous: JobResult | None = None
        for iteration in range(self.max_iterations):
            spec = next_job(iteration, previous)
            if spec is None:
                break
            previous = self.runner.run(spec)
            chain.results.append(previous)
        return chain

    def read_output(self, result: JobResult) -> list[str]:
        return read_job_output(self.runner.dfs, result.output_path)
