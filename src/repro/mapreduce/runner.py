"""The MapReduce job runner.

Faithful to Hadoop 1.x structure — and, crucially for the paper's
argument, faithful to its *I/O behaviour*:

1. input splits are computed from mini-DFS blocks (data really on disk),
2. each map task reads its split from the DFS, runs the mapper, sorts and
   combines its output, and **spills each reduce bucket to a real local
   file**,
3. each reduce task reads its spill files back **from disk**, merge-sorts
   them, runs the reducer, and **writes its part file back to the DFS**.

Every Apriori level executed on this runtime therefore pays a genuine
disk round-trip (DFS read -> shuffle spill -> DFS write) plus the modeled
job-startup overhead, which is exactly the per-iteration tax the paper
attributes to MapReduce and that YAFIM's in-memory RDDs avoid.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.common.errors import MapReduceError
from repro.engine.tracing import Tracer
from repro.hdfs.filesystem import MiniDfs
from repro.hdfs.textio import compute_splits, read_split_lines
from repro.mapreduce.counters import (
    COMBINE_INPUT_RECORDS,
    COMBINE_OUTPUT_RECORDS,
    GROUP_TASK,
    MAP_INPUT_RECORDS,
    MAP_OUTPUT_RECORDS,
    REDUCE_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    Counters,
)
from repro.mapreduce.job import JobSpec


@dataclass
class JobMetrics:
    """Measured facts about one executed job (feeds the cluster replay)."""

    name: str = ""
    map_task_durations: list[float] = field(default_factory=list)
    reduce_task_durations: list[float] = field(default_factory=list)
    hdfs_read_bytes: int = 0
    hdfs_write_bytes: int = 0
    shuffle_bytes: int = 0
    wall_seconds: float = 0.0


@dataclass
class JobResult:
    spec: JobSpec
    counters: Counters
    metrics: JobMetrics

    @property
    def output_path(self) -> str:
        return self.spec.output_path


class JobRunner:
    """Executes jobs against a mini-DFS.

    Parameters
    ----------
    dfs:
        The mini-DFS holding inputs and receiving outputs.
    backend:
        ``"serial"`` (used by benchmarks for clean per-task timings) or
        ``"threads"``.
    parallelism:
        Worker threads for the threaded backend.
    tracer:
        Optional shared :class:`~repro.engine.tracing.Tracer`; the runner
        creates its own when not given, so every job is always traced.
    """

    def __init__(
        self,
        dfs: MiniDfs,
        backend: str = "serial",
        parallelism: int = 4,
        tracer: Tracer | None = None,
    ):
        if backend not in ("serial", "threads"):
            raise MapReduceError(f"unknown backend {backend!r}")
        self.dfs = dfs
        self.backend = backend
        self.parallelism = parallelism
        self.jobs_run = 0
        self.tracer = tracer if tracer is not None else Tracer(label="mapreduce")

    # -- public --------------------------------------------------------------
    def run(self, spec: JobSpec) -> JobResult:
        spec.validate()
        if self.dfs.exists(spec.output_path) or self.dfs.list_files(spec.output_path):
            raise MapReduceError(
                f"output path {spec.output_path} already exists (Hadoop semantics)"
            )
        t0 = time.perf_counter()
        counters = Counters()
        metrics = JobMetrics(name=spec.name)
        dfs_before = self.dfs.metrics.snapshot()
        shuffle_dir = tempfile.mkdtemp(prefix=f"mr_shuffle_{self.jobs_run}_")
        try:
            with self.tracer.span(f"mr_job {spec.name}", "job", reducers=spec.num_reducers):
                splits = [
                    (path, split)
                    for path in spec.input_paths
                    for split in compute_splits(self.dfs, path)
                ]
                if not splits:
                    raise MapReduceError(f"job {spec.name!r}: empty input")
                with self.tracer.span(f"map_phase {spec.name}", "stage", n_tasks=len(splits)):
                    self._run_map_phase(spec, splits, shuffle_dir, counters, metrics)
                with self.tracer.span(
                    f"reduce_phase {spec.name}", "stage", n_tasks=spec.num_reducers
                ):
                    self._run_reduce_phase(spec, len(splits), shuffle_dir, counters, metrics)
        finally:
            shutil.rmtree(shuffle_dir, ignore_errors=True)
        delta = self.dfs.metrics.delta(dfs_before)
        metrics.hdfs_read_bytes = delta.bytes_read
        metrics.hdfs_write_bytes = delta.bytes_written
        metrics.wall_seconds = time.perf_counter() - t0
        self.jobs_run += 1
        return JobResult(spec=spec, counters=counters, metrics=metrics)

    # -- map phase --------------------------------------------------------------
    def _run_map_phase(self, spec, splits, shuffle_dir, counters, metrics) -> None:
        def map_task(task_id_and_split):
            task_id, (path, split) = task_id_and_split
            t0 = time.perf_counter()
            task_counters = Counters()
            mapper = spec.mapper_factory()
            mapper.setup(self._task_config(spec))
            output: list[tuple] = []
            emit = lambda k, v: output.append((k, v))  # noqa: E731
            lines = read_split_lines(self.dfs, split)
            for line in lines:
                mapper.map(split.start, line, emit)
            mapper.cleanup(emit)
            task_counters.increment(GROUP_TASK, MAP_INPUT_RECORDS, len(lines))
            task_counters.increment(GROUP_TASK, MAP_OUTPUT_RECORDS, len(output))
            if spec.combiner_factory is not None:
                output = self._combine(spec, output, task_counters)
            buckets = self._partition_and_sort(spec, output)
            shuffle_bytes = self._spill(shuffle_dir, task_id, buckets)
            duration = time.perf_counter() - t0
            self.tracer.add_span(
                f"map {spec.name}#{task_id}", "task", t0, duration,
                track=threading.current_thread().name,
                records=len(lines), shuffle_bytes=shuffle_bytes,
            )
            return duration, task_counters, shuffle_bytes

        results = self._run_tasks(map_task, list(enumerate(splits)))
        for dur, task_counters, shuffle_bytes in results:
            metrics.map_task_durations.append(dur)
            metrics.shuffle_bytes += shuffle_bytes
            counters.merge(task_counters)

    def _combine(self, spec, output, task_counters) -> list[tuple]:
        combiner = spec.combiner_factory()
        combiner.setup(self._task_config(spec))
        grouped: dict = {}
        for k, v in output:
            grouped.setdefault(k, []).append(v)
        combined: list[tuple] = []
        emit = lambda k, v: combined.append((k, v))  # noqa: E731
        for k in grouped:
            combiner.reduce(k, grouped[k], emit)
        combiner.cleanup(emit)
        task_counters.increment(GROUP_TASK, COMBINE_INPUT_RECORDS, len(output))
        task_counters.increment(GROUP_TASK, COMBINE_OUTPUT_RECORDS, len(combined))
        return combined

    def _partition_and_sort(self, spec, output) -> list[list[tuple]]:
        buckets: list[list[tuple]] = [[] for _ in range(spec.num_reducers)]
        for k, v in output:
            buckets[spec.partitioner(k, spec.num_reducers)].append((k, v))
        for bucket in buckets:
            bucket.sort(key=lambda kv: repr(kv[0]))  # total order even for mixed keys
        return buckets

    def _spill(self, shuffle_dir: str, map_task_id: int, buckets) -> int:
        """Write each reduce bucket to a real local file; returns bytes."""
        total = 0
        for r, bucket in enumerate(buckets):
            path = os.path.join(shuffle_dir, f"map_{map_task_id:05d}_r{r:03d}.spill")
            with open(path, "wb") as f:
                pickle.dump(bucket, f, protocol=pickle.HIGHEST_PROTOCOL)
            total += os.path.getsize(path)
        return total

    # -- reduce phase --------------------------------------------------------------
    def _run_reduce_phase(self, spec, n_maps, shuffle_dir, counters, metrics) -> None:
        def reduce_task(r: int):
            t0 = time.perf_counter()
            task_counters = Counters()
            merged: list[tuple] = []
            for m in range(n_maps):
                path = os.path.join(shuffle_dir, f"map_{m:05d}_r{r:03d}.spill")
                with open(path, "rb") as f:
                    merged.extend(pickle.load(f))
            merged.sort(key=lambda kv: repr(kv[0]))
            reducer = spec.reducer_factory()
            reducer.setup(self._task_config(spec))
            out_pairs: list[tuple] = []
            emit = lambda k, v: out_pairs.append((k, v))  # noqa: E731
            i = 0
            while i < len(merged):
                j = i
                key = merged[i][0]
                values = []
                while j < len(merged) and merged[j][0] == key:
                    values.append(merged[j][1])
                    j += 1
                reducer.reduce(key, values, emit)
                i = j
            reducer.cleanup(emit)
            task_counters.increment(GROUP_TASK, REDUCE_INPUT_RECORDS, len(merged))
            task_counters.increment(GROUP_TASK, REDUCE_OUTPUT_RECORDS, len(out_pairs))
            lines = [spec.output_formatter(k, v) for k, v in out_pairs]
            self.dfs.write_lines(f"{spec.output_path.rstrip('/')}/part-r-{r:05d}", lines)
            duration = time.perf_counter() - t0
            self.tracer.add_span(
                f"reduce {spec.name}#{r}", "task", t0, duration,
                track=threading.current_thread().name, records=len(merged),
            )
            return duration, task_counters

        results = self._run_tasks(reduce_task, list(range(spec.num_reducers)))
        for dur, task_counters in results:
            metrics.reduce_task_durations.append(dur)
            counters.merge(task_counters)

    # -- helpers -----------------------------------------------------------------
    def _task_config(self, spec: JobSpec) -> dict:
        config = dict(spec.config)
        config["__cache__"] = spec.distributed_cache
        return config

    def _run_tasks(self, fn, items):
        if self.backend == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.parallelism) as pool:
            return list(pool.map(fn, items))


def read_job_output(dfs: MiniDfs, output_path: str) -> list[str]:
    """All lines of a job's part files, in part order."""
    lines: list[str] = []
    for part in dfs.list_files(output_path):
        lines.extend(dfs.read_lines(part))
    return lines
