"""``repro.serve`` — the multi-tenant mining service.

One :class:`MiningService` turns the one-shot mining API into a serving
layer: a priority job queue over a bounded worker pool, a cross-job
dataset cache, warm engine contexts, and result memoization — the same
amortize-the-repeated-cost move the YAFIM paper makes for Apriori passes,
applied across requests.  :class:`MiningServer` puts it behind a stdlib
JSON/HTTP front-end; :class:`LocalClient` / :class:`HttpClient` are the
two transports.  See ``docs/serving.md``.
"""

from repro.serve.cache import (
    ContextPool,
    DatasetCache,
    FingerprintChain,
    LruByteCache,
    ResultCache,
    dataset_fingerprint,
)
from repro.serve.client import HttpClient, LocalClient
from repro.serve.datasets import AppendResult, DatasetRegistry, ManagedDataset
from repro.serve.http import MiningServer, config_from_dict
from repro.serve.jobs import (
    ApiError,
    Job,
    JobRequest,
    JobState,
    RejectedError,
    ServeError,
    TERMINAL_STATES,
)
from repro.serve.planner import CostPlanner, DatasetStats, PlanDecision
from repro.serve.router import ShardRouter
from repro.serve.service import LatencyHistogram, MiningService
from repro.serve.shard import HashRing, Shard

__all__ = [
    "ApiError",
    "AppendResult",
    "ContextPool",
    "CostPlanner",
    "DatasetCache",
    "DatasetRegistry",
    "DatasetStats",
    "FingerprintChain",
    "HashRing",
    "HttpClient",
    "Job",
    "JobRequest",
    "JobState",
    "LatencyHistogram",
    "LocalClient",
    "LruByteCache",
    "ManagedDataset",
    "MiningServer",
    "MiningService",
    "PlanDecision",
    "RejectedError",
    "ResultCache",
    "ServeError",
    "Shard",
    "ShardRouter",
    "TERMINAL_STATES",
    "config_from_dict",
    "dataset_fingerprint",
]
