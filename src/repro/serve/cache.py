"""Cross-job caches: parsed datasets, warm engine contexts, memoized results.

The YAFIM paper's core win is keeping the transaction data resident in
memory across Apriori passes instead of re-reading it from HDFS each
pass.  The serving layer lifts the same idea one level up — across
*jobs*:

* :class:`DatasetCache` keeps parsed transaction lists resident, keyed by
  content fingerprint, LRU-evicted against a byte budget (sizes come from
  :func:`repro.common.sizeof.estimate_size`, the block manager's own
  estimator).
* :class:`ContextPool` keeps warm engine :class:`Context` instances —
  executor pools are the model-load analogue; spinning one up per job is
  the repeated cost the pool amortizes.
* :class:`ResultCache` memoizes ``(dataset_fingerprint, config.cache_key())``
  → :class:`~repro.core.results.MiningRunResult` with TTL + LRU, so an
  identical resubmission returns without touching the engine at all.

All three are thread-safe; workers and the HTTP front-end hit them
concurrently.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Sequence

from repro.common.sizeof import estimate_size


class FingerprintChain:
    """Incrementally extendable dataset fingerprint.

    The fingerprint is one sha256 stream over length-prefixed chunks of
    length-prefixed transactions, so appending a delta only hashes the
    delta: the chain keeps the running hasher and ``extend`` feeds it the
    new transactions, yielding the *new version's* fingerprint without
    re-reading the window.  Because a sha256 stream is chunking-invariant,
    the digest is **byte-identical** to :func:`dataset_fingerprint` over
    the concatenated window — one chunk or many, the same hex string —
    which is what lets the serving tier mix raw-transaction submissions
    and versioned named datasets in one cache keyspace.

    Items are rendered with ``str`` — the same rendering the ``.dat`` file
    format uses — so a dataset fingerprints identically whether it arrived
    as parsed ints or as strings read back from disk.  The encoding is
    injective: every transaction and every rendered item is
    length-prefixed, so ``[["a b"]]`` and ``[["a", "b"]]`` hash
    differently.  (A join on a separator would conflate them, letting one
    tenant's submission silently hit another dataset's cache entry.)
    """

    __slots__ = ("_h", "n_transactions")

    def __init__(self, transactions: Iterable[Sequence] = ()):
        self._h = hashlib.sha256()
        self.n_transactions = 0
        self.extend(transactions)

    def extend(self, transactions: Iterable[Sequence]) -> str:
        """Fold a chunk of transactions in; returns the new fingerprint."""
        h = self._h
        for txn in transactions:
            items = [str(i).encode("utf-8") for i in txn]
            h.update(len(items).to_bytes(4, "big"))
            for data in items:
                h.update(len(data).to_bytes(4, "big"))
                h.update(data)
            self.n_transactions += 1
        return h.hexdigest()

    def hexdigest(self) -> str:
        """The current version's fingerprint (does not consume the chain)."""
        return self._h.hexdigest()

    def copy(self) -> "FingerprintChain":
        """An independent chain at the same position (what-if appends)."""
        clone = object.__new__(FingerprintChain)
        clone._h = self._h.copy()
        clone.n_transactions = self.n_transactions
        return clone


def dataset_fingerprint(transactions: Iterable[Sequence]) -> str:
    """Content hash of a transaction list (hex sha256, order-sensitive).

    The single-chunk form of :class:`FingerprintChain` — see there for
    the encoding contract.
    """
    return FingerprintChain(transactions).hexdigest()


class LruByteCache:
    """LRU mapping with a byte budget and hit/miss/eviction counters.

    Entry sizes are estimated once at insert.  A single entry larger than
    the whole budget is still admitted (evicting everything else) — the
    service must be able to run any dataset it accepted, cached or not.
    """

    def __init__(self, max_bytes: int):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[object, int]] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str, default=None):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: str, value: object) -> None:
        size = estimate_size(value)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old[1]
            self._entries[key] = (value, size)
            self.current_bytes += size
            while self.current_bytes > self.max_bytes and len(self._entries) > 1:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self.current_bytes -= evicted_size
                self.evictions += 1

    def remove(self, key: str) -> bool:
        """Drop an entry outright (dataset mutated, not evicted for space);
        True when it was present.  Counted separately from evictions."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self.current_bytes -= entry[1]
            return True

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4),
            }


class DatasetCache(LruByteCache):
    """Parsed transaction lists keyed by :func:`dataset_fingerprint`."""

    def add(self, transactions: list, fingerprint: str | None = None) -> str:
        """Fingerprint ``transactions``, cache them, return the fingerprint.

        Re-adding an already cached dataset refreshes its LRU position but
        does not count as a miss.  ``fingerprint`` lets a caller that has
        already hashed the data (the shard router, which routes on it)
        skip the second sha256 pass.
        """
        fp = fingerprint or dataset_fingerprint(transactions)
        with self._lock:
            if fp in self._entries:
                self._entries.move_to_end(fp)
                return fp
        self.put(fp, transactions)
        return fp


class ResultCache:
    """``(dataset_fingerprint, config_key)`` → result, with TTL + LRU.

    Approximate results are second-class citizens: :meth:`put_approx`
    stores one under its own key *and* indexes it under its exact twin's
    key, so when the exact run completes, :meth:`put` drops every approx
    entry it supersedes — an exact completion upgrades the cached answer,
    and an approx entry can never shadow an exact one.
    """

    def __init__(self, max_entries: int = 256, ttl_s: float = 300.0):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[object, float]] = OrderedDict()
        #: exact key -> approx keys whose entries it supersedes on arrival;
        #: rows are dropped the moment their last approx entry leaves the
        #: cache (eviction, expiration, or supersession), so the index
        #: stays bounded by the live entry count
        self._approx_for: dict[tuple, set[tuple]] = {}
        #: approx key -> the exact key it is indexed under (reverse map,
        #: so entry removal can prune its index row in O(1))
        self._exact_of: dict[tuple, tuple] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.upgrades = 0
        self.invalidations = 0

    def _forget_approx_locked(self, key: tuple) -> None:
        """Entry ``key`` left the cache: drop its approx-index row (both
        directions), removing the exact key's set once it empties."""
        exact_key = self._exact_of.pop(key, None)
        if exact_key is not None:
            keys = self._approx_for.get(exact_key)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._approx_for[exact_key]

    def _evict_over_budget_locked(self) -> None:
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._forget_approx_locked(evicted)
            self.evictions += 1

    def get(self, key: tuple, now: float | None = None):
        now = time.monotonic() if now is None else now
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            value, expires_s = entry
            if now >= expires_s:
                del self._entries[key]
                self._forget_approx_locked(key)
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def get_first(self, keys: Iterable[tuple], now: float | None = None):
        """First live entry among ``keys`` (tried in order), or ``None``.

        One logical lookup: records exactly one hit (some key answered)
        or one miss (none did), however many keys were tried — the
        serving layer's exact-twin-then-own-key probe must not inflate
        the miss count on every approx submission.
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            for key in keys:
                entry = self._entries.get(key)
                if entry is None:
                    continue
                value, expires_s = entry
                if now >= expires_s:
                    del self._entries[key]
                    self._forget_approx_locked(key)
                    self.expirations += 1
                    continue
                self._entries.move_to_end(key)
                self.hits += 1
                return value
            self.misses += 1
            return None

    def put(self, key: tuple, value: object, now: float | None = None) -> None:
        """Cache an exact result; supersedes any approx entries indexed
        under this key (counted as ``upgrades``)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            for approx_key in self._approx_for.pop(key, ()):
                self._exact_of.pop(approx_key, None)
                if self._entries.pop(approx_key, None) is not None:
                    self.upgrades += 1
            if self._entries.pop(key, None) is not None:
                self._forget_approx_locked(key)
            self._entries[key] = (value, now + self.ttl_s)
            self._evict_over_budget_locked()

    def put_approx(
        self, key: tuple, value: object, *, exact_key: tuple,
        now: float | None = None,
    ) -> None:
        """Cache an approximate result under ``key``, indexed against the
        ``exact_key`` whose arrival will supersede it."""
        now = time.monotonic() if now is None else now
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self._forget_approx_locked(key)  # may re-index under a new twin
            self._entries[key] = (value, now + self.ttl_s)
            self._approx_for.setdefault(exact_key, set()).add(key)
            self._exact_of[key] = exact_key
            self._evict_over_budget_locked()

    def invalidate_dataset(self, fingerprint: str) -> int:
        """Drop every entry cached for ``fingerprint`` (the dataset was
        mutated — a stale version must be invalidated, never served).

        Prunes the approx exact-twin index both ways: a removed approx
        entry leaves its index row, and a removed exact entry's pending
        approx keys are forgotten so a later :meth:`put` under a reused
        key cannot "upgrade" entries of a window that no longer exists.
        Returns the number of entries removed (``invalidations`` stat).
        """
        with self._lock:
            stale = [key for key in self._entries if key[0] == fingerprint]
            for key in stale:
                del self._entries[key]
                self._forget_approx_locked(key)
                for approx_key in self._approx_for.pop(key, ()):
                    self._exact_of.pop(approx_key, None)
            self.invalidations += len(stale)
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_s": self.ttl_s,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "upgrades": self.upgrades,
                "invalidations": self.invalidations,
                "approx_indexed": sum(len(v) for v in self._approx_for.values()),
                "hit_rate": round(self.hit_rate, 4),
            }


class ContextPool:
    """Warm engine contexts keyed by ``(backend, parallelism)``.

    ``acquire`` hands out an idle context (renewed, so its tracer/metrics
    are per-job) or creates one; ``release`` returns it to the idle pool
    or stops it when the pool is full.  A context is never shared by two
    concurrent runs — an abandoned (timed-out) run keeps its context
    checked out until the stray thread actually finishes, then releases
    it from that thread's ``finally``.
    """

    def __init__(self, max_idle_per_key: int = 2):
        self.max_idle_per_key = max_idle_per_key
        self._lock = threading.Lock()
        self._idle: dict[tuple, list] = {}
        self.created = 0
        self.reused = 0
        self._closed = False

    def acquire(self, backend: str, parallelism: int | None, *, label: str = "engine"):
        from repro.engine.context import Context

        key = (backend, parallelism)
        with self._lock:
            idle = self._idle.get(key)
            ctx = idle.pop() if idle else None
            if ctx is not None:
                self.reused += 1
        if ctx is not None:
            ctx.renew_run(label=label)
            return ctx
        with self._lock:
            self.created += 1
        ctx = Context(backend=backend, parallelism=parallelism)
        ctx._pool_key = key
        return ctx

    def release(self, ctx) -> None:
        key = getattr(ctx, "_pool_key", (ctx.backend, None))
        # Drop the finished job's cached RDD blocks now rather than at the
        # next acquire: an idle context must not pin a dataset's worth of
        # memory while it waits (renew_run clears again, as a backstop).
        # reset_shipping covers the process backend, whose executor pins
        # its own copies (driver block registry + worker-resident stores).
        ctx.block_manager.clear()
        ctx.executor.reset_shipping()
        with self._lock:
            if not self._closed:
                idle = self._idle.setdefault(key, [])
                if len(idle) < self.max_idle_per_key:
                    idle.append(ctx)
                    return
        ctx.stop()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            contexts = [c for pool in self._idle.values() for c in pool]
            self._idle.clear()
        for ctx in contexts:
            ctx.stop()

    def stats(self) -> dict:
        with self._lock:
            return {
                "idle": sum(len(v) for v in self._idle.values()),
                "created": self.created,
                "reused": self.reused,
            }
