"""Clients for the mining service: in-process and over HTTP.

:class:`LocalClient` talks to a :class:`~repro.serve.service.MiningService`
directly (zero serialization — the embedded deployment); :class:`HttpClient`
speaks the JSON protocol of :mod:`repro.serve.http` with nothing beyond
``urllib``.  Both expose the same verbs (``submit`` / ``status`` /
``result`` / ``wait`` / ``cancel``) plus a blocking ``mine`` convenience
that round-trips one request, so tests and benchmarks can swap transports.
"""

from __future__ import annotations

import dataclasses
import json
import time
import urllib.error
import urllib.request
from urllib.parse import urlencode

from repro.core.registry import MiningConfig
from repro.serve.jobs import (
    ApiError,
    JobState,
    RejectedError,
    ServeError,
    TERMINAL_STATES,
)
from repro.serve.service import MiningService

#: job states (as strings) in which polling should stop
TERMINAL_STATE_VALUES = frozenset(s.value for s in TERMINAL_STATES)

#: connection-level failures worth retrying: the server is starting,
#: restarting, or briefly shedding its listen backlog
_TRANSIENT_CONNECT_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
)


def _is_transient(err: Exception) -> bool:
    if isinstance(err, _TRANSIENT_CONNECT_ERRORS):
        return True
    if isinstance(err, urllib.error.URLError):
        return isinstance(err.reason, _TRANSIENT_CONNECT_ERRORS)
    return False


class LocalClient:
    """In-process client: thin sugar over a service you already hold."""

    def __init__(self, service: MiningService):
        self.service = service

    def submit(self, transactions, config: MiningConfig, **submit_kwargs):
        return self.service.submit(transactions, config, **submit_kwargs)

    def create_dataset(
        self,
        dataset_id: str,
        transactions,
        *,
        replace=False,
        max_window: int | None = None,
        max_age_s: float | None = None,
        flush_rows: int | None = None,
        flush_age_s: float | None = None,
    ) -> dict:
        return self.service.create_dataset(
            dataset_id,
            transactions,
            replace=replace,
            max_window=max_window,
            max_age_s=max_age_s,
            flush_rows=flush_rows,
            flush_age_s=flush_age_s,
        )

    def append_dataset(
        self,
        dataset_id: str,
        transactions,
        *,
        expected_version: int | None = None,
        flush: bool = False,
    ) -> dict:
        return self.service.append_dataset(
            dataset_id,
            transactions,
            expected_version=expected_version,
            flush=flush,
        )

    def dataset_info(self, dataset_id: str) -> dict:
        return self.service.dataset_info(dataset_id)

    def dataset_changes(
        self,
        dataset_id: str,
        *,
        since: int,
        min_support: float,
        max_length: int | None = None,
        candidate_store: str | None = None,
        timeout_s: float = 0.0,
    ) -> dict:
        return self.service.dataset_changes(
            dataset_id,
            since=since,
            min_support=min_support,
            max_length=max_length,
            candidate_store=candidate_store,
            timeout_s=timeout_s,
        )

    def status(self, job_id: str) -> dict:
        return self.service.get(job_id).snapshot()

    def wait(self, job_id: str, timeout: float | None = None):
        job = self.service.wait(job_id, timeout)
        if not job.is_terminal:
            raise ServeError(f"job {job_id} still {job.state.value} after {timeout}s")
        return job

    def result(self, job_id: str) -> dict:
        """The job's mined itemsets (raises unless DONE)."""
        job = self.service.get(job_id)
        if job.state is not JobState.DONE:
            raise ServeError(f"job {job_id} is {job.state.value}, not done")
        return dict(job.result.itemsets)

    def cancel(self, job_id: str) -> bool:
        return self.service.cancel(job_id)

    def mine(self, transactions, config: MiningConfig, timeout: float | None = None):
        """Submit, wait, and return the full :class:`MiningRunResult`."""
        job = self.wait(self.submit(transactions, config).job_id, timeout)
        if job.state is not JobState.DONE:
            raise ServeError(f"job {job.job_id} ended {job.state.value}: {job.error}")
        return job.result


class HttpClient:
    """JSON-over-HTTP client for a running :class:`MiningServer`.

    Transient connection failures (refused/reset while the server starts
    or restarts) are retried with capped exponential backoff
    (``connect_retries`` attempts, ``retry_backoff_s`` doubling up to
    ``max_backoff_s``).  A 429 rejection raises
    :class:`~repro.serve.jobs.RejectedError` carrying the server's
    ``Retry-After`` hint, which :meth:`mine` honours by backing off and
    resubmitting until its deadline.
    """

    def __init__(
        self,
        base_url: str,
        poll_interval_s: float = 0.05,
        connect_retries: int = 4,
        retry_backoff_s: float = 0.1,
        max_backoff_s: float = 2.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.poll_interval_s = poll_interval_s
        self.connect_retries = connect_retries
        self.retry_backoff_s = retry_backoff_s
        self.max_backoff_s = max_backoff_s

    # -- transport ---------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        for attempt in range(self.connect_retries + 1):
            req = urllib.request.Request(
                self.base_url + path,
                data=body,
                method=method,
                headers={"Content-Type": "application/json"} if body else {},
            )
            try:
                with urllib.request.urlopen(req, timeout=30) as resp:
                    return json.loads(resp.read())
            except urllib.error.HTTPError as err:
                try:
                    detail_payload = json.loads(err.read())
                    detail = detail_payload.get("error", "")
                except Exception:  # noqa: BLE001 - best-effort error body
                    detail_payload, detail = {}, ""
                if err.code == 429:
                    header = err.headers.get("Retry-After") if err.headers else None
                    retry_after = detail_payload.get("retry_after_s")
                    if retry_after is None:
                        try:
                            retry_after = float(header)
                        except (TypeError, ValueError):
                            retry_after = 1.0
                    raise RejectedError(
                        f"{method} {path} -> HTTP 429: {detail or err.reason}",
                        retry_after_s=float(retry_after),
                        scope=detail_payload.get("scope", "server"),
                        shard=detail_payload.get("shard"),
                        queue_depth=detail_payload.get("queue_depth"),
                        queue_limit=detail_payload.get("queue_limit"),
                    ) from err
                # structured client error: re-raise with the server's code
                # so callers branch on ``err.code`` ("version_conflict",
                # "unknown_dataset"...) instead of parsing message prose
                raise ApiError(
                    f"{method} {path} -> HTTP {err.code}: {detail or err.reason}",
                    status=err.code,
                    code=detail_payload.get("code", "error"),
                ) from err
            except (urllib.error.URLError, *_TRANSIENT_CONNECT_ERRORS) as err:
                if _is_transient(err) and attempt < self.connect_retries:
                    backoff = min(
                        self.max_backoff_s, self.retry_backoff_s * (2**attempt)
                    )
                    time.sleep(backoff)
                    continue
                reason = getattr(err, "reason", err)
                raise ServeError(f"cannot reach {self.base_url}: {reason}") from err

    # -- verbs -------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(
        self,
        transactions,
        config: MiningConfig | dict,
        *,
        priority: int = 0,
        timeout_s: float | None = None,
        max_retries: int = 0,
        tenant: str = "default",
        pinned=(),
        approx: bool = False,
        dataset: str | None = None,
    ) -> dict:
        """POST the job; returns the server's job snapshot (``job_id`` etc.).

        ``approx=True`` requests the sampling fast tier without touching
        the config object (equivalent to ``config.approx = True``).
        ``dataset`` names a registered dataset instead of shipping raw
        ``transactions`` (pass ``transactions=None``): the job runs on
        the dataset's current version, server-side.
        Raises :class:`RejectedError` on a 429 (queue full / load shed);
        its ``retry_after_s`` says how long to back off before retrying.
        """
        if isinstance(config, MiningConfig):
            if approx and not config.approx:
                # flip the flag before serializing: canonical() only
                # carries the sampling knobs on approx configs, so setting
                # it server-side would lose any non-default knob values
                config = dataclasses.replace(config, approx=True)
            config = config.canonical()
        payload = {
            "config": config,
            "priority": priority,
            "max_retries": max_retries,
            "tenant": tenant,
        }
        if dataset is not None:
            payload["dataset"] = dataset
        else:
            payload["transactions"] = [list(t) for t in transactions]
        if pinned:
            payload["pinned"] = sorted(pinned)
        if approx:
            payload["approx"] = True
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self._request("POST", "/jobs", payload)

    def create_dataset(
        self,
        dataset_id: str,
        transactions,
        *,
        replace: bool = False,
        max_window: int | None = None,
        max_age_s: float | None = None,
        flush_rows: int | None = None,
        flush_age_s: float | None = None,
    ) -> dict:
        """``POST /datasets/<id>``: register a named, versioned dataset.

        ``max_window`` / ``max_age_s`` bound the window (oldest
        transactions retire automatically); ``flush_rows`` /
        ``flush_age_s`` enable the ingest buffer (small appends coalesce
        into one delta update per flush).
        """
        payload = {"transactions": [list(t) for t in transactions]}
        if replace:
            payload["replace"] = True
        for key, value in (
            ("max_window", max_window),
            ("max_age_s", max_age_s),
            ("flush_rows", flush_rows),
            ("flush_age_s", flush_age_s),
        ):
            if value is not None:
                payload[key] = value
        return self._request("POST", f"/datasets/{dataset_id}", payload)

    def append_dataset(
        self,
        dataset_id: str,
        transactions,
        *,
        expected_version: int | None = None,
        flush: bool = False,
    ) -> dict:
        """``POST /datasets/<id>/append``: new version, stale caches dropped.

        On a buffering dataset the delta may only be *staged* (the
        response says ``flushed=false``); ``flush=True`` forces the
        buffer through — with an empty/omitted delta it is a pure
        "flush now".  Raises :class:`~repro.serve.jobs.ApiError` with
        ``code="version_conflict"`` when ``expected_version`` no longer
        matches, ``code="unknown_dataset"`` for an unregistered name, or
        ``code="dataset_retired"`` after a same-name replace.
        """
        payload: dict = {}
        if transactions is not None:
            payload["transactions"] = [list(t) for t in transactions]
        if expected_version is not None:
            payload["expected_version"] = expected_version
        if flush:
            payload["flush"] = True
        return self._request("POST", f"/datasets/{dataset_id}/append", payload)

    def dataset_info(self, dataset_id: str) -> dict:
        """``GET /datasets/<id>``: version, size, fingerprint, warm miners."""
        return self._request("GET", f"/datasets/{dataset_id}")

    def dataset_changes(
        self,
        dataset_id: str,
        *,
        since: int,
        min_support: float,
        max_length: int | None = None,
        candidate_store: str | None = None,
        timeout_s: float = 0.0,
    ) -> dict:
        """``GET /datasets/<id>/changes``: the family diff since ``since``.

        Long-polls server-side up to ``timeout_s`` (capped at ~25s, below
        the client's socket timeout) when ``since`` is already current.
        The payload carries ``added`` / ``removed`` / ``changed`` itemset
        lists, or ``reset=true`` with the full ``family`` when the change
        log no longer covers ``since``.
        """
        params = {"since": int(since), "min_support": min_support}
        if max_length is not None:
            params["max_length"] = max_length
        if candidate_store is not None:
            params["candidate_store"] = candidate_store
        if timeout_s:
            params["timeout_s"] = timeout_s
        return self._request(
            "GET", f"/datasets/{dataset_id}/changes?{urlencode(params)}"
        )

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> bool:
        return bool(self._request("DELETE", f"/jobs/{job_id}").get("cancelled"))

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Poll until the job is terminal; returns the final snapshot.

        A 429 on the status poll (a rate-limited server) is not fatal:
        the loop honours the ``Retry-After`` hint and keeps polling
        until the deadline.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                snapshot = self.status(job_id)
            except RejectedError as err:
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                time.sleep(self._bounded_sleep(err.retry_after_s, deadline))
                continue
            if snapshot["state"] in TERMINAL_STATE_VALUES:
                return snapshot
            if deadline is not None and time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {snapshot['state']} after {timeout}s"
                )
            time.sleep(self.poll_interval_s)

    def _bounded_sleep(self, wanted_s: float, deadline: float | None) -> float:
        sleep_s = max(0.01, wanted_s)
        if deadline is not None:
            sleep_s = min(sleep_s, max(0.0, deadline - time.monotonic()))
        return sleep_s

    def result_detail(self, job_id: str) -> dict:
        """The raw ``GET /results/<id>`` payload (raises unless DONE)."""
        return self._request("GET", f"/results/{job_id}")

    def result(self, job_id: str) -> dict:
        """The job's itemsets as ``{tuple(items): count}`` (raises unless DONE)."""
        from repro.serve.http import itemsets_from_payload

        return itemsets_from_payload(self.result_detail(job_id))

    def mine(
        self,
        transactions,
        config: MiningConfig | dict,
        timeout: float | None = None,
        **submit_kwargs,
    ) -> dict:
        """Submit, poll to completion, return the itemsets mapping.

        When admission control rejects the submit with a 429, back off
        for the server's ``Retry-After`` and resubmit, until ``timeout``
        runs out (then the last :class:`RejectedError` propagates).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                snapshot = self.submit(transactions, config, **submit_kwargs)
                break
            except RejectedError as err:
                if deadline is not None and time.monotonic() >= deadline:
                    raise
                time.sleep(self._bounded_sleep(err.retry_after_s, deadline))
        remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
        final = self.wait(snapshot["job_id"], remaining)
        if final["state"] != JobState.DONE.value:
            raise ServeError(
                f"job {final['job_id']} ended {final['state']}: {final.get('error')}"
            )
        return self.result(final["job_id"])
