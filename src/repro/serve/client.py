"""Clients for the mining service: in-process and over HTTP.

:class:`LocalClient` talks to a :class:`~repro.serve.service.MiningService`
directly (zero serialization — the embedded deployment); :class:`HttpClient`
speaks the JSON protocol of :mod:`repro.serve.http` with nothing beyond
``urllib``.  Both expose the same verbs (``submit`` / ``status`` /
``result`` / ``wait`` / ``cancel``) plus a blocking ``mine`` convenience
that round-trips one request, so tests and benchmarks can swap transports.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.core.registry import MiningConfig
from repro.serve.jobs import JobState, ServeError, TERMINAL_STATES
from repro.serve.service import MiningService

#: job states (as strings) in which polling should stop
TERMINAL_STATE_VALUES = frozenset(s.value for s in TERMINAL_STATES)


class LocalClient:
    """In-process client: thin sugar over a service you already hold."""

    def __init__(self, service: MiningService):
        self.service = service

    def submit(self, transactions, config: MiningConfig, **submit_kwargs):
        return self.service.submit(transactions, config, **submit_kwargs)

    def status(self, job_id: str) -> dict:
        return self.service.get(job_id).snapshot()

    def wait(self, job_id: str, timeout: float | None = None):
        job = self.service.wait(job_id, timeout)
        if not job.is_terminal:
            raise ServeError(f"job {job_id} still {job.state.value} after {timeout}s")
        return job

    def result(self, job_id: str) -> dict:
        """The job's mined itemsets (raises unless DONE)."""
        job = self.service.get(job_id)
        if job.state is not JobState.DONE:
            raise ServeError(f"job {job_id} is {job.state.value}, not done")
        return dict(job.result.itemsets)

    def cancel(self, job_id: str) -> bool:
        return self.service.cancel(job_id)

    def mine(self, transactions, config: MiningConfig, timeout: float | None = None):
        """Submit, wait, and return the full :class:`MiningRunResult`."""
        job = self.wait(self.submit(transactions, config).job_id, timeout)
        if job.state is not JobState.DONE:
            raise ServeError(f"job {job.job_id} ended {job.state.value}: {job.error}")
        return job.result


class HttpClient:
    """JSON-over-HTTP client for a running :class:`MiningServer`."""

    def __init__(self, base_url: str, poll_interval_s: float = 0.05):
        self.base_url = base_url.rstrip("/")
        self.poll_interval_s = poll_interval_s

    # -- transport ---------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        req = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as err:
            try:
                detail = json.loads(err.read()).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error body
                detail = ""
            raise ServeError(
                f"{method} {path} -> HTTP {err.code}: {detail or err.reason}"
            ) from err
        except urllib.error.URLError as err:
            raise ServeError(f"cannot reach {self.base_url}: {err.reason}") from err

    # -- verbs -------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def submit(
        self,
        transactions,
        config: MiningConfig | dict,
        *,
        priority: int = 0,
        timeout_s: float | None = None,
        max_retries: int = 0,
    ) -> dict:
        """POST the job; returns the server's job snapshot (``job_id`` etc.)."""
        if isinstance(config, MiningConfig):
            config = config.canonical()
        payload = {
            "transactions": [list(t) for t in transactions],
            "config": config,
            "priority": priority,
            "max_retries": max_retries,
        }
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self._request("POST", "/jobs", payload)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> bool:
        return bool(self._request("DELETE", f"/jobs/{job_id}").get("cancelled"))

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in TERMINAL_STATE_VALUES:
                return snapshot
            if deadline is not None and time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {snapshot['state']} after {timeout}s"
                )
            time.sleep(self.poll_interval_s)

    def result_detail(self, job_id: str) -> dict:
        """The raw ``GET /results/<id>`` payload (raises unless DONE)."""
        return self._request("GET", f"/results/{job_id}")

    def result(self, job_id: str) -> dict:
        """The job's itemsets as ``{tuple(items): count}`` (raises unless DONE)."""
        from repro.serve.http import itemsets_from_payload

        return itemsets_from_payload(self.result_detail(job_id))

    def mine(
        self, transactions, config: MiningConfig | dict, timeout: float | None = None
    ) -> dict:
        """Submit, poll to completion, return the itemsets mapping."""
        snapshot = self.submit(transactions, config)
        final = self.wait(snapshot["job_id"], timeout)
        if final["state"] != JobState.DONE.value:
            raise ServeError(
                f"job {final['job_id']} ended {final['state']}: {final.get('error')}"
            )
        return self.result(final["job_id"])
