"""Named, versioned, append-only datasets for the serving tier.

A raw ``submit(transactions, ...)`` identifies its dataset by content
fingerprint — immutable by construction.  Sliding-window workloads need
the opposite: one *name* whose contents grow over time, with every
append producing a new **version** (and a new fingerprint, via the
incrementally-extendable :class:`~repro.serve.cache.FingerprintChain`)
so results cached for a stale version are invalidated rather than
served.

:class:`DatasetRegistry` is the name → :class:`ManagedDataset` map a
:class:`~repro.serve.service.MiningService` owns.  Each entry carries
the current window, its version counter and fingerprint chain, and the
dataset's **warm incremental miners** — one
:class:`~repro.core.incremental.IncrementalMiner` per mining key, kept
resident so a re-submit after an append pays one delta pass instead of
a full re-mine.  In router mode every dataset has a single home shard
(consistent-hashed on the *name*, which — unlike the fingerprint — is
stable across appends), so the warm state is never split.

All mutation happens under the entry's :attr:`ManagedDataset.lock`;
the registry lock only guards the name map.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence

from repro.serve.cache import FingerprintChain
from repro.serve.jobs import ApiError


class ManagedDataset:
    """One named dataset: window, version, fingerprint chain, warm miners."""

    def __init__(self, dataset_id: str, transactions: Iterable[Sequence]):
        self.dataset_id = dataset_id
        self.transactions: list = list(transactions)
        if not self.transactions:
            raise ApiError(
                f"dataset {dataset_id!r} must contain at least one transaction"
            )
        self.version = 1
        self.chain = FingerprintChain(self.transactions)
        self.fingerprint = self.chain.hexdigest()
        #: version -> that version's fingerprint.  Appends only ever
        #: extend, so "job snapshot (version, fingerprint) is in here"
        #: proves the snapshot is a prefix of the current window — the
        #: O(1) guard the warm-miner path uses against same-name replace.
        self.versions: dict[int, str] = {1: self.fingerprint}
        self.created_s = time.monotonic()
        self.updated_s = self.created_s
        #: serializes appends, submit snapshots, and warm-miner updates
        self.lock = threading.RLock()
        #: (min_support, max_length, candidate_store) -> IncrementalMiner
        self.miners: dict[tuple, object] = {}

    def append(self, transactions: Iterable[Sequence]) -> tuple[str, str]:
        """Extend the window in place (caller holds :attr:`lock`).

        Returns ``(old_fingerprint, new_fingerprint)`` so the owning
        service can invalidate the stale version's cache entries.  Only
        the delta is hashed — the chain never re-reads the window.
        """
        delta = list(transactions)
        if not delta:
            raise ApiError("append requires at least one transaction")
        old_fp = self.fingerprint
        self.transactions.extend(delta)
        self.fingerprint = self.chain.extend(delta)
        self.version += 1
        self.versions[self.version] = self.fingerprint
        self.updated_s = time.monotonic()
        return old_fp, self.fingerprint

    def info(self) -> dict:
        """JSON-safe summary (the ``GET /datasets/<id>`` payload)."""
        with self.lock:
            return {
                "dataset_id": self.dataset_id,
                "version": self.version,
                "n_transactions": len(self.transactions),
                "fingerprint": self.fingerprint,
                "warm_miners": len(self.miners),
            }


class DatasetRegistry:
    """Thread-safe name → :class:`ManagedDataset` map."""

    def __init__(self):
        self._lock = threading.Lock()
        self._datasets: dict[str, ManagedDataset] = {}
        self.creates = 0
        self.appends = 0

    def create(
        self,
        dataset_id: str,
        transactions: Iterable[Sequence],
        *,
        replace: bool = False,
    ) -> tuple[ManagedDataset, str | None]:
        """Register a new dataset; returns ``(entry, replaced_fingerprint)``.

        ``replaced_fingerprint`` is the old version's fingerprint when
        ``replace=True`` overwrote an existing entry (its cache entries
        must be invalidated), else ``None``.  Without ``replace``, a
        duplicate name raises :class:`ApiError` 409 ``dataset_exists``.
        """
        if not dataset_id or not isinstance(dataset_id, str):
            raise ApiError(
                f"dataset_id must be a non-empty string, got {dataset_id!r}"
            )
        entry = ManagedDataset(dataset_id, transactions)
        with self._lock:
            old = self._datasets.get(dataset_id)
            if old is not None and not replace:
                raise ApiError(
                    f"dataset {dataset_id!r} already exists",
                    status=409,
                    code="dataset_exists",
                )
            self._datasets[dataset_id] = entry
            self.creates += 1
        return entry, (old.fingerprint if old is not None else None)

    def get(self, dataset_id: str) -> ManagedDataset:
        with self._lock:
            entry = self._datasets.get(dataset_id)
        if entry is None:
            raise ApiError(
                f"unknown dataset {dataset_id!r}", status=404, code="unknown_dataset"
            )
        return entry

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._datasets)

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    def stats(self) -> dict:
        with self._lock:
            entries = list(self._datasets.values())
            creates, appends = self.creates, self.appends
        return {
            "datasets": len(entries),
            "creates": creates,
            "appends": appends,
            "warm_miners": sum(len(e.miners) for e in entries),
        }


__all__ = ["DatasetRegistry", "ManagedDataset"]
