"""Named, versioned datasets for the serving tier.

A raw ``submit(transactions, ...)`` identifies its dataset by content
fingerprint — immutable by construction.  Sliding-window workloads need
the opposite: one *name* whose contents evolve over time, with every
window change producing a new **version** (and a new fingerprint, via
the incrementally-extendable
:class:`~repro.serve.cache.FingerprintChain`) so results cached for a
stale version are invalidated rather than served.

:class:`DatasetRegistry` is the name → :class:`ManagedDataset` map a
:class:`~repro.serve.service.MiningService` owns.  Each entry carries
the current window, its version counter and fingerprint chain, the
dataset's **warm incremental miners** — one
:class:`~repro.core.incremental.IncrementalMiner` per mining key, kept
resident so a re-submit after an append pays one delta pass instead of
a full re-mine — and the streaming machinery:

* an **ingest buffer** (``flush_rows`` / ``flush_age_s``) that coalesces
  many small appends into one delta update;
* **window policies** (``max_window`` / ``max_age_s``) that retire the
  oldest transactions automatically on every advance;
* per-mining-key **watches** holding a bounded change log of
  :class:`~repro.core.incremental.FamilyDiff` transitions, feeding the
  ``GET /datasets/<id>/changes`` long-poll.

In router mode every dataset has a single home shard (consistent-hashed
on the *name*, which — unlike the fingerprint — is stable across
appends), so the warm state and the change log are never split.

All mutation happens under the entry's :attr:`ManagedDataset.lock`;
the registry lock only guards the name map and its counters.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_right
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.incremental import FamilyDiff
from repro.serve.cache import FingerprintChain
from repro.serve.jobs import ApiError


@dataclass
class AppendResult:
    """What one :meth:`ManagedDataset.append` actually did.

    ``pre_trim_window`` is the window *after* the delta landed but
    *before* any policy retire — warm miners that are lazily behind fold
    ``pre_trim_window[miner.n_transactions:]`` first, then retire, so
    their window stays in lock-step with the entry's.
    """

    old_version: int
    new_version: int
    old_fingerprint: str
    new_fingerprint: str
    n_appended: int
    n_retired: int
    pre_trim_window: list


@dataclass
class _Watch:
    """Change-feed state for one mining key.

    ``log`` holds contiguous ``(from_version, to_version, FamilyDiff)``
    transitions; the deque bound drops the oldest, and a ``since`` older
    than coverage answers with a full-family reset instead.
    """

    start_version: int | None = None
    log: deque = field(default_factory=lambda: deque(maxlen=64))

    def record(self, from_version: int, to_version: int, diff: FamilyDiff) -> None:
        self.log.append((from_version, to_version, diff))

    def reset(self) -> None:
        self.start_version = None
        self.log.clear()


def _positive_int(value, name: str) -> int | None:
    if value is None:
        return None
    try:
        out = int(value)
    except (TypeError, ValueError):
        raise ApiError(f"{name} must be a positive integer, got {value!r}") from None
    if out < 1:
        raise ApiError(f"{name} must be >= 1, got {value!r}")
    return out


def _positive_float(value, name: str) -> float | None:
    if value is None:
        return None
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ApiError(f"{name} must be a positive number, got {value!r}") from None
    if out <= 0:
        raise ApiError(f"{name} must be > 0, got {value!r}")
    return out


class ManagedDataset:
    """One named dataset: window, version, fingerprint chain, policies,
    ingest buffer, warm miners, and the change-feed watches."""

    def __init__(
        self,
        dataset_id: str,
        transactions: Iterable[Sequence],
        *,
        max_window: int | None = None,
        max_age_s: float | None = None,
        flush_rows: int | None = None,
        flush_age_s: float | None = None,
        changelog_limit: int = 64,
        clock=time.monotonic,
    ):
        self.dataset_id = dataset_id
        self.max_window = _positive_int(max_window, "max_window")
        self.max_age_s = _positive_float(max_age_s, "max_age_s")
        self.flush_rows = _positive_int(flush_rows, "flush_rows")
        self.flush_age_s = _positive_float(flush_age_s, "flush_age_s")
        self.changelog_limit = max(1, int(changelog_limit))
        self.clock = clock
        self.transactions: list = list(transactions)
        if not self.transactions:
            raise ApiError(
                f"dataset {dataset_id!r} must contain at least one transaction"
            )
        if self.max_window is not None and len(self.transactions) > self.max_window:
            self.transactions = self.transactions[-self.max_window :]
        now = self.clock()
        #: per-transaction ingest stamps (parallel to ``transactions``,
        #: monotonic non-decreasing) — drives the ``max_age_s`` policy
        self.arrivals: list[float] = [now] * len(self.transactions)
        self.version = 1
        self.chain = FingerprintChain(self.transactions)
        self.fingerprint = self.chain.hexdigest()
        #: version -> that version's fingerprint, for the *retained*
        #: versions only: the current one plus any pinned by in-flight
        #: job snapshots.  A hit proves the snapshot is a prefix of the
        #: current window — the O(1) guard the warm-miner path uses —
        #: because retires clear the map (old versions stop being
        #: prefixes) and unpinned stale versions are pruned on advance
        #: (they would otherwise leak one entry per append, forever).
        self.versions: dict[int, str] = {1: self.fingerprint}
        #: version -> refcount of in-flight jobs snapshotting it
        self._pins: dict[int, int] = {}
        self.created_s = now
        self.updated_s = now
        #: serializes appends, submit snapshots, and warm-miner updates
        self.lock = threading.RLock()
        #: notified on every version advance (and on retirement) — the
        #: ``/changes`` long-poll waits here
        self.changed = threading.Condition(self.lock)
        #: (min_support, max_length, candidate_store) -> IncrementalMiner
        self.miners: dict[tuple, object] = {}
        #: mining key -> _Watch (change-feed subscribers)
        self.watches: dict[tuple, _Watch] = {}
        #: True once replaced via ``create(replace=True)`` — appends to
        #: a stale reference get a 409 instead of mutating a zombie
        self.retired = False
        self._buffer: list = []
        self._buffer_opened_s: float | None = None
        self.retires = 0

    # -- ingest buffer -----------------------------------------------------
    @property
    def buffering(self) -> bool:
        """True when appends should be coalesced rather than applied."""
        return self.flush_rows is not None or self.flush_age_s is not None

    @property
    def pending_buffered(self) -> int:
        return len(self._buffer)

    def buffer_add(self, delta: list) -> int:
        """Stage a delta in the ingest buffer (caller holds :attr:`lock`)."""
        if self._buffer_opened_s is None and delta:
            self._buffer_opened_s = self.clock()
        self._buffer.extend(delta)
        return len(self._buffer)

    def buffer_ready(self, now: float | None = None) -> bool:
        """Has a size or age trigger fired for the staged rows?"""
        if not self._buffer:
            return False
        if self.flush_rows is not None and len(self._buffer) >= self.flush_rows:
            return True
        if self.flush_age_s is not None and self._buffer_opened_s is not None:
            if (now if now is not None else self.clock()) - self._buffer_opened_s >= self.flush_age_s:
                return True
        return False

    def take_buffer(self) -> list:
        out = self._buffer
        self._buffer = []
        self._buffer_opened_s = None
        return out

    # -- window policies ---------------------------------------------------
    def _excess(self, now: float) -> int:
        """How many oldest transactions the policies say to retire.

        Clamped so the window never empties: the last transaction stays
        even when fully expired (an empty window has no fingerprint and
        no miner state).
        """
        n = 0
        if self.max_window is not None and len(self.transactions) > self.max_window:
            n = len(self.transactions) - self.max_window
        if self.max_age_s is not None:
            n = max(n, bisect_right(self.arrivals, now - self.max_age_s))
        return min(n, len(self.transactions) - 1)

    def age_retire_due(self, now: float | None = None) -> bool:
        """True when ``max_age_s`` alone calls for a retire right now."""
        if self.max_age_s is None:
            return False
        return self._excess(now if now is not None else self.clock()) > 0

    # -- version pins ------------------------------------------------------
    def pin_version(self, version: int) -> None:
        """Keep ``version`` in :attr:`versions` while a job snapshot of it
        is in flight (caller holds :attr:`lock`)."""
        self._pins[version] = self._pins.get(version, 0) + 1

    def release_version(self, version: int) -> None:
        with self.lock:
            left = self._pins.get(version, 0) - 1
            if left > 0:
                self._pins[version] = left
            else:
                self._pins.pop(version, None)
            self._prune_versions()

    def _prune_versions(self) -> None:
        keep = set(self._pins)
        keep.add(self.version)
        for version in [v for v in self.versions if v not in keep]:
            del self.versions[version]

    # -- the one mutation path ---------------------------------------------
    def append(self, transactions: Iterable[Sequence], now: float | None = None):
        """Advance the window: apply ``transactions`` (may be empty) and
        any due policy retire as ONE version bump (caller holds
        :attr:`lock`).

        Returns an :class:`AppendResult`, or ``None`` when there was
        nothing to do (empty delta, no retire due).  The delta is
        validated and hashed into a *copy* of the fingerprint chain
        before any state mutates — a poisoned delta (unhashable item,
        un-serializable row) leaves the entry exactly as it was.
        """
        if self.retired:
            raise ApiError(
                f"dataset {self.dataset_id!r} was replaced; re-resolve it",
                status=409,
                code="dataset_retired",
            )
        delta = list(transactions)
        now = self.clock() if now is None else now
        if not delta and self._excess(now) == 0:
            return None
        trial = self.chain.copy()
        if delta:
            try:
                trial.extend(delta)
            except ApiError:
                raise
            except Exception as exc:
                raise ApiError(f"delta could not be fingerprinted: {exc}") from exc
        old_fp, old_version = self.fingerprint, self.version
        self.transactions.extend(delta)
        self.arrivals.extend([now] * len(delta))
        pre_trim = self.transactions
        n_retire = self._excess(now)
        if n_retire:
            pre_trim = list(self.transactions)
            del self.transactions[: n_retire]
            del self.arrivals[: n_retire]
            # Retired rows are gone from the front: the append-only chain
            # cannot express that, so rebuild it from the trimmed window
            # (O(window) hashing — bounded by the policy itself).  Every
            # retained version stops being a prefix of the new window, so
            # the prefix-guard map must empty — pinned snapshots then
            # fail the guard and their jobs fall back to a cold run,
            # which is exactly the never-serve-stale behavior.
            self.chain = FingerprintChain(self.transactions)
            self.fingerprint = self.chain.hexdigest()
            self.versions.clear()
            self.retires += n_retire
        else:
            self.chain = trial
            self.fingerprint = trial.hexdigest()
        self.version += 1
        self.versions[self.version] = self.fingerprint
        self._prune_versions()
        self.updated_s = now
        return AppendResult(
            old_version=old_version,
            new_version=self.version,
            old_fingerprint=old_fp,
            new_fingerprint=self.fingerprint,
            n_appended=len(delta),
            n_retired=n_retire,
            pre_trim_window=pre_trim,
        )

    # -- change feed -------------------------------------------------------
    def watch(self, mining_key: tuple) -> _Watch:
        """The watch for ``mining_key``, created on first use (caller
        holds :attr:`lock`)."""
        watch = self.watches.get(mining_key)
        if watch is None:
            watch = _Watch(log=deque(maxlen=self.changelog_limit))
            self.watches[mining_key] = watch
        return watch

    def changes_since(self, mining_key: tuple, since: int) -> FamilyDiff | None:
        """The composed diff taking version ``since`` to the current
        version, or ``None`` when the log no longer covers ``since``
        (watch created later, log overflowed, or a reset) — the caller
        then ships the full family instead.
        """
        watch = self.watches.get(mining_key)
        if watch is None or watch.start_version is None:
            return None
        if since == self.version:
            return FamilyDiff()
        log = list(watch.log)
        start = next(
            (i for i, (from_v, _, _) in enumerate(log) if from_v == since), None
        )
        if start is None:
            return None
        return FamilyDiff.compose(diff for _, _, diff in log[start:])

    def info(self) -> dict:
        """JSON-safe summary (the ``GET /datasets/<id>`` payload)."""
        with self.lock:
            return {
                "dataset_id": self.dataset_id,
                "version": self.version,
                "n_transactions": len(self.transactions),
                "fingerprint": self.fingerprint,
                "warm_miners": len(self.miners),
                "buffered": len(self._buffer),
                "watches": len(self.watches),
                "retired": self.retired,
                "retired_transactions": self.retires,
                "policy": {
                    "max_window": self.max_window,
                    "max_age_s": self.max_age_s,
                    "flush_rows": self.flush_rows,
                    "flush_age_s": self.flush_age_s,
                },
            }


class DatasetRegistry:
    """Thread-safe name → :class:`ManagedDataset` map."""

    def __init__(self):
        self._lock = threading.Lock()
        self._datasets: dict[str, ManagedDataset] = {}
        self.creates = 0
        self.appends = 0
        self.flushes = 0

    def create(
        self,
        dataset_id: str,
        transactions: Iterable[Sequence],
        *,
        replace: bool = False,
        **policy,
    ) -> tuple[ManagedDataset, ManagedDataset | None]:
        """Register a new dataset; returns ``(entry, replaced_entry)``.

        ``replaced_entry`` is the old :class:`ManagedDataset` when
        ``replace=True`` overwrote an existing name — the owning service
        retires it under *its own* lock before invalidating its cache
        entries, so a concurrent append through a stale reference either
        lands before the barrier (and is invalidated with the rest) or
        gets a 409.  Without ``replace``, a duplicate name raises
        :class:`ApiError` 409 ``dataset_exists``.
        """
        if not dataset_id or not isinstance(dataset_id, str):
            raise ApiError(
                f"dataset_id must be a non-empty string, got {dataset_id!r}"
            )
        entry = ManagedDataset(dataset_id, transactions, **policy)
        with self._lock:
            old = self._datasets.get(dataset_id)
            if old is not None and not replace:
                raise ApiError(
                    f"dataset {dataset_id!r} already exists",
                    status=409,
                    code="dataset_exists",
                )
            self._datasets[dataset_id] = entry
            self.creates += 1
        return entry, old

    def record_append(self) -> None:
        """Count one accepted append call (under the registry lock — the
        same lock :meth:`stats` reads under, so metrics cannot tear)."""
        with self._lock:
            self.appends += 1

    def record_flush(self) -> None:
        """Count one applied window advance (buffered rows folded in)."""
        with self._lock:
            self.flushes += 1

    def get(self, dataset_id: str) -> ManagedDataset:
        with self._lock:
            entry = self._datasets.get(dataset_id)
        if entry is None:
            raise ApiError(
                f"unknown dataset {dataset_id!r}", status=404, code="unknown_dataset"
            )
        return entry

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._datasets)

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    def stats(self) -> dict:
        with self._lock:
            entries = list(self._datasets.values())
            creates, appends, flushes = self.creates, self.appends, self.flushes
        return {
            "datasets": len(entries),
            "creates": creates,
            "appends": appends,
            "flushes": flushes,
            "warm_miners": sum(len(e.miners) for e in entries),
            "buffered": sum(e.pending_buffered for e in entries),
            "retired_transactions": sum(e.retires for e in entries),
            "watches": sum(len(e.watches) for e in entries),
        }


__all__ = ["AppendResult", "DatasetRegistry", "ManagedDataset"]
