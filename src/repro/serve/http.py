"""Stdlib HTTP front-end for :class:`~repro.serve.service.MiningService`.

JSON over ``http.server`` — no third-party dependencies:

==========================  =================================================
``POST /jobs``              submit ``{"transactions": [[...], ...] |
                            "dataset": "<id>",
                            "config": {"min_support": ..., ...},
                            "priority"/"timeout_s"/"max_retries"/"tenant"/
                            "pinned"/"approx"}`` → 202 with the job snapshot
                            (200 when memoized; 429 + ``Retry-After`` when
                            admission control or load shedding rejects)
``GET /jobs/<id>``          lifecycle snapshot (state, attempts, timings...)
``DELETE /jobs/<id>``       cancel (queued or running)
``GET /results/<id>``       mined itemsets once DONE (409 with the state
                            while the job is still in flight)
``POST /datasets/<id>``     register a named, versioned dataset
                            ``{"transactions": [...], "replace": bool,
                            "max_window"/"max_age_s" (window policies),
                            "flush_rows"/"flush_age_s" (ingest buffer)}``
                            (409 ``dataset_exists`` on duplicate names)
``POST /datasets/<id>/append``  append ``{"transactions": [...],
                            "expected_version": int?, "flush": bool}``: on
                            a buffering dataset the delta is staged until
                            a flush trigger fires; otherwise new version +
                            new fingerprint, stale cached results
                            invalidated (409 ``version_conflict`` /
                            ``dataset_retired``, 404 ``unknown_dataset``)
``GET /datasets/<id>``      version, size, fingerprint, warm-miner count,
                            buffered rows, policies
``GET /datasets/<id>/changes``  the change feed: ``?since=<version>&
                            min_support=<s>[&max_length=][&candidate_store=]
                            [&timeout_s=]`` → the family diff
                            (added/removed/count-changed frequent itemsets)
                            from ``since`` to the current version;
                            long-polls up to ``timeout_s`` when already
                            current; ``reset=true`` + full family when the
                            change log no longer covers ``since``
``GET /healthz``            liveness + worker count
``GET /metrics``            queue depth, per-state job counts, cache hit
                            rates, per-job engine-metrics summaries
==========================  =================================================

Error responses carry a machine-usable ``code`` next to the human
``error`` message (``bad_request``, ``unknown_job``, ``unknown_dataset``,
``dataset_exists``, ``version_conflict``, ``not_done``, ``rejected``,
``unknown_route``) — :class:`~repro.serve.client.HttpClient` re-raises
them as :class:`~repro.serve.jobs.ApiError` so callers branch on the
code, not on message prose.

``MiningServer`` runs the whole stack in-process on an ephemeral port —
the tests and the CI smoke step use it; ``repro serve`` keeps it in the
foreground.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import fields as dataclass_fields
from dataclasses import replace as dc_replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.common.errors import MiningError
from repro.core.registry import MiningConfig
from repro.serve.jobs import ApiError, JobState, RejectedError, ServeError
from repro.serve.planner import CostPlanner
from repro.serve.router import ShardRouter
from repro.serve.service import MiningService

_CONFIG_FIELDS = {f.name for f in dataclass_fields(MiningConfig)}

#: top-level keys POST /jobs accepts; anything else is a 400 (typos like
#: ``priorty`` must not silently fall back to defaults)
_SUBMIT_FIELDS = {
    "transactions", "dataset", "config", "priority", "timeout_s",
    "max_retries", "tenant", "pinned", "approx",
}

#: body keys for POST /datasets/<id> and POST /datasets/<id>/append
_CREATE_FIELDS = {
    "transactions", "replace",
    "max_window", "max_age_s", "flush_rows", "flush_age_s",
}
_APPEND_FIELDS = {"transactions", "expected_version", "flush"}

#: query keys for GET /datasets/<id>/changes
_CHANGES_PARAMS = {"since", "min_support", "max_length", "candidate_store", "timeout_s"}


def config_from_dict(payload: dict) -> MiningConfig:
    """Build a :class:`MiningConfig` from a JSON object, rejecting unknown
    keys with a clear error instead of a ``TypeError`` deep in dataclasses."""
    if not isinstance(payload, dict):
        raise ServeError(f"config must be an object, got {type(payload).__name__}")
    unknown = set(payload) - _CONFIG_FIELDS
    if unknown:
        raise ServeError(
            f"unknown config field(s) {sorted(unknown)}; valid: {sorted(_CONFIG_FIELDS)}"
        )
    if "min_support" not in payload:
        raise ServeError("config.min_support is required")
    return MiningConfig(**payload)


def result_payload(job) -> dict:
    """JSON form of a DONE job's :class:`MiningRunResult`.

    Approximate results (``repro.core.approx``) carry an extra
    ``approx`` provenance block; its *absence* on a result served for an
    approx submission means the cache answered from the exact twin.
    """
    result = job.result
    payload = {
        "job_id": job.job_id,
        "algorithm": result.algorithm,
        "min_support": result.min_support,
        "n_transactions": result.n_transactions,
        "num_itemsets": result.num_itemsets,
        "total_seconds": result.total_seconds,
        "via": job.via,
        "itemsets": [[list(itemset), count] for itemset, count in result.itemsets.items()],
    }
    if hasattr(result, "verified_exact"):
        payload["approx"] = {
            "n_samples": result.n_samples,
            "sample_frac": result.sample_frac,
            "ratio": result.ratio,
            "seed": result.seed,
            "sample_sizes": list(result.sample_sizes),
            "candidates_verified": result.candidates_verified,
            "border_violations": [list(v) for v in result.border_violations],
            "verified_exact": result.verified_exact,
        }
    return payload


def itemsets_from_payload(payload: dict) -> dict:
    """Inverse of :func:`result_payload` for the ``itemsets`` field."""
    return {tuple(itemset): count for itemset, count in payload["itemsets"]}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> MiningService | ShardRouter:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
        if not self.server.quiet:  # type: ignore[attr-defined]
            super().log_message(fmt, *args)

    # -- plumbing ----------------------------------------------------------
    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServeError("request body required")
        try:
            payload = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as err:
            raise ServeError(f"invalid JSON body: {err}") from err
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    def _job_or_404(self, job_id: str):
        try:
            return self.service.get(job_id)
        except ServeError:
            self._send_json(
                404, {"error": f"unknown job {job_id!r}", "code": "unknown_job"}
            )
            return None

    def _no_route(self, method: str) -> None:
        self._send_json(
            404,
            {"error": f"no route for {method} {self.path}", "code": "unknown_route"},
        )

    def _txns_from(self, payload: dict) -> list:
        transactions = payload.get("transactions")
        if not isinstance(transactions, list) or not transactions:
            raise ServeError("transactions must be a non-empty list of lists")
        return transactions

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlsplit(self.path)
        path = url.path.rstrip("/")
        if path == "/healthz":
            self._send_json(200, self.service.healthz())
        elif path == "/metrics":
            self._send_json(200, self.service.metrics())
        elif path.startswith("/jobs/"):
            job = self._job_or_404(path.removeprefix("/jobs/"))
            if job is not None:
                self._send_json(200, job.snapshot())
        elif path.startswith("/results/"):
            job = self._job_or_404(path.removeprefix("/results/"))
            if job is None:
                return
            if job.state is JobState.DONE:
                self._send_json(200, result_payload(job))
            else:
                self._send_json(
                    409,
                    {
                        "error": f"job is {job.state.value}, not done",
                        "code": "not_done",
                        **job.snapshot(),
                    },
                )
        elif path.startswith("/datasets/"):
            rest = path.removeprefix("/datasets/")
            try:
                if rest.endswith("/changes") and rest.removesuffix("/changes"):
                    dataset_id = rest.removesuffix("/changes")
                    if "/" in dataset_id:
                        self._no_route("GET")
                        return
                    self._get_changes(dataset_id, url.query)
                elif rest and "/" not in rest:
                    self._send_json(200, self.service.dataset_info(rest))
                else:
                    self._no_route("GET")
            except ApiError as err:
                self._send_json(err.status, err.payload())
            except (ServeError, MiningError, TypeError, ValueError) as err:
                self._send_json(400, {"error": str(err), "code": "bad_request"})
        else:
            self._no_route("GET")

    def _get_changes(self, dataset_id: str, query: str) -> None:
        params = {k: v[-1] for k, v in parse_qs(query).items()}
        unknown = set(params) - _CHANGES_PARAMS
        if unknown:
            raise ServeError(
                f"unknown query param(s) {sorted(unknown)}; "
                f"valid: {sorted(_CHANGES_PARAMS)}"
            )
        for required in ("since", "min_support"):
            if required not in params:
                raise ServeError(f"query param {required!r} is required")
        max_length = params.get("max_length")
        payload = self.service.dataset_changes(
            dataset_id,
            since=int(params["since"]),
            min_support=float(params["min_support"]),
            max_length=int(max_length) if max_length is not None else None,
            candidate_store=params.get("candidate_store"),
            timeout_s=float(params.get("timeout_s", 0.0)),
        )
        self._send_json(200, payload)

    def do_POST(self) -> None:  # noqa: N802
        path = urlsplit(self.path).path.rstrip("/")
        try:
            if path == "/jobs":
                self._post_job()
            elif path.startswith("/datasets/"):
                rest = path.removeprefix("/datasets/")
                if rest.endswith("/append") and rest.removesuffix("/append"):
                    dataset_id = rest.removesuffix("/append")
                    if "/" in dataset_id:
                        self._no_route("POST")
                        return
                    self._post_append(dataset_id)
                elif rest and "/" not in rest:
                    self._post_create(rest)
                else:
                    self._no_route("POST")
            else:
                self._no_route("POST")
        except RejectedError as err:
            # admission control / load shedding: structured 429 with a
            # machine-usable backoff hint (integer seconds per RFC 9110,
            # fractional seconds in the body)
            self._send_json(
                429,
                {**err.payload(), "code": "rejected"},
                headers={"Retry-After": str(max(1, math.ceil(err.retry_after_s)))},
            )
        except ApiError as err:
            # requests the service refused with a specific status + code
            # (unknown_dataset, dataset_exists, version_conflict...)
            self._send_json(err.status, err.payload())
        except (ServeError, MiningError, TypeError, ValueError) as err:
            # TypeError/ValueError cover malformed-but-valid-JSON payloads:
            # a string min_support tripping __post_init__'s comparison, a
            # non-numeric priority, a non-iterable transaction element hit
            # during fingerprinting — all client errors, not server faults.
            self._send_json(400, {"error": str(err), "code": "bad_request"})

    def _post_job(self) -> None:
        payload = self._read_json()
        unknown = set(payload) - _SUBMIT_FIELDS
        if unknown:
            raise ServeError(
                f"unknown field(s) {sorted(unknown)}; "
                f"valid: {sorted(_SUBMIT_FIELDS)}"
            )
        dataset = payload.get("dataset")
        transactions = None
        if dataset is not None:
            if payload.get("transactions") is not None:
                raise ServeError("pass transactions or dataset, not both")
            if not isinstance(dataset, str) or not dataset:
                raise ServeError("dataset must be a non-empty dataset id string")
        else:
            transactions = self._txns_from(payload)
        config_payload = payload.get("config") or {}
        config = config_from_dict(config_payload)
        if payload.get("approx"):
            # top-level sugar for the fast tier: flips the config
            # knob without the client rebuilding the config object
            config = dc_replace(config, approx=True)
        submit_kwargs = dict(
            priority=int(payload.get("priority", 0)),
            timeout_s=payload.get("timeout_s"),
            max_retries=int(payload.get("max_retries", 0)),
            tenant=str(payload.get("tenant", "default")),
        )
        if dataset is not None:
            submit_kwargs["dataset_id"] = dataset
        if isinstance(self.service, ShardRouter):
            # a knob is pinned when its value is non-default or when it
            # is named here — "pinned" lets a caller force-keep a
            # default-valued knob the planner would otherwise choose
            submit_kwargs["pinned"] = set(payload.get("pinned") or ())
        job = self.service.submit(transactions, config, **submit_kwargs)
        self._send_json(200 if job.is_terminal else 202, job.snapshot())

    def _post_create(self, dataset_id: str) -> None:
        payload = self._read_json()
        unknown = set(payload) - _CREATE_FIELDS
        if unknown:
            raise ServeError(
                f"unknown field(s) {sorted(unknown)}; valid: {sorted(_CREATE_FIELDS)}"
            )
        info = self.service.create_dataset(
            dataset_id,
            self._txns_from(payload),
            replace=bool(payload.get("replace", False)),
            max_window=payload.get("max_window"),
            max_age_s=payload.get("max_age_s"),
            flush_rows=payload.get("flush_rows"),
            flush_age_s=payload.get("flush_age_s"),
        )
        self._send_json(201, info)

    def _post_append(self, dataset_id: str) -> None:
        payload = self._read_json()
        unknown = set(payload) - _APPEND_FIELDS
        if unknown:
            raise ServeError(
                f"unknown field(s) {sorted(unknown)}; valid: {sorted(_APPEND_FIELDS)}"
            )
        expected = payload.get("expected_version")
        if expected is not None:
            expected = int(expected)
        flush = bool(payload.get("flush", False))
        # flush=true with no (or an empty) delta is a pure "flush now"
        transactions = (
            self._txns_from(payload)
            if not flush or payload.get("transactions")
            else None
        )
        info = self.service.append_dataset(
            dataset_id, transactions, expected_version=expected, flush=flush
        )
        self._send_json(200, info)

    def do_DELETE(self) -> None:  # noqa: N802
        path = self.path.rstrip("/")
        if not path.startswith("/jobs/"):
            self._send_json(404, {"error": f"no route for DELETE {self.path}"})
            return
        job = self._job_or_404(path.removeprefix("/jobs/"))
        if job is not None:
            cancelled = self.service.cancel(job.job_id)
            self._send_json(200, {"job_id": job.job_id, "cancelled": cancelled})


class MiningServer:
    """A :class:`MiningService` — or a :class:`ShardRouter` over several —
    behind a threading HTTP server.

    ``port=0`` binds an ephemeral port (read it back from ``.port``)::

        with MiningServer(port=0, n_workers=4) as server:
            client = HttpClient(server.url)
            ...

    ``shards > 1`` (or ``planner=True``) puts a :class:`ShardRouter` in
    front: consistent-hash routing by dataset fingerprint, per-shard
    bounded queues with 429s, spill-over, and optional cost-based
    planning::

        with MiningServer(port=0, shards=4, queue_limit=16, planner=True):
            ...

    The server owns its service unless one is passed in (which may be a
    ``MiningService`` or a ``ShardRouter``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        service: MiningService | ShardRouter | None = None,
        quiet: bool = True,
        shards: int = 1,
        queue_limit: int | None = None,
        planner: bool | CostPlanner = False,
        **service_kwargs,
    ):
        self._owns_service = service is None
        if service is None:
            if shards > 1 or planner:
                if queue_limit is not None:
                    service_kwargs["queue_limit"] = queue_limit  # else router default
                service = ShardRouter(
                    n_shards=max(1, shards),
                    planner=(
                        planner if isinstance(planner, CostPlanner)
                        else CostPlanner() if planner else None
                    ),
                    **service_kwargs,
                )
            else:
                service = MiningService(queue_limit=queue_limit, **service_kwargs)
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._httpd.quiet = quiet  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._serving = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MiningServer":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` CLI path)."""
        try:
            self._serving = True
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            self.close()

    def close(self) -> None:
        if self._serving:
            self._serving = False
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._owns_service:
            self.service.shutdown()

    def __enter__(self) -> "MiningServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "MiningServer",
    "config_from_dict",
    "itemsets_from_payload",
    "result_payload",
]
