"""Job model for the mining service.

A :class:`Job` is one submitted mining request plus its full lifecycle
trail: state transitions, timestamps, attempt count, error, and (when
finished) the :class:`~repro.core.results.MiningRunResult`.  Jobs move
through::

    PENDING ──▶ RUNNING ──▶ DONE
       │           ├──────▶ FAILED      (error, retries exhausted)
       │           ├──────▶ TIMED_OUT   (deadline fired mid-run)
       └───────────┴──────▶ CANCELLED   (client cancel, queued or running)

State is only ever mutated under the owning service's lock; readers get
point-in-time :meth:`Job.snapshot` dicts, which are also the HTTP
status-endpoint payloads.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ReproError
from repro.core.registry import MiningConfig


class ServeError(ReproError):
    """Raised for invalid service requests (unknown job, bad payload...)."""


class ApiError(ServeError):
    """A request the service refuses with a specific HTTP status + code.

    The structured half of the HTTP error contract: the front-end maps it
    to ``{"error": message, "code": code}`` with status ``status``, and
    :class:`~repro.serve.client.HttpClient` re-raises it client-side so a
    caller can branch on ``code`` (``"version_conflict"``,
    ``"unknown_dataset"``...) instead of parsing prose.
    """

    def __init__(self, message: str, *, status: int = 400, code: str = "bad_request"):
        super().__init__(message)
        self.status = status
        self.code = code

    def payload(self) -> dict:
        """The JSON body the error response carries."""
        return {"error": str(self), "code": self.code}


class RejectedError(ServeError):
    """Admission control refused a job — the 429 of the serving tier.

    Carries enough structure for a client to back off intelligently:
    ``retry_after_s`` (the server's load-based estimate of when a slot
    frees up), the rejecting ``scope`` (one shard vs. the whole router),
    and the queue numbers that triggered the rejection.
    """

    def __init__(
        self,
        message: str,
        *,
        retry_after_s: float = 1.0,
        scope: str = "shard",
        shard: str | None = None,
        queue_depth: int | None = None,
        queue_limit: int | None = None,
    ):
        super().__init__(message)
        self.retry_after_s = max(0.0, retry_after_s)
        self.scope = scope
        self.shard = shard
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit

    def payload(self) -> dict:
        """The JSON body a 429 response carries."""
        return {
            "error": str(self),
            "rejected": True,
            "scope": self.scope,
            "shard": self.shard,
            "queue_depth": self.queue_depth,
            "queue_limit": self.queue_limit,
            "retry_after_s": round(self.retry_after_s, 3),
        }


class JobState(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"


#: States a job can never leave.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT}
)

_job_ids = itertools.count(1)


def _next_job_id() -> str:
    return f"job-{next(_job_ids)}"


@dataclass
class JobRequest:
    """Everything a client specifies for one mining job."""

    config: MiningConfig
    priority: int = 0  # lower runs first; ties FIFO
    timeout_s: float | None = None
    max_retries: int = 0
    retry_backoff_s: float = 0.05  # doubles per retry
    tenant: str = "default"  # fair-share scheduling bucket

    def __post_init__(self):
        if self.max_retries < 0:
            raise ServeError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServeError(f"timeout_s must be positive, got {self.timeout_s}")
        if not self.tenant or not isinstance(self.tenant, str):
            raise ServeError(f"tenant must be a non-empty string, got {self.tenant!r}")


@dataclass
class Job:
    """One submission's identity, request, and lifecycle record."""

    request: JobRequest
    dataset_fingerprint: str
    job_id: str = field(default_factory=_next_job_id)
    state: JobState = JobState.PENDING
    submitted_s: float = field(default_factory=time.monotonic)
    started_s: float | None = None
    finished_s: float | None = None
    attempts: int = 0
    error: str | None = None
    result: object | None = None  # MiningRunResult when DONE
    #: how the result was produced: "run", "memoized" (result-cache hit at
    #: submit time) or "coalesced" (attached to an identical in-flight job)
    via: str = "run"
    coalesced_with: str | None = None
    #: name of the MiningService shard that accepted the job (router mode)
    shard: str | None = None
    #: knobs the cost-based planner chose for this job, e.g.
    #: ``{"backend": "serial", "num_partitions": 2}`` (None = no planner)
    planned: dict | None = None
    #: named-dataset provenance: which managed dataset (and which version
    #: of it) the job's transaction snapshot came from; None for raw
    #: transaction submissions
    dataset_id: str | None = None
    dataset_version: int | None = None
    #: True when the planner rerouted an exact submission onto the
    #: approximate fast tier — surfaced top-level so a caller who never
    #: asked for approximation sees the substitution in every snapshot,
    #: not only in the result's provenance block
    fast_tier: bool = False
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)
    #: the submitted transactions, pinned until the job is terminal so
    #: DatasetCache eviction under memory pressure can never fail an
    #: accepted job (admission control bounds how many pins exist)
    _txns: object | None = field(default=None, repr=False)
    #: True while the job sits in a tenant queue (service-internal; used to
    #: keep the admission-control depth counter exact under lazy removal)
    _queued: bool = field(default=False, repr=False)
    #: the ManagedDataset whose version this job pinned at submit time;
    #: the pin (and this reference) is released in _finish_locked so the
    #: entry's version map can prune entries no in-flight job needs
    _dataset_entry: object | None = field(default=None, repr=False)

    @property
    def result_key(self) -> tuple[str, str]:
        """Memoization key: (dataset fingerprint, config content hash)."""
        return (self.dataset_fingerprint, self.request.config.cache_key())

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; True when it did."""
        return self.done_event.wait(timeout)

    def snapshot(self) -> dict:
        """JSON-safe point-in-time status (the ``GET /jobs/<id>`` payload)."""
        now = time.monotonic()
        out = {
            "job_id": self.job_id,
            "state": self.state.value,
            "algorithm": self.request.config.algorithm,
            "min_support": self.request.config.min_support,
            "dataset_fingerprint": self.dataset_fingerprint,
            "priority": self.request.priority,
            "tenant": self.request.tenant,
            "attempts": self.attempts,
            "via": self.via,
            "error": self.error,
            "coalesced_with": self.coalesced_with,
            "shard": self.shard,
            "dataset_id": self.dataset_id,
            "dataset_version": self.dataset_version,
            "planned": self.planned,
            "fast_tier": self.fast_tier,
            "queued_seconds": round(
                (self.started_s or self.finished_s or now) - self.submitted_s, 6
            ),
            "run_seconds": (
                round((self.finished_s or now) - self.started_s, 6)
                if self.started_s is not None
                else None
            ),
        }
        if self.state is JobState.DONE and self.result is not None:
            out["num_itemsets"] = self.result.num_itemsets
        return out
