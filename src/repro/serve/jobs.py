"""Job model for the mining service.

A :class:`Job` is one submitted mining request plus its full lifecycle
trail: state transitions, timestamps, attempt count, error, and (when
finished) the :class:`~repro.core.results.MiningRunResult`.  Jobs move
through::

    PENDING ──▶ RUNNING ──▶ DONE
       │           ├──────▶ FAILED      (error, retries exhausted)
       │           ├──────▶ TIMED_OUT   (deadline fired mid-run)
       └───────────┴──────▶ CANCELLED   (client cancel, queued or running)

State is only ever mutated under the owning service's lock; readers get
point-in-time :meth:`Job.snapshot` dicts, which are also the HTTP
status-endpoint payloads.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ReproError
from repro.core.registry import MiningConfig


class ServeError(ReproError):
    """Raised for invalid service requests (unknown job, bad payload...)."""


class JobState(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"


#: States a job can never leave.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMED_OUT}
)

_job_ids = itertools.count(1)


def _next_job_id() -> str:
    return f"job-{next(_job_ids)}"


@dataclass
class JobRequest:
    """Everything a client specifies for one mining job."""

    config: MiningConfig
    priority: int = 0  # lower runs first; ties FIFO
    timeout_s: float | None = None
    max_retries: int = 0
    retry_backoff_s: float = 0.05  # doubles per retry

    def __post_init__(self):
        if self.max_retries < 0:
            raise ServeError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServeError(f"timeout_s must be positive, got {self.timeout_s}")


@dataclass
class Job:
    """One submission's identity, request, and lifecycle record."""

    request: JobRequest
    dataset_fingerprint: str
    job_id: str = field(default_factory=_next_job_id)
    state: JobState = JobState.PENDING
    submitted_s: float = field(default_factory=time.monotonic)
    started_s: float | None = None
    finished_s: float | None = None
    attempts: int = 0
    error: str | None = None
    result: object | None = None  # MiningRunResult when DONE
    #: how the result was produced: "run", "memoized" (result-cache hit at
    #: submit time) or "coalesced" (attached to an identical in-flight job)
    via: str = "run"
    coalesced_with: str | None = None
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def result_key(self) -> tuple[str, str]:
        """Memoization key: (dataset fingerprint, config content hash)."""
        return (self.dataset_fingerprint, self.request.config.cache_key())

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state; True when it did."""
        return self.done_event.wait(timeout)

    def snapshot(self) -> dict:
        """JSON-safe point-in-time status (the ``GET /jobs/<id>`` payload)."""
        now = time.monotonic()
        out = {
            "job_id": self.job_id,
            "state": self.state.value,
            "algorithm": self.request.config.algorithm,
            "min_support": self.request.config.min_support,
            "dataset_fingerprint": self.dataset_fingerprint,
            "priority": self.request.priority,
            "attempts": self.attempts,
            "via": self.via,
            "error": self.error,
            "coalesced_with": self.coalesced_with,
            "queued_seconds": round(
                (self.started_s or self.finished_s or now) - self.submitted_s, 6
            ),
            "run_seconds": (
                round((self.finished_s or now) - self.started_s, 6)
                if self.started_s is not None
                else None
            ),
        }
        if self.state is JobState.DONE and self.result is not None:
            out["num_itemsets"] = self.result.num_itemsets
        return out
