"""Cost-based planner: pick engine knobs per job from dataset statistics.

Aouad et al.'s study of distributed Apriori variants (PAPERS.md) shows
job cost swinging by orders of magnitude with dataset shape and support
threshold — which is why ``backend`` / ``num_partitions`` /
``candidate_store`` should be chosen *per job*, not fixed at deploy
time.  :class:`CostPlanner` does exactly that:

1. summarize the dataset once per fingerprint (:class:`DatasetStats`:
   transaction count, average width, distinct items);
2. estimate the job's work from an Apriori-shaped model — passes grow
   with ``log2(1/min_support)``, candidate pressure with
   ``density / min_support`` — and convert work to seconds through a
   :class:`~repro.cluster.model.ClusterSpec` replay of the serving
   host (task overheads + byte costs), scaled by a **calibrated**
   per-unit cost;
3. choose knobs the caller did not pin: ``serial`` below the executor
   break-even point, ``threads`` above it, ``processes`` only for jobs
   long enough to amortize worker spin-up; partitions sized to a target
   per-partition runtime; the bitmap store on dense datasets (where the
   vertical kernel wins, per ``BENCH_fastpath.json``).

Calibration closes the loop: the router reports each completed job's
measured runtime via :meth:`CostPlanner.observe`, and the planner EWMA-
blends ``actual / estimated_units`` into its per-unit cost, so estimates
track the actual host instead of a guessed constant.
"""

from __future__ import annotations

import math
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.cluster.model import ClusterSpec
from repro.core.registry import MiningConfig, get_algorithm
from repro.serve.cache import dataset_fingerprint

#: The serving host modeled as a one-node cluster: all "shuffle" traffic
#: is in-process (charged at loopback-ish bandwidth), and task overhead
#: is the engine's per-task scheduling cost, not a JVM launch.
LOCAL_CLUSTER = ClusterSpec(
    nodes=1,
    cores_per_node=max(2, os.cpu_count() or 2),
    disk_read_mbps=500.0,
    disk_write_mbps=400.0,
    network_mbps=4000.0,
    spark_task_overhead_s=0.002,
)

#: MiningConfig fields the planner is allowed to choose.
PLANNABLE_FIELDS = ("backend", "num_partitions", "candidate_store", "approx")

#: Config defaults used to infer pinning: a caller who set a field away
#: from its default has expressed intent, and the planner must not
#: override it.
_DEFAULTS = {
    "backend": "threads",
    "num_partitions": None,
    "candidate_store": "hashtree",
    "approx": False,
}


@dataclass(frozen=True)
class DatasetStats:
    """The planner's view of a dataset: size and shape, not content."""

    n_transactions: int
    avg_width: float
    distinct_items: int

    @property
    def total_items(self) -> int:
        return round(self.n_transactions * self.avg_width)

    @property
    def density(self) -> float:
        """Average fraction of the item vocabulary present per transaction
        — the knob that separates chess/mushroom (dense, bitmap-friendly)
        from retail-like sparse data."""
        if self.distinct_items <= 0:
            return 0.0
        return min(1.0, self.avg_width / self.distinct_items)

    @classmethod
    def from_transactions(cls, transactions, sample_cap: int = 4096) -> "DatasetStats":
        """Summarize ``transactions``; item vocabulary is estimated from a
        prefix sample of ``sample_cap`` transactions so stats stay O(items
        scanned) even for very large submissions."""
        n = len(transactions)
        if n == 0:
            return cls(0, 0.0, 0)
        total = sum(len(t) for t in transactions)
        sample = transactions if n <= sample_cap else transactions[:sample_cap]
        distinct = len({item for txn in sample for item in txn})
        return cls(n_transactions=n, avg_width=total / n, distinct_items=distinct)


@dataclass(frozen=True)
class PlanDecision:
    """One planning outcome: the estimate and what was chosen because of it."""

    fingerprint: str
    stats: DatasetStats
    work_units: float
    estimated_seconds: float
    chosen: dict
    pinned: tuple
    reason: str
    #: True when the planner rerouted this job to the approximate fast
    #: tier (the caller did not ask for approximation)
    routed_fast: bool = False

    def snapshot(self) -> dict:
        return {
            "estimated_seconds": round(self.estimated_seconds, 4),
            "chosen": dict(self.chosen),
            "pinned": sorted(self.pinned),
            "reason": self.reason,
            "routed_fast": self.routed_fast,
        }


class CostPlanner:
    """Estimate job cost and fill unpinned engine knobs accordingly.

    Parameters
    ----------
    spec:
        Hardware model used to convert estimated work into seconds
        (defaults to :data:`LOCAL_CLUSTER`, a one-node view of the host).
    unit_cost_s:
        Seconds per abstract work unit before any calibration; refined by
        :meth:`observe` as jobs complete.
    serial_cutoff_s / processes_cutoff_s:
        Backend break-even points: below the first an executor pool costs
        more than it saves (-> ``serial``); above the second the job is
        long enough to amortize process workers (-> ``processes``).
    target_partition_s:
        Desired per-partition runtime; partition count is estimated
        seconds over this, clamped to ``[1, 4 * cores]``.
    dense_store_threshold:
        Density at or above which the bitmap candidate store is chosen.
    approx_cutoff_s / interactive_priority:
        Fast-tier routing: an *interactive* job (``priority <=
        interactive_priority``) whose exact estimate is at least
        ``approx_cutoff_s`` runs approximately (``approx=True``) unless
        the caller pinned the knob — sampling trades the k level-wise
        passes for one verification pass, which is exactly the trade an
        interactive caller wants.  ``approx_cutoff_s=None`` (the
        default) disables fast-tier routing: approximate answers can
        drop itemsets (``verified_exact=False``), so silently rerouting
        callers who never asked for approximation is an *operator*
        decision, opted into by setting a cutoff.  A reroute is stamped
        on the decision as ``routed_fast`` (and in the job snapshot's
        ``fast_tier`` field), not buried in provenance.
    """

    def __init__(
        self,
        spec: ClusterSpec = LOCAL_CLUSTER,
        *,
        unit_cost_s: float = 2e-7,
        serial_cutoff_s: float = 0.25,
        processes_cutoff_s: float = 30.0,
        target_partition_s: float = 0.2,
        dense_store_threshold: float = 0.25,
        approx_cutoff_s: float | None = None,
        interactive_priority: int = 0,
        calibration_alpha: float = 0.3,
        stats_cache_entries: int = 1024,
    ):
        self.spec = spec
        self.serial_cutoff_s = serial_cutoff_s
        self.processes_cutoff_s = processes_cutoff_s
        self.target_partition_s = target_partition_s
        self.dense_store_threshold = dense_store_threshold
        self.approx_cutoff_s = approx_cutoff_s
        self.interactive_priority = interactive_priority
        self.calibration_alpha = calibration_alpha
        self._lock = threading.Lock()
        self._unit_cost_s = unit_cost_s
        self._observations = 0
        self._stats: OrderedDict[str, DatasetStats] = OrderedDict()
        self._stats_cache_entries = stats_cache_entries
        self.plans = 0

    # -- statistics --------------------------------------------------------
    @property
    def unit_cost_s(self) -> float:
        with self._lock:
            return self._unit_cost_s

    @property
    def observations(self) -> int:
        with self._lock:
            return self._observations

    def stats_for(self, transactions, fingerprint: str | None = None) -> DatasetStats:
        """Per-fingerprint-memoized :meth:`DatasetStats.from_transactions`."""
        fp = fingerprint or dataset_fingerprint(transactions)
        with self._lock:
            stats = self._stats.get(fp)
            if stats is not None:
                self._stats.move_to_end(fp)
                return stats
        stats = DatasetStats.from_transactions(transactions)
        with self._lock:
            self._stats[fp] = stats
            while len(self._stats) > self._stats_cache_entries:
                self._stats.popitem(last=False)
        return stats

    # -- cost model --------------------------------------------------------
    def work_units(self, stats: DatasetStats, config: MiningConfig) -> float:
        """Abstract work for one run: items scanned x passes x candidate
        pressure.  Passes grow with ``log2(1/minsup)`` (deeper lattices at
        lower support); pressure with ``density / minsup`` (denser data
        and lower thresholds both blow up the candidate count)."""
        if stats.n_transactions == 0:
            return 0.0
        minsup = max(config.min_support, 1e-6)
        passes = min(8.0, 2.0 + math.log2(1.0 / minsup))
        if config.max_length is not None:
            passes = min(passes, float(config.max_length))
        pressure = min(100.0, stats.density / minsup)
        return stats.total_items * passes * (1.0 + pressure)

    def estimate_seconds(self, stats: DatasetStats, config: MiningConfig) -> float:
        """Calibrated runtime estimate: CPU work plus the cluster-model
        replay of per-pass data movement and task overheads."""
        units = self.work_units(stats, config)
        if units == 0.0:
            return 0.0
        minsup = max(config.min_support, 1e-6)
        passes = min(8.0, 2.0 + math.log2(1.0 / minsup))
        nbytes = stats.total_items * 8  # dict-encoded ints
        seconds = units * self.unit_cost_s
        seconds += passes * self.spec.network_seconds(nbytes)
        partitions = config.num_partitions or self.spec.total_cores
        seconds += passes * partitions * self.spec.spark_task_overhead_s
        if config.approx:
            # The fast tier mines n_samples databases of sample_frac the
            # size (full lattice depth, tiny data) and makes ONE full
            # pass instead of `passes` — scale the exact estimate by the
            # fraction of full-data scans that remain.
            scanned = config.approx_samples * config.sample_frac + 1.0
            seconds *= min(1.0, scanned / passes)
        return seconds

    # -- planning ----------------------------------------------------------
    def plan(
        self,
        transactions,
        config: MiningConfig,
        *,
        pinned=(),
        fingerprint: str | None = None,
        priority: int = 0,
    ) -> tuple[MiningConfig, PlanDecision]:
        """Return ``(config', decision)`` with unpinned knobs chosen.

        A knob is pinned — left exactly as the caller set it — when it is
        named in ``pinned`` or when its value differs from the
        :class:`MiningConfig` default (an explicit choice).  Non-engine
        algorithms (the sequential oracles, the MapReduce baselines) pass
        through unplanned — their ``backend`` means something else —
        unless ``approx`` is set, which always runs on the engine.
        ``priority`` feeds fast-tier routing (interactive jobs only).
        """
        fp = fingerprint or dataset_fingerprint(transactions)
        stats = self.stats_for(transactions, fp)
        pinned_set = set(pinned) & set(PLANNABLE_FIELDS)
        for field_name, default in _DEFAULTS.items():
            if getattr(config, field_name) != default:
                pinned_set.add(field_name)

        engine_backed = config.approx or get_algorithm(config.algorithm).needs_engine
        if not engine_backed:
            decision = PlanDecision(
                fingerprint=fp, stats=stats, work_units=0.0, estimated_seconds=0.0,
                chosen={}, pinned=tuple(sorted(pinned_set)),
                reason=f"{config.algorithm} does not run on the engine",
            )
            return config, decision

        units = self.work_units(stats, config)
        est = self.estimate_seconds(stats, config)
        chosen: dict = {}

        routed_fast = False
        if (
            "approx" not in pinned_set
            and self.approx_cutoff_s is not None
            and priority <= self.interactive_priority
            and est >= self.approx_cutoff_s
            and get_algorithm(config.algorithm).needs_engine
        ):
            # interactive + expensive: route to the sampling fast tier
            # and re-estimate the now-cheaper job for the knobs below
            chosen["approx"] = True
            config = replace(config, approx=True)
            est = self.estimate_seconds(stats, config)
            routed_fast = True

        if "backend" not in pinned_set:
            if est < self.serial_cutoff_s:
                chosen["backend"] = "serial"
            elif est < self.processes_cutoff_s:
                chosen["backend"] = "threads"
            else:
                chosen["backend"] = "processes"
        if "num_partitions" not in pinned_set:
            backend = chosen.get("backend", config.backend)
            if backend == "serial":
                chosen["num_partitions"] = 1
            else:
                want = math.ceil(est / self.target_partition_s)
                chosen["num_partitions"] = max(1, min(want, 4 * self.spec.total_cores))
        if "candidate_store" not in pinned_set:
            if stats.density >= self.dense_store_threshold:
                chosen["candidate_store"] = "bitmap"

        planned = replace(config, **chosen) if chosen else config
        with self._lock:
            self.plans += 1
        decision = PlanDecision(
            fingerprint=fp,
            stats=stats,
            work_units=units,
            estimated_seconds=est,
            chosen=chosen,
            pinned=tuple(sorted(pinned_set)),
            reason=(
                f"est {est:.3g}s over {stats.n_transactions} txns "
                f"(width {stats.avg_width:.1f}, density {stats.density:.2f})"
                + (" -> approx fast tier" if routed_fast else "")
            ),
            routed_fast=routed_fast,
        )
        return planned, decision

    # -- calibration -------------------------------------------------------
    def observe(self, decision: PlanDecision, actual_seconds: float) -> None:
        """Fold one measured runtime into the per-unit cost (EWMA)."""
        if decision.work_units <= 0 or actual_seconds <= 0:
            return
        observed_unit = actual_seconds / decision.work_units
        with self._lock:
            alpha = self.calibration_alpha
            self._unit_cost_s = (1 - alpha) * self._unit_cost_s + alpha * observed_unit
            self._observations += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "plans": self.plans,
                "observations": self._observations,
                "unit_cost_s": self._unit_cost_s,
                "stats_cached": len(self._stats),
            }


__all__ = [
    "CostPlanner",
    "DatasetStats",
    "LOCAL_CLUSTER",
    "PLANNABLE_FIELDS",
    "PlanDecision",
]
