"""Shard-routing front-end: N mining services behind one submit surface.

``ShardRouter`` is the "millions of users" story for ``repro.serve``:
instead of one process-wide queue and worker pool, jobs spread across N
in-process :class:`~repro.serve.service.MiningService` shards.

* **Cache affinity.**  Jobs route by consistent-hashed
  ``dataset_fingerprint`` (:class:`~repro.serve.shard.HashRing`, virtual
  nodes), so every dataset has one *home shard* that keeps its
  ``DatasetCache`` / ``ContextPool`` / ``ResultCache`` warm — the ~110x
  memoization win and the warm-context win only exist when repeat
  traffic for a dataset lands on the same shard.  Routing is
  deterministic: same fingerprint, same home shard, across restarts.
* **Spill.**  When the home shard's queue is full, the job walks the
  ring (next distinct shards in ring order) and runs cold on the first
  shard with room — latency over rejection, but affinity first.
* **Admission control.**  Every shard queue is bounded
  (``queue_limit``); when the whole preference chain is saturated the
  router raises :class:`~repro.serve.jobs.RejectedError`, which the
  HTTP front-end maps to ``429`` + ``Retry-After``.  Queue depth — and
  therefore memory — stays bounded under any overload.
* **Load shedding.**  Above ``shed_at`` global queue utilization,
  low-priority jobs (``priority > shed_priority``) are rejected
  immediately, preserving the remaining slots for important traffic.
* **Cost-based planning.**  An optional
  :class:`~repro.serve.planner.CostPlanner` fills unpinned engine knobs
  (backend / partitions / candidate store) per job and is calibrated by
  every completed run's measured time.

The router exposes the same verbs as a single service (``submit`` /
``get`` / ``wait`` / ``cancel`` / ``metrics`` / ``shutdown``), so
:class:`~repro.serve.client.LocalClient` and the HTTP front-end work
against either.
"""

from __future__ import annotations

import threading

from repro.core.registry import MiningConfig
from repro.serve.cache import dataset_fingerprint
from repro.serve.jobs import Job, JobState, RejectedError, ServeError
from repro.serve.planner import CostPlanner, PlanDecision
from repro.serve.service import MiningService
from repro.serve.shard import HashRing, Shard


class ShardRouter:
    """Consistent-hash router over N in-process mining-service shards.

    Parameters
    ----------
    n_shards:
        Number of :class:`MiningService` shards to create (each with its
        own queue, workers, and caches).
    n_workers:
        Worker threads *per shard*.
    queue_limit:
        Bounded queue length per shard (admission control).  ``None``
        disables rejection — the router then never spills either, since
        no shard ever reports itself full.
    planner:
        A :class:`CostPlanner` (or ``None``).  When set, every submit
        plans unpinned knobs and completed runs calibrate the model.
    replicas:
        Virtual nodes per shard on the hash ring.
    spill:
        Walk the ring past a saturated home shard (default) instead of
        rejecting immediately.
    shed_priority / shed_at:
        Router-level load shedding: when global queue utilization is at
        least ``shed_at`` (a fraction of total queue capacity), jobs
        with ``priority > shed_priority`` are rejected without trying
        any shard.  ``shed_priority=None`` disables shedding.
    service_kwargs:
        Forwarded to every shard's :class:`MiningService` (cache budgets,
        TTLs, timeouts, ``tenant_weights``...).
    """

    def __init__(
        self,
        n_shards: int = 2,
        *,
        n_workers: int = 2,
        queue_limit: int | None = 32,
        planner: CostPlanner | None = None,
        replicas: int = 64,
        spill: bool = True,
        shed_priority: int | None = None,
        shed_at: float = 0.8,
        **service_kwargs,
    ):
        if n_shards < 1:
            raise ServeError(f"n_shards must be >= 1, got {n_shards}")
        if not 0.0 < shed_at <= 1.0:
            raise ServeError(f"shed_at must be in (0, 1], got {shed_at}")
        self.planner = planner
        self.spill = spill
        self.shed_priority = shed_priority
        self.shed_at = shed_at
        self.queue_limit = queue_limit
        self.shards = [
            Shard(
                f"shard-{i}",
                MiningService(
                    n_workers=n_workers,
                    queue_limit=queue_limit,
                    name=f"shard-{i}",
                    on_job_finished=self._on_job_finished,
                    **service_kwargs,
                ),
            )
            for i in range(n_shards)
        ]
        self._by_name = {s.name: s for s in self.shards}
        self.ring = HashRing([s.name for s in self.shards], replicas=replicas)
        self._lock = threading.Lock()
        self._job_shard: dict[str, Shard] = {}
        self._decisions: dict[str, PlanDecision] = {}
        self._shutdown = False
        self.jobs_routed = 0
        self.jobs_spilled = 0
        self.jobs_rejected = 0
        self.jobs_shed = 0

    # -- routing -----------------------------------------------------------
    def home_shard(self, transactions_or_fingerprint) -> str:
        """Deterministic home-shard name for a dataset (or fingerprint)."""
        fp = (
            transactions_or_fingerprint
            if isinstance(transactions_or_fingerprint, str)
            else dataset_fingerprint(transactions_or_fingerprint)
        )
        return self.ring.node_for(fp)

    def dataset_home(self, dataset_id: str) -> str:
        """Home-shard name for a *named* dataset.

        Keyed on the stable name (``dataset:<id>``), **not** the version
        fingerprint — an append changes the fingerprint every time, and
        hashing on it would re-home the dataset away from its warm
        incremental-miner state on every update.
        """
        return self.ring.node_for(f"dataset:{dataset_id}")

    def _dataset_shard(self, dataset_id: str) -> Shard:
        return self._by_name[self.dataset_home(dataset_id)]

    def _global_utilization(self) -> float:
        if not self.queue_limit:
            return 0.0
        depth = sum(s.queue_depth() for s in self.shards)
        return depth / (self.queue_limit * len(self.shards))

    def submit(
        self,
        transactions,
        config: MiningConfig,
        *,
        priority: int = 0,
        timeout_s: float | None = None,
        max_retries: int = 0,
        tenant: str = "default",
        pinned=(),
        dataset_id: str | None = None,
    ) -> Job:
        """Route one job: plan, shed, try home shard, spill along the ring.

        ``dataset_id`` submits against a registered named dataset: the
        job goes to the dataset's home shard (where the window, registry
        entry, and warm incremental state live) and never spills — cold
        state on a neighbour would defeat the point of the append tier.

        Raises :class:`RejectedError` when shedding fires or every shard
        in the preference chain refused admission; the error carries the
        smallest ``retry_after_s`` any shard suggested.
        """
        with self._lock:
            if self._shutdown:
                raise ServeError("router is shut down")
        if dataset_id is not None:
            if transactions is not None:
                raise ServeError("pass transactions or dataset_id, not both")
            shard = self._dataset_shard(dataset_id)
            try:
                job = shard.submit(
                    None,
                    config,
                    home=True,
                    priority=priority,
                    timeout_s=timeout_s,
                    max_retries=max_retries,
                    tenant=tenant,
                    dataset_id=dataset_id,
                )
            except RejectedError:
                with self._lock:
                    self.jobs_rejected += 1
                raise
            with self._lock:
                self.jobs_routed += 1
                self._job_shard[job.job_id] = shard
            return job
        txns = transactions if isinstance(transactions, list) else list(transactions)
        fp = dataset_fingerprint(txns)

        decision = None
        if self.planner is not None:
            config, decision = self.planner.plan(
                txns, config, pinned=pinned, fingerprint=fp, priority=priority
            )

        if (
            self.shed_priority is not None
            and priority > self.shed_priority
            and self._global_utilization() >= self.shed_at
        ):
            with self._lock:
                self.jobs_shed += 1
            raise RejectedError(
                f"load shed: priority {priority} > {self.shed_priority} while "
                f"queues are {self._global_utilization():.0%} full",
                retry_after_s=1.0,
                scope="router",
            )

        preference = self.ring.preference(fp)
        if not self.spill:
            preference = preference[:1]
        rejections: list[RejectedError] = []
        for rank, name in enumerate(preference):
            shard = self._by_name[name]
            try:
                job = shard.submit(
                    txns,
                    config,
                    home=rank == 0,
                    priority=priority,
                    timeout_s=timeout_s,
                    max_retries=max_retries,
                    tenant=tenant,
                    fingerprint=fp,
                )
            except RejectedError as err:
                rejections.append(err)
                continue
            if decision is not None:
                job.planned = decision.chosen
                job.fast_tier = decision.routed_fast
            with self._lock:
                self.jobs_routed += 1
                if rank > 0:
                    self.jobs_spilled += 1
                self._job_shard[job.job_id] = shard
                if decision is not None and job.via == "run":
                    self._decisions[job.job_id] = decision
            return job

        with self._lock:
            self.jobs_rejected += 1
        retry_after = min((r.retry_after_s for r in rejections), default=1.0)
        raise RejectedError(
            f"all {len(preference)} shard(s) are saturated",
            retry_after_s=retry_after,
            scope="router",
            queue_depth=sum(s.queue_depth() for s in self.shards),
            queue_limit=(self.queue_limit or 0) * len(self.shards),
        )

    # -- named datasets ----------------------------------------------------
    def create_dataset(
        self,
        dataset_id: str,
        transactions,
        *,
        replace: bool = False,
        max_window: int | None = None,
        max_age_s: float | None = None,
        flush_rows: int | None = None,
        flush_age_s: float | None = None,
    ) -> dict:
        """Register a named dataset on its home shard (see :meth:`dataset_home`)."""
        return self._dataset_shard(dataset_id).service.create_dataset(
            dataset_id,
            transactions,
            replace=replace,
            max_window=max_window,
            max_age_s=max_age_s,
            flush_rows=flush_rows,
            flush_age_s=flush_age_s,
        )

    def append_dataset(
        self,
        dataset_id: str,
        transactions,
        *,
        expected_version: int | None = None,
        flush: bool = False,
    ) -> dict:
        """Append to a named dataset on its home shard — the one whose
        registry entry, dataset cache, and warm miners hold its state."""
        return self._dataset_shard(dataset_id).service.append_dataset(
            dataset_id, transactions, expected_version=expected_version, flush=flush
        )

    def dataset_info(self, dataset_id: str) -> dict:
        return self._dataset_shard(dataset_id).service.dataset_info(dataset_id)

    def dataset_changes(
        self,
        dataset_id: str,
        *,
        since: int,
        min_support: float,
        max_length: int | None = None,
        candidate_store: str | None = None,
        timeout_s: float = 0.0,
    ) -> dict:
        """The change feed, served by the home shard — the only shard
        whose change log and warm miner track this dataset."""
        return self._dataset_shard(dataset_id).service.dataset_changes(
            dataset_id,
            since=since,
            min_support=min_support,
            max_length=max_length,
            candidate_store=candidate_store,
            timeout_s=timeout_s,
        )

    # -- planner feedback --------------------------------------------------
    def _on_job_finished(self, job: Job) -> None:
        """Shard callback (runs under that shard's service lock): feed the
        measured runtime of planned, actually-run jobs to the planner."""
        with self._lock:
            decision = self._decisions.pop(job.job_id, None)
        if (
            decision is not None
            and self.planner is not None
            and job.state is JobState.DONE
            and job.via == "run"
            and job.started_s is not None
            and job.finished_s is not None
        ):
            self.planner.observe(decision, job.finished_s - job.started_s)

    # -- queries -----------------------------------------------------------
    def _shard_for_job(self, job_id: str) -> Shard:
        with self._lock:
            shard = self._job_shard.get(job_id)
        if shard is None:
            raise ServeError(f"unknown job {job_id!r}")
        return shard

    def get(self, job_id: str) -> Job:
        return self._shard_for_job(job_id).service.get(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        return self._shard_for_job(job_id).service.wait(job_id, timeout)

    def cancel(self, job_id: str) -> bool:
        return self._shard_for_job(job_id).service.cancel(job_id)

    def queue_depth(self) -> int:
        return sum(s.queue_depth() for s in self.shards)

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "shards": len(self.shards),
            "workers": sum(len(s.service._workers) for s in self.shards),
        }

    def metrics(self) -> dict:
        """Router counters + ring + per-shard service metrics."""
        with self._lock:
            out = {
                "router": {
                    "shards": len(self.shards),
                    "queue_limit_per_shard": self.queue_limit,
                    "jobs_routed": self.jobs_routed,
                    "jobs_spilled": self.jobs_spilled,
                    "jobs_rejected": self.jobs_rejected,
                    "jobs_shed": self.jobs_shed,
                    "spill": self.spill,
                    "shed_priority": self.shed_priority,
                    "shed_at": self.shed_at,
                },
                "ring": {"nodes": self.ring.nodes, "replicas": self.ring.replicas},
            }
        # shard/service metrics are collected outside the router lock
        # (lock order is always service -> router, never the reverse)
        out["router"]["queue_depth"] = self.queue_depth()
        out["shards"] = [
            {**s.stats(), "service": s.service.metrics()} for s in self.shards
        ]
        if self.planner is not None:
            out["planner"] = self.planner.stats()
        return out

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for shard in self.shards:
            shard.service.shutdown(wait=wait)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


__all__ = ["ShardRouter"]
