"""The multi-tenant mining service: priority queue + bounded worker pool.

:class:`MiningService` accepts mining jobs (any algorithm registered in
:mod:`repro.core.registry`), runs them on a fixed pool of worker threads,
and layers three amortizations over the one-shot API:

* identical resubmissions hit the :class:`~repro.serve.cache.ResultCache`
  and complete instantly (``via="memoized"``);
* identical *concurrent* submissions coalesce — followers attach to the
  in-flight primary and share its result (``via="coalesced"``);
* datasets and warm engine contexts persist across jobs in the
  :class:`~repro.serve.cache.DatasetCache` / ``ContextPool``.

Each job gets a configurable timeout, client cancellation (queued or
running), and bounded retry-with-backoff for transient engine faults
(:class:`~repro.common.errors.EngineError` and subclasses — injected
failures, task-retry exhaustion; programming errors fail immediately).

Use it embedded::

    with MiningService(n_workers=4) as svc:
        job = svc.submit(txns, MiningConfig(min_support=0.3))
        job.wait()
        print(job.result.summary())

or behind the HTTP front-end in :mod:`repro.serve.http`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from repro.common.errors import EngineError
from repro.core.registry import MiningConfig, get_algorithm, run_algorithm
from repro.serve.cache import ContextPool, DatasetCache, ResultCache
from repro.serve.jobs import Job, JobRequest, JobState, ServeError

#: exception types treated as transient (retried with backoff)
TRANSIENT_ERRORS = (EngineError,)


class MiningService:
    """Job queue + worker pool + caches; the serving layer's single object.

    Parameters
    ----------
    n_workers:
        Worker threads executing jobs (each holds at most one warm engine
        context at a time).
    dataset_cache_bytes:
        Byte budget for parsed transaction lists shared across jobs.
    result_cache_entries / result_ttl_s:
        LRU size and freshness window of the result memoizer.
    default_timeout_s:
        Timeout applied to jobs that do not specify their own; ``None``
        means no deadline.
    max_idle_contexts:
        Warm engine contexts kept per ``(backend, parallelism)`` key.
    """

    def __init__(
        self,
        n_workers: int = 2,
        dataset_cache_bytes: int = 64 * 1024 * 1024,
        result_cache_entries: int = 256,
        result_ttl_s: float = 300.0,
        default_timeout_s: float | None = None,
        max_idle_contexts: int = 2,
    ):
        if n_workers < 1:
            raise ServeError(f"n_workers must be >= 1, got {n_workers}")
        self.datasets = DatasetCache(dataset_cache_bytes)
        self.results = ResultCache(result_cache_entries, result_ttl_s)
        self.contexts = ContextPool(max_idle_contexts)
        self.default_timeout_s = default_timeout_s
        self._lock = threading.Lock()
        self._queue_cond = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, Job]] = []  # (priority, seq, job)
        self._seq = itertools.count()
        self._jobs: dict[str, Job] = {}
        #: result_key -> primary in-flight Job (for coalescing)
        self._inflight: dict[tuple, Job] = {}
        #: result_key -> follower Jobs attached to the primary
        self._followers: dict[tuple, list[Job]] = {}
        self._shutdown = False
        self.jobs_submitted = 0
        self.jobs_coalesced = 0
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for w in self._workers:
            w.start()

    # -- submission --------------------------------------------------------
    def submit(
        self,
        transactions,
        config: MiningConfig,
        *,
        priority: int = 0,
        timeout_s: float | None = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.05,
    ) -> Job:
        """Queue one mining job; returns immediately with its :class:`Job`.

        The job may already be terminal on return: a fresh result-cache hit
        comes back ``DONE`` with ``via="memoized"`` without ever queueing.
        """
        get_algorithm(config.algorithm)  # fail fast on unknown algorithms
        request = JobRequest(
            config=config,
            priority=priority,
            timeout_s=self.default_timeout_s if timeout_s is None else timeout_s,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
        )
        txns = transactions if isinstance(transactions, list) else list(transactions)
        fingerprint = self.datasets.add(txns)
        job = Job(request=request, dataset_fingerprint=fingerprint)
        key = job.result_key

        memoized = self.results.get(key)
        with self._queue_cond:
            if self._shutdown:
                raise ServeError("service is shut down")
            self._jobs[job.job_id] = job
            self.jobs_submitted += 1
            if memoized is not None:
                self._finish_locked(job, JobState.DONE, result=memoized, via="memoized")
                return job
            primary = self._inflight.get(key)
            if primary is not None and not primary.is_terminal:
                job.via = "coalesced"
                job.coalesced_with = primary.job_id
                self.jobs_coalesced += 1
                self._followers.setdefault(key, []).append(job)
                return job
            self._inflight[key] = job
            heapq.heappush(self._heap, (request.priority, next(self._seq), job))
            self._queue_cond.notify()
        return job

    # -- queries -----------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id!r}")
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until ``job_id`` is terminal (or ``timeout`` elapses)."""
        job = self.get(job_id)
        job.wait(timeout)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True when the cancellation took effect.

        A queued job is cancelled immediately; a running job has its cancel
        flag raised and transitions once the worker observes it (the
        underlying computation is abandoned, its result discarded).
        Terminal jobs are left untouched (returns False).
        """
        job = self.get(job_id)
        with self._queue_cond:
            if job.is_terminal:
                return False
            if job.state is JobState.PENDING:
                if job.coalesced_with is not None:
                    followers = self._followers.get(job.result_key, [])
                    if job in followers:
                        followers.remove(job)
                self._finish_locked(job, JobState.CANCELLED, error="cancelled by client")
                return True
            job.cancel_event.set()
            return True

    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for _, _, j in self._heap if j.state is JobState.PENDING)

    def jobs_by_state(self) -> dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state.value] += 1
        return counts

    def metrics(self) -> dict:
        """The ``GET /metrics`` payload: queue, states, caches, recent jobs."""
        with self._lock:
            jobs = list(self._jobs.values())
        recent = []
        for job in jobs[-20:]:
            entry = job.snapshot()
            metrics = getattr(job.result, "engine_metrics", None)
            if metrics is not None:
                entry["engine_metrics"] = metrics.summary()
            trace = getattr(job.result, "trace", None)
            if trace is not None:
                entry["trace_spans"] = len(trace.spans)
            recent.append(entry)
        return {
            "queue_depth": self.queue_depth(),
            "workers": len(self._workers),
            "jobs_submitted": self.jobs_submitted,
            "jobs_coalesced": self.jobs_coalesced,
            "jobs_by_state": self.jobs_by_state(),
            "dataset_cache": self.datasets.stats(),
            "result_cache": self.results.stats(),
            "context_pool": self.contexts.stats(),
            "recent_jobs": recent,
        }

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work, cancel queued jobs, drain the workers."""
        with self._queue_cond:
            if self._shutdown:
                return
            self._shutdown = True
            for _, _, job in self._heap:
                if job.state is JobState.PENDING:
                    self._finish_locked(
                        job, JobState.CANCELLED, error="service shut down"
                    )
            self._heap.clear()
            self._queue_cond.notify_all()
        if wait:
            for w in self._workers:
                w.join(timeout=10.0)
        self.contexts.close()

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- worker internals --------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._queue_cond:
                while not self._heap and not self._shutdown:
                    self._queue_cond.wait()
                if self._shutdown:
                    return
                _, _, job = heapq.heappop(self._heap)
                if job.state is not JobState.PENDING:
                    continue  # cancelled while queued
                job.state = JobState.RUNNING
                job.started_s = time.monotonic()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        deadline = (
            job.started_s + job.request.timeout_s
            if job.request.timeout_s is not None
            else None
        )
        while True:
            job.attempts += 1
            outcome = self._attempt(job, deadline)
            if outcome is not None:
                state, result, error = outcome
                with self._queue_cond:
                    self._finish_locked(job, state, result=result, error=error)
                return
            # transient failure with retry budget left: back off, then go
            # again (the backoff sleep itself honours cancel + deadline)
            backoff = job.request.retry_backoff_s * (2 ** (job.attempts - 1))
            if deadline is not None:
                backoff = min(backoff, max(0.0, deadline - time.monotonic()))
            if job.cancel_event.wait(backoff):
                with self._queue_cond:
                    self._finish_locked(
                        job, JobState.CANCELLED, error="cancelled by client"
                    )
                return
            if deadline is not None and time.monotonic() >= deadline:
                with self._queue_cond:
                    self._finish_locked(
                        job,
                        JobState.TIMED_OUT,
                        error=f"timed out after {job.request.timeout_s:g}s",
                    )
                return

    def _attempt(self, job: Job, deadline: float | None):
        """Run one attempt; returns ``(state, result, error)`` or ``None``
        when the attempt failed transiently and the retry budget allows
        another go."""
        box: dict[str, object] = {}

        def target():
            ctx = None
            config = job.request.config
            try:
                txns = self.datasets.get(job.dataset_fingerprint)
                if txns is None:
                    raise ServeError(
                        f"dataset {job.dataset_fingerprint[:12]} evicted before run"
                    )
                if get_algorithm(config.algorithm).needs_engine:
                    ctx = self.contexts.acquire(
                        config.backend, config.parallelism, label=job.job_id
                    )
                box["result"] = run_algorithm(txns, config, ctx=ctx)
            except BaseException as exc:  # noqa: BLE001 - reported to client
                box["error"] = exc
            finally:
                if ctx is not None:
                    self.contexts.release(ctx)

        thread = threading.Thread(target=target, name=f"{job.job_id}-run", daemon=True)
        thread.start()
        while thread.is_alive():
            if deadline is not None and time.monotonic() >= deadline:
                # abandon the attempt: the stray thread releases its context
                # when it eventually finishes; its result is discarded
                return (
                    JobState.TIMED_OUT,
                    None,
                    f"timed out after {job.request.timeout_s:g}s",
                )
            if job.cancel_event.is_set():
                return (JobState.CANCELLED, None, "cancelled by client")
            thread.join(timeout=0.01)

        error = box.get("error")
        if error is None:
            return (JobState.DONE, box["result"], None)
        if (
            isinstance(error, TRANSIENT_ERRORS)
            and job.attempts <= job.request.max_retries
        ):
            return None
        kind = "transient" if isinstance(error, TRANSIENT_ERRORS) else "permanent"
        return (
            JobState.FAILED,
            None,
            f"{kind} failure after {job.attempts} attempt(s): {error!r}",
        )

    def _finish_locked(
        self,
        job: Job,
        state: JobState,
        *,
        result=None,
        error: str | None = None,
        via: str | None = None,
    ) -> None:
        """Transition ``job`` to a terminal state (caller holds the lock)
        and settle its followers."""
        if job.is_terminal:
            return
        job.state = state
        job.result = result
        job.error = error
        job.finished_s = time.monotonic()
        if via is not None:
            job.via = via
        key = job.result_key
        followers: list[Job] = []
        if self._inflight.get(key) is job:
            del self._inflight[key]
            followers = self._followers.pop(key, [])
        if state is JobState.DONE and via is None:
            self.results.put(key, result)
        job.done_event.set()
        if state is JobState.DONE:
            for follower in followers:
                self._finish_locked(follower, JobState.DONE, result=result)
        elif self._shutdown:
            # Workers exit as soon as they see the shutdown flag and the
            # pending-cancel sweep has already run, so a re-queued follower
            # would stay PENDING forever — settle it now instead.
            for follower in followers:
                self._finish_locked(
                    follower, JobState.CANCELLED, error="service shut down"
                )
        else:
            # The primary did not produce a result — promote followers to
            # independent runs rather than failing them for someone else's
            # timeout/cancellation.
            for follower in followers:
                if follower.is_terminal:
                    continue
                follower.via = "run"
                follower.coalesced_with = None
                self._inflight[key] = follower
                heapq.heappush(
                    self._heap, (follower.request.priority, next(self._seq), follower)
                )
                self._queue_cond.notify()
                break  # first follower becomes the new primary; rest re-attach
            else:
                return
            new_primary = self._inflight[key]
            for follower in followers:
                if follower is new_primary or follower.is_terminal:
                    continue
                follower.coalesced_with = new_primary.job_id
                self._followers.setdefault(key, []).append(follower)
