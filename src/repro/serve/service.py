"""The multi-tenant mining service: priority queue + bounded worker pool.

:class:`MiningService` accepts mining jobs (any algorithm registered in
:mod:`repro.core.registry`), runs them on a fixed pool of worker threads,
and layers three amortizations over the one-shot API:

* identical resubmissions hit the :class:`~repro.serve.cache.ResultCache`
  and complete instantly (``via="memoized"``);
* identical *concurrent* submissions coalesce — followers attach to the
  in-flight primary and share its result (``via="coalesced"``);
* datasets and warm engine contexts persist across jobs in the
  :class:`~repro.serve.cache.DatasetCache` / ``ContextPool``.

Each job gets a configurable timeout, client cancellation (queued or
running), and bounded retry-with-backoff for transient engine faults
(:class:`~repro.common.errors.EngineError` and subclasses — injected
failures, task-retry exhaustion; programming errors fail immediately).

Use it embedded::

    with MiningService(n_workers=4) as svc:
        job = svc.submit(txns, MiningConfig(min_support=0.3))
        job.wait()
        print(job.result.summary())

or behind the HTTP front-end in :mod:`repro.serve.http`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque

from repro.common.errors import EngineError, MiningError
from repro.core.incremental import FamilyDiff
from repro.core.registry import MiningConfig, get_algorithm, run_algorithm
from repro.serve.cache import ContextPool, DatasetCache, ResultCache
from repro.serve.datasets import DatasetRegistry
from repro.serve.jobs import (
    ApiError,
    Job,
    JobRequest,
    JobState,
    RejectedError,
    ServeError,
)

#: exception types treated as transient (retried with backoff)
TRANSIENT_ERRORS = (EngineError,)

#: server-side cap on one ``/changes`` long-poll wait — below the HTTP
#: client's 30s socket timeout so a quiet feed answers empty, not with a
#: connection error
MAX_POLL_S = 25.0


def _itemset_sort_key(itemset):
    return (len(itemset), [str(x) for x in itemset])


def _family_payload(family: dict) -> list:
    """JSON-safe ``[[itemset, count], ...]`` in deterministic order."""
    return [
        [list(itemset), count]
        for itemset, count in sorted(family.items(), key=lambda kv: _itemset_sort_key(kv[0]))
    ]


def _diff_payload(diff) -> dict:
    return {
        "added": _family_payload(diff.added),
        "removed": _family_payload(diff.removed),
        "changed": [
            [list(itemset), old, new]
            for itemset, (old, new) in sorted(
                diff.changed.items(), key=lambda kv: _itemset_sort_key(kv[0])
            )
        ],
    }


class LatencyHistogram:
    """Bounded-reservoir latency recorder with percentile summaries.

    Keeps the most recent ``max_samples`` observations (enough for stable
    p50/p95/p99 at serving rates) plus lifetime count/total, so the
    ``/metrics`` payload stays O(1) in served-job count.  Thread-safe.
    """

    def __init__(self, max_samples: int = 2048):
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=max_samples)
        self.count = 0
        self.total_s = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total_s += seconds

    @property
    def mean_s(self) -> float:
        with self._lock:
            return self.total_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) over the retained window (0.0 empty)."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        idx = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
        return samples[idx]

    def snapshot(self) -> dict:
        """JSON-safe summary: count, mean, p50/p95/p99, max."""
        with self._lock:
            samples = sorted(self._samples)
            count, total = self.count, self.total_s
        if not samples:
            return {"count": count, "mean_s": 0.0, "p50_s": 0.0,
                    "p95_s": 0.0, "p99_s": 0.0, "max_s": 0.0}

        def pct(q):
            return samples[min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))]

        return {
            "count": count,
            "mean_s": round(total / count, 6),
            "p50_s": round(pct(0.50), 6),
            "p95_s": round(pct(0.95), 6),
            "p99_s": round(pct(0.99), 6),
            "max_s": round(samples[-1], 6),
        }


class MiningService:
    """Job queue + worker pool + caches; the serving layer's single object.

    Parameters
    ----------
    n_workers:
        Worker threads executing jobs (each holds at most one warm engine
        context at a time).
    dataset_cache_bytes:
        Byte budget for parsed transaction lists shared across jobs.
    result_cache_entries / result_ttl_s:
        LRU size and freshness window of the result memoizer.
    default_timeout_s:
        Timeout applied to jobs that do not specify their own; ``None``
        means no deadline.
    max_idle_contexts:
        Warm engine contexts kept per ``(backend, parallelism)`` key.
    queue_limit:
        Admission control: maximum jobs waiting in the queue.  A submit
        that would exceed it raises :class:`RejectedError` (HTTP 429)
        instead of growing the queue without bound.  Memoized hits and
        coalesced followers never consume a slot and are always admitted.
        ``None`` (default) keeps the queue unbounded.
    tenant_weights:
        SLO weights for fair-share scheduling, tenant name -> weight > 0
        (missing tenants get 1.0).  Workers pick jobs deficit-round-robin
        across per-tenant sub-queues — each tenant earns ``weight`` jobs
        of credit per scheduling round, so one tenant's backlog cannot
        starve the rest; priority still orders jobs *within* a tenant.
    name:
        Optional shard name, stamped on every accepted job and reported
        in metrics (the router names its shards ``shard-0..n-1``).
    on_job_finished:
        Optional callback invoked (under the service lock) with each job
        as it reaches a terminal state — the router feeds observed
        runtimes back to the planner through this.  Must not call back
        into the service.
    """

    def __init__(
        self,
        n_workers: int = 2,
        dataset_cache_bytes: int = 64 * 1024 * 1024,
        result_cache_entries: int = 256,
        result_ttl_s: float = 300.0,
        default_timeout_s: float | None = None,
        max_idle_contexts: int = 2,
        queue_limit: int | None = None,
        tenant_weights: dict[str, float] | None = None,
        name: str | None = None,
        on_job_finished=None,
    ):
        if n_workers < 1:
            raise ServeError(f"n_workers must be >= 1, got {n_workers}")
        if queue_limit is not None and queue_limit < 1:
            raise ServeError(f"queue_limit must be >= 1, got {queue_limit}")
        for tenant, weight in (tenant_weights or {}).items():
            if not weight > 0:
                raise ServeError(f"tenant weight must be > 0, got {tenant}={weight}")
        self.datasets = DatasetCache(dataset_cache_bytes)
        self.results = ResultCache(result_cache_entries, result_ttl_s)
        self.contexts = ContextPool(max_idle_contexts)
        self.dataset_registry = DatasetRegistry()
        self.default_timeout_s = default_timeout_s
        self.queue_limit = queue_limit
        self.tenant_weights = dict(tenant_weights or {})
        self.name = name
        self.on_job_finished = on_job_finished
        self._lock = threading.Lock()
        self._queue_cond = threading.Condition(self._lock)
        # Per-tenant priority heaps of (priority, seq, job), served
        # deficit-round-robin (see _pop_next_locked).
        self._tenant_heaps: dict[str, list[tuple[int, int, Job]]] = {}
        self._tenant_order: list[str] = []
        self._deficits: dict[str, float] = {}
        self._rr_cursor = 0
        self._queued = 0  # PENDING jobs currently in a tenant heap
        self._seq = itertools.count()
        self._jobs: dict[str, Job] = {}
        #: result_key -> primary in-flight Job (for coalescing)
        self._inflight: dict[tuple, Job] = {}
        #: result_key -> follower Jobs attached to the primary
        self._followers: dict[tuple, list[Job]] = {}
        self._shutdown = False
        self.jobs_submitted = 0
        self.jobs_coalesced = 0
        self.jobs_rejected = 0
        #: p50/p95/p99 for the two state transitions: pending->running
        #: (queue wait) and running->terminal (run time)
        self.queue_wait_hist = LatencyHistogram()
        self.run_time_hist = LatencyHistogram()
        self._tenant_counts: dict[str, dict[str, int]] = {}
        # Background ingest flusher: started lazily by the first dataset
        # registered with an age-based policy (flush_age_s / max_age_s);
        # scans entries and applies age-triggered buffer flushes and
        # age-based retires even when no new append arrives.
        self._flusher: threading.Thread | None = None
        self._flusher_stop = threading.Event()
        self._flusher_tick = 0.5
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for w in self._workers:
            w.start()

    # -- submission --------------------------------------------------------
    def submit(
        self,
        transactions,
        config: MiningConfig,
        *,
        priority: int = 0,
        timeout_s: float | None = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.05,
        tenant: str = "default",
        fingerprint: str | None = None,
        dataset_id: str | None = None,
    ) -> Job:
        """Queue one mining job; returns immediately with its :class:`Job`.

        The job may already be terminal on return: a fresh result-cache hit
        comes back ``DONE`` with ``via="memoized"`` without ever queueing.

        ``dataset_id`` names a registered dataset instead of passing raw
        ``transactions`` (exactly one of the two): the job snapshots the
        dataset's *current* version — its transactions and versioned
        fingerprint — at submit time, so a concurrent append can never
        change what this job answers for, and a result cached for a
        pre-append version can never answer it.

        Raises :class:`RejectedError` when ``queue_limit`` is set and the
        queue is full — except for memoized hits and coalesced followers,
        which consume no queue slot and are always admitted.
        """
        get_algorithm(config.algorithm)  # fail fast on unknown algorithms
        request = JobRequest(
            config=config,
            priority=priority,
            timeout_s=self.default_timeout_s if timeout_s is None else timeout_s,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            tenant=tenant,
        )
        dataset_version = None
        dataset_entry = None
        if dataset_id is not None:
            if transactions is not None:
                raise ServeError("pass transactions or dataset_id, not both")
            entry = self.dataset_registry.get(dataset_id)
            with entry.lock:
                # Read-your-writes: buffered-but-unflushed appends must be
                # visible to a mine of the same dataset, so flush first.
                if entry.pending_buffered:
                    self._apply_advance_locked(entry, entry.take_buffer())
                transactions = list(entry.transactions)
                fingerprint = entry.fingerprint
                dataset_version = entry.version
                # Pin the snapshot version so its prefix-guard entry
                # survives until this job is terminal (released in
                # _finish_locked); unpinned stale versions are pruned.
                entry.pin_version(dataset_version)
            dataset_entry = entry
        elif transactions is None:
            raise ServeError("submit requires transactions or a dataset_id")
        try:
            txns = transactions if isinstance(transactions, list) else list(transactions)
            fingerprint = self.datasets.add(txns, fingerprint)
            job = Job(
                request=request,
                dataset_fingerprint=fingerprint,
                shard=self.name,
                dataset_id=dataset_id,
                dataset_version=dataset_version,
            )
            job._txns = txns  # released in _finish_locked
            job._dataset_entry = dataset_entry  # pin released there too
            key = job.result_key

            # An approx request is answered by its exact twin's entry first —
            # the exact result is strictly better, and the approx entry must
            # never shadow it.  One get_first probe = one hit/miss recorded,
            # so the twin lookup cannot inflate the miss count.
            lookup = [key]
            if config.approx:
                lookup.insert(0, (fingerprint, config.exact_twin().cache_key()))
            memoized = self.results.get_first(lookup)
            with self._queue_cond:
                if self._shutdown:
                    raise ServeError("service is shut down")
                if memoized is not None:
                    self._register_locked(job)
                    self._finish_locked(job, JobState.DONE, result=memoized, via="memoized")
                    return job
                primary = self._inflight.get(key)
                if primary is not None and not primary.is_terminal:
                    self._register_locked(job)
                    job.via = "coalesced"
                    job.coalesced_with = primary.job_id
                    self.jobs_coalesced += 1
                    self._followers.setdefault(key, []).append(job)
                    return job
                if self.queue_limit is not None and self._queued >= self.queue_limit:
                    self.jobs_rejected += 1
                    raise RejectedError(
                        f"queue full ({self._queued}/{self.queue_limit} jobs waiting)"
                        + (f" on {self.name}" if self.name else ""),
                        retry_after_s=self._retry_after_locked(),
                        shard=self.name,
                        queue_depth=self._queued,
                        queue_limit=self.queue_limit,
                    )
                self._register_locked(job)
                self._inflight[key] = job
                self._enqueue_locked(job)
            return job
        except BaseException:
            # The job never reached a terminal state (rejection, shutdown,
            # unexpected error): the pin would otherwise leak its version.
            if dataset_entry is not None:
                dataset_entry.release_version(dataset_version)
            raise

    def _register_locked(self, job: Job) -> None:
        self._jobs[job.job_id] = job
        self.jobs_submitted += 1
        counts = self._tenant_counts.setdefault(job.request.tenant, {"submitted": 0})
        counts["submitted"] += 1

    def _retry_after_locked(self) -> float:
        """Load-based Retry-After estimate: time for the backlog to drain
        one slot, from the observed mean run time (floored when cold)."""
        mean_run = self.run_time_hist.mean_s or 0.1
        estimate = mean_run * (self._queued + 1) / len(self._workers)
        return min(30.0, max(0.05, estimate))

    # -- tenant queues (deficit round-robin) -------------------------------
    def _enqueue_locked(self, job: Job) -> None:
        tenant = job.request.tenant
        heap = self._tenant_heaps.get(tenant)
        if heap is None:
            heap = self._tenant_heaps[tenant] = []
            self._tenant_order.append(tenant)
            self._deficits.setdefault(tenant, 0.0)
        heapq.heappush(heap, (job.request.priority, next(self._seq), job))
        job._queued = True
        self._queued += 1
        self._queue_cond.notify()

    def _dequeue_account_locked(self, job: Job) -> None:
        """A queued job left the queue (popped, cancelled, or drained)."""
        if job._queued:
            job._queued = False
            self._queued -= 1

    def _pop_next_locked(self) -> Job | None:
        """Next runnable job under deficit round-robin, or ``None``.

        Each visit to a tenant grants it ``weight`` credit; one job costs
        one credit.  A weight-2 tenant therefore drains two jobs per
        round for every one of a weight-1 tenant, and an idle tenant's
        credit resets (no banking while the queue is empty).  Within a
        tenant the existing (priority, FIFO) heap order applies.
        """
        while self._queued:
            order = self._tenant_order
            tenant = order[self._rr_cursor % len(order)]
            heap = self._tenant_heaps.get(tenant) or []
            # drop entries finished while queued (lazy removal)
            while heap and not heap[0][2]._queued:
                heapq.heappop(heap)
            if not heap:
                self._deficits[tenant] = 0.0
                self._rr_cursor += 1
                continue
            if self._deficits[tenant] < 1.0:
                self._deficits[tenant] += self.tenant_weights.get(tenant, 1.0)
                if self._deficits[tenant] < 1.0:
                    self._rr_cursor += 1
                continue
            self._deficits[tenant] -= 1.0
            _, _, job = heapq.heappop(heap)
            self._dequeue_account_locked(job)
            if self._deficits[tenant] < 1.0:
                self._rr_cursor += 1
            return job
        return None

    # -- named datasets ----------------------------------------------------
    def create_dataset(
        self,
        dataset_id: str,
        transactions,
        *,
        replace: bool = False,
        max_window: int | None = None,
        max_age_s: float | None = None,
        flush_rows: int | None = None,
        flush_age_s: float | None = None,
    ) -> dict:
        """Register a named, versioned dataset; returns its info dict.

        ``max_window`` / ``max_age_s`` are window policies: every advance
        retires the oldest transactions beyond the count/age bound.
        ``flush_rows`` / ``flush_age_s`` turn on the ingest buffer: small
        appends are staged and folded into one delta update when either
        trigger fires (or on ``flush=True`` / a submit for the dataset).

        Raises :class:`ApiError` 409 ``dataset_exists`` when the name is
        taken and ``replace`` is false.  Replacing retires the old entry
        *under its own lock* before invalidating its cache entries — a
        concurrent append through a stale reference either lands before
        that barrier (and is invalidated with the rest) or gets a 409
        ``dataset_retired``.
        """
        entry, old = self.dataset_registry.create(
            dataset_id,
            transactions,
            replace=replace,
            max_window=max_window,
            max_age_s=max_age_s,
            flush_rows=flush_rows,
            flush_age_s=flush_age_s,
        )
        if old is not None:
            with old.lock:
                old.retired = True
                replaced_fp = old.fingerprint
                old.changed.notify_all()  # wake its long-pollers -> 409
            if replaced_fp != entry.fingerprint:
                self.datasets.remove(replaced_fp)
                self.results.invalidate_dataset(replaced_fp)
        if entry.flush_age_s is not None or entry.max_age_s is not None:
            self._ensure_flusher(entry)
        with entry.lock:
            self.datasets.add(list(entry.transactions), entry.fingerprint)
            return entry.info()

    def append_dataset(
        self,
        dataset_id: str,
        transactions,
        *,
        expected_version: int | None = None,
        flush: bool = False,
    ) -> dict:
        """Append transactions to a named dataset and invalidate everything
        cached for the old version.

        On a buffering dataset the delta is *staged*: the window (and
        version) only advance when a flush trigger fires — ``flush_rows``
        staged, the buffer older than ``flush_age_s``, ``flush=True``, or
        a submit for this dataset.  The returned info dict's ``flushed``
        says which happened; ``buffered`` counts rows still staged.

        ``expected_version`` is optimistic concurrency control: when set
        and the dataset has moved on, raises :class:`ApiError` 409
        ``version_conflict`` instead of appending.  ``invalidated_results``
        reports how many stale cached results a flush evicted.
        """
        entry = self.dataset_registry.get(dataset_id)
        with entry.lock:
            if entry.retired:
                raise ApiError(
                    f"dataset {dataset_id!r} was replaced; re-resolve it",
                    status=409,
                    code="dataset_retired",
                )
            if expected_version is not None and entry.version != expected_version:
                raise ApiError(
                    f"dataset {dataset_id!r} is at version {entry.version}, "
                    f"expected {expected_version}",
                    status=409,
                    code="version_conflict",
                )
            delta = list(transactions) if transactions is not None else []
            if not delta and not flush:
                raise ApiError("append requires at least one transaction")
            if delta:
                self.dataset_registry.record_append()
            if entry.buffering:
                entry.buffer_add(delta)
                if not flush and not entry.buffer_ready():
                    info = entry.info()
                    info["invalidated_results"] = 0
                    info["flushed"] = False
                    return info
                delta = entry.take_buffer()
            invalidated, _ = self._apply_advance_locked(entry, delta)
            info = entry.info()
        info["invalidated_results"] = invalidated
        info["flushed"] = True
        return info

    def _apply_advance_locked(self, entry, delta: list) -> tuple[int, object]:
        """Advance ``entry`` by ``delta`` + any due policy retire, keep the
        caches and warm miners coherent, and feed the change log (caller
        holds ``entry.lock``).  Returns ``(invalidated_results, AppendResult
        or None)``."""
        res = entry.append(delta)
        if res is None:
            return 0, None
        self.dataset_registry.record_flush()
        self._sync_miners_locked(entry, res)
        # stale-version hygiene: the old window must never be served
        # again — drop its parsed copy and every memoized result for it
        self.datasets.remove(res.old_fingerprint)
        invalidated = self.results.invalidate_dataset(res.old_fingerprint)
        self.datasets.add(list(entry.transactions), res.new_fingerprint)
        entry.changed.notify_all()
        return invalidated, res

    def _sync_miners_locked(self, entry, res) -> None:
        """Bring warm miners in step with one window advance.

        Watched mining keys update eagerly on every advance — their
        :class:`~repro.core.incremental.FamilyDiff` transitions are what
        the change feed ships.  Unwatched miners stay lazy (the next job
        folds the delta) *except* across a retire: the retired rows leave
        the window now, so every miner must retire now or its window
        stops being a prefix of the entry's.  A miner that cannot follow
        (e.g. the retire would empty it) is dropped and rebuilt on demand.
        """
        for mkey, miner in list(entry.miners.items()):
            watch = entry.watches.get(mkey)
            if watch is None and res.n_retired == 0:
                continue
            diffs = []
            try:
                pending = res.pre_trim_window[miner.n_transactions :]
                if pending:
                    diffs.append(miner.append(pending).family_diff)
                if res.n_retired:
                    diffs.append(miner.retire(res.n_retired).family_diff)
            except MiningError:
                del entry.miners[mkey]
                if watch is not None:
                    watch.reset()
                continue
            if watch is not None and watch.start_version is not None:
                watch.record(
                    res.old_version,
                    res.new_version,
                    FamilyDiff.compose(d for d in diffs if d is not None),
                )

    def dataset_info(self, dataset_id: str) -> dict:
        """Info dict for a named dataset (404 ``unknown_dataset`` if absent)."""
        return self.dataset_registry.get(dataset_id).info()

    def dataset_changes(
        self,
        dataset_id: str,
        *,
        since: int,
        min_support: float,
        max_length: int | None = None,
        candidate_store: str | None = None,
        timeout_s: float = 0.0,
    ) -> dict:
        """The change feed: what happened to the frequent-itemset family
        of ``dataset_id`` (under the given mining key) since version
        ``since``.

        Establishes a watch on first use — the dataset's warm miner for
        the key is built (a full mine) and from then on updated eagerly
        on every window advance, logging one
        :class:`~repro.core.incremental.FamilyDiff` per version
        transition.  When ``since`` is the current version the call
        long-polls up to ``timeout_s`` (capped server-side) for the next
        advance.  A ``since`` older than the log covers answers
        ``reset=true`` with the full current family instead of a diff.
        """
        entry = self.dataset_registry.get(dataset_id)
        try:
            since = int(since)
        except (TypeError, ValueError):
            raise ApiError(f"since must be an integer version, got {since!r}") from None
        deadline = time.monotonic() + max(0.0, min(float(timeout_s), MAX_POLL_S))
        with entry.changed:
            if entry.retired:
                raise ApiError(
                    f"dataset {dataset_id!r} was replaced; re-resolve it",
                    status=409,
                    code="dataset_retired",
                )
            if since > entry.version:
                raise ApiError(
                    f"since={since} is ahead of {dataset_id!r} version {entry.version}"
                )
            mkey, miner = self._ensure_watch_locked(
                entry, min_support, max_length, candidate_store
            )
            while entry.version == since and not entry.retired:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                entry.changed.wait(remaining)
            if entry.retired:
                raise ApiError(
                    f"dataset {dataset_id!r} was replaced; re-resolve it",
                    status=409,
                    code="dataset_retired",
                )
            return self._changes_payload_locked(entry, mkey, since)

    def _ensure_watch_locked(self, entry, min_support, max_length, candidate_store):
        """The (mining key, warm miner) for a change-feed subscription,
        building or catching up the miner so its window IS the entry's
        current window (caller holds ``entry.lock``)."""
        from repro.core.incremental import IncrementalMiner

        store = candidate_store or "bitmap"
        mkey = (min_support, max_length, store)
        if entry.pending_buffered:
            self._apply_advance_locked(entry, entry.take_buffer())
        watch = entry.watch(mkey)
        miner = entry.miners.get(mkey)
        if miner is None:
            miner = IncrementalMiner(
                list(entry.transactions),
                min_support,
                max_length=max_length,
                candidate_store=store,
            )
            entry.miners[mkey] = miner
            watch.reset()
        elif miner.n_transactions < len(entry.transactions):
            # Lazily-behind miner: fold the pending delta now.  The
            # skipped transitions predate the watch baseline being set
            # below, so no log entries are lost to subscribers.
            miner.append(entry.transactions[miner.n_transactions :])
        if watch.start_version is None:
            watch.start_version = entry.version
            watch.log.clear()
        return mkey, miner

    def _changes_payload_locked(self, entry, mkey, since: int) -> dict:
        base = {
            "dataset_id": entry.dataset_id,
            "since": since,
            "version": entry.version,
            "n_transactions": len(entry.transactions),
        }
        diff = entry.changes_since(mkey, since)
        if diff is None:
            # the log no longer covers `since` — ship the full family
            miner = entry.miners[mkey]
            return {**base, "reset": True, "family": _family_payload(miner.itemsets())}
        return {**base, "reset": False, **_diff_payload(diff)}

    # -- ingest flusher ----------------------------------------------------
    def _ensure_flusher(self, entry) -> None:
        """Start (or re-tune) the background flusher for age triggers."""
        ages = [a for a in (entry.flush_age_s, entry.max_age_s) if a is not None]
        if ages:
            self._flusher_tick = min(
                self._flusher_tick, max(0.02, min(ages) / 4.0)
            )
        with self._lock:
            if self._flusher is not None or self._shutdown:
                return
            self._flusher = threading.Thread(
                target=self._flusher_loop, name="repro-serve-flusher", daemon=True
            )
        self._flusher.start()

    def _flusher_loop(self) -> None:
        while not self._flusher_stop.wait(self._flusher_tick):
            for dataset_id in self.dataset_registry.ids():
                try:
                    entry = self.dataset_registry.get(dataset_id)
                except ServeError:
                    continue
                try:
                    with entry.lock:
                        if entry.retired:
                            continue
                        if entry.pending_buffered and entry.buffer_ready():
                            self._apply_advance_locked(entry, entry.take_buffer())
                        elif entry.age_retire_due():
                            self._apply_advance_locked(entry, [])
                except ServeError:
                    # hygiene loop: one entry's failure must not stop the rest
                    continue

    # -- queries -----------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job {job_id!r}")
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until ``job_id`` is terminal (or ``timeout`` elapses)."""
        job = self.get(job_id)
        job.wait(timeout)
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True when the cancellation took effect.

        A queued job is cancelled immediately; a running job has its cancel
        flag raised and transitions once the worker observes it (the
        underlying computation is abandoned, its result discarded).
        Terminal jobs are left untouched (returns False).
        """
        job = self.get(job_id)
        with self._queue_cond:
            if job.is_terminal:
                return False
            if job.state is JobState.PENDING:
                if job.coalesced_with is not None:
                    followers = self._followers.get(job.result_key, [])
                    if job in followers:
                        followers.remove(job)
                self._finish_locked(job, JobState.CANCELLED, error="cancelled by client")
                return True
            job.cancel_event.set()
            return True

    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    def jobs_by_state(self) -> dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state.value] += 1
        return counts

    def tenant_stats(self) -> dict:
        """Per-tenant submitted/terminal-state counts, pending depth, and
        SLO weight — the router's balance decisions, observable."""
        with self._lock:
            out = {}
            for tenant, counts in self._tenant_counts.items():
                heap = self._tenant_heaps.get(tenant) or []
                out[tenant] = {
                    **counts,
                    "pending": sum(1 for _, _, j in heap if j._queued),
                    "weight": self.tenant_weights.get(tenant, 1.0),
                }
        return out

    def healthz(self) -> dict:
        """The ``GET /healthz`` payload."""
        return {"status": "ok", "workers": len(self._workers)}

    def metrics(self) -> dict:
        """The ``GET /metrics`` payload: queue, states, caches, latency
        histograms, per-tenant counts, recent jobs."""
        with self._lock:
            jobs = list(self._jobs.values())
        recent = []
        for job in jobs[-20:]:
            entry = job.snapshot()
            metrics = getattr(job.result, "engine_metrics", None)
            if metrics is not None:
                entry["engine_metrics"] = metrics.summary()
            trace = getattr(job.result, "trace", None)
            if trace is not None:
                entry["trace_spans"] = len(trace.spans)
            recent.append(entry)
        return {
            "name": self.name,
            "queue_depth": self.queue_depth(),
            "queue_limit": self.queue_limit,
            "workers": len(self._workers),
            "jobs_submitted": self.jobs_submitted,
            "jobs_coalesced": self.jobs_coalesced,
            "jobs_rejected": self.jobs_rejected,
            "jobs_by_state": self.jobs_by_state(),
            "latency": {
                "queue_wait": self.queue_wait_hist.snapshot(),
                "run": self.run_time_hist.snapshot(),
            },
            "tenants": self.tenant_stats(),
            "dataset_cache": self.datasets.stats(),
            "dataset_registry": self.dataset_registry.stats(),
            "result_cache": self.results.stats(),
            "context_pool": self.contexts.stats(),
            "recent_jobs": recent,
        }

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work, cancel queued jobs, drain the workers."""
        self._flusher_stop.set()
        with self._queue_cond:
            if self._shutdown:
                return
            self._shutdown = True
            for heap in self._tenant_heaps.values():
                for _, _, job in heap:
                    if job.state is JobState.PENDING:
                        self._finish_locked(
                            job, JobState.CANCELLED, error="service shut down"
                        )
                heap.clear()
            self._queue_cond.notify_all()
        if wait:
            for w in self._workers:
                w.join(timeout=10.0)
            if self._flusher is not None:
                self._flusher.join(timeout=5.0)
        self.contexts.close()

    def __enter__(self) -> "MiningService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- worker internals --------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._queue_cond:
                job = None
                while not self._shutdown:
                    job = self._pop_next_locked()
                    if job is not None:
                        break
                    self._queue_cond.wait()
                if self._shutdown:
                    return
                job.state = JobState.RUNNING
                job.started_s = time.monotonic()
                self.queue_wait_hist.record(job.started_s - job.submitted_s)
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        deadline = (
            job.started_s + job.request.timeout_s
            if job.request.timeout_s is not None
            else None
        )
        while True:
            job.attempts += 1
            outcome = self._attempt(job, deadline)
            if outcome is not None:
                state, result, error = outcome
                with self._queue_cond:
                    self._finish_locked(job, state, result=result, error=error)
                return
            # transient failure with retry budget left: back off, then go
            # again (the backoff sleep itself honours cancel + deadline)
            backoff = job.request.retry_backoff_s * (2 ** (job.attempts - 1))
            if deadline is not None:
                backoff = min(backoff, max(0.0, deadline - time.monotonic()))
            if job.cancel_event.wait(backoff):
                with self._queue_cond:
                    self._finish_locked(
                        job, JobState.CANCELLED, error="cancelled by client"
                    )
                return
            if deadline is not None and time.monotonic() >= deadline:
                with self._queue_cond:
                    self._finish_locked(
                        job,
                        JobState.TIMED_OUT,
                        error=f"timed out after {job.request.timeout_s:g}s",
                    )
                return

    def _attempt(self, job: Job, deadline: float | None):
        """Run one attempt; returns ``(state, result, error)`` or ``None``
        when the attempt failed transiently and the retry budget allows
        another go."""
        box: dict[str, object] = {}

        def target():
            ctx = None
            config = job.request.config
            try:
                txns = self.datasets.get(job.dataset_fingerprint)
                if txns is None:
                    # evicted while queued: run from the job's own pin and
                    # re-warm the cache for followers and repeat traffic
                    txns = job._txns
                    if txns is None:
                        raise ServeError(
                            f"dataset {job.dataset_fingerprint[:12]} lost before run"
                        )
                    self.datasets.add(txns, job.dataset_fingerprint)
                if (
                    config.approx
                    or config.incremental
                    or get_algorithm(config.algorithm).needs_engine
                ):
                    ctx = self.contexts.acquire(
                        config.backend, config.parallelism, label=job.job_id
                    )
                result = None
                if config.incremental and job.dataset_id is not None:
                    result = self._run_incremental_warm(job, txns, ctx)
                if result is None:
                    result = run_algorithm(txns, config, ctx=ctx)
                box["result"] = result
            except BaseException as exc:  # noqa: BLE001 - reported to client
                box["error"] = exc
            finally:
                if ctx is not None:
                    self.contexts.release(ctx)

        thread = threading.Thread(target=target, name=f"{job.job_id}-run", daemon=True)
        thread.start()
        while thread.is_alive():
            if deadline is not None and time.monotonic() >= deadline:
                # abandon the attempt: the stray thread releases its context
                # when it eventually finishes; its result is discarded
                return (
                    JobState.TIMED_OUT,
                    None,
                    f"timed out after {job.request.timeout_s:g}s",
                )
            if job.cancel_event.is_set():
                return (JobState.CANCELLED, None, "cancelled by client")
            thread.join(timeout=0.01)

        error = box.get("error")
        if error is None:
            return (JobState.DONE, box["result"], None)
        if isinstance(error, ApiError):
            # dataset disappeared mid-run etc.: a client error, not a fault
            return (JobState.FAILED, None, str(error))
        if (
            isinstance(error, TRANSIENT_ERRORS)
            and job.attempts <= job.request.max_retries
        ):
            return None
        kind = "transient" if isinstance(error, TRANSIENT_ERRORS) else "permanent"
        return (
            JobState.FAILED,
            None,
            f"{kind} failure after {job.attempts} attempt(s): {error!r}",
        )

    def _run_incremental_warm(self, job: Job, txns: list, ctx):
        """Serve an incremental named-dataset job from the dataset's warm
        :class:`~repro.core.incremental.IncrementalMiner`.

        The first job for a (dataset, mining-key) pair builds the miner
        (a full mine); every later job pays one delta pass over the
        transactions appended since the miner's window — the ≥5× update
        win the incremental tier exists for.  The engine context is only
        *lent* to the persistent miner for the duration of the call; the
        miner itself outlives the job inside the dataset entry.

        Returns ``None`` (→ cold ``run_algorithm``) when warm state
        cannot answer this job's snapshot: the dataset was deleted or
        replaced, or the miner's window is already ahead of the snapshot
        (an append landed after this job was submitted — the job must
        still answer for its own version).
        """
        from repro.core.incremental import IncrementalMiner

        config = job.request.config
        try:
            entry = self.dataset_registry.get(job.dataset_id)
        except ServeError:
            return None
        store = config.options.get("candidate_store") or (
            config.candidate_store if config.candidate_store != "hashtree" else "bitmap"
        )
        mkey = (config.min_support, config.max_length, store)
        with entry.lock:
            if entry.versions.get(job.dataset_version) != job.dataset_fingerprint:
                return None  # replaced under the same name: snapshot mismatch
            miner = entry.miners.get(mkey)
            if miner is None:
                miner = IncrementalMiner(
                    txns,
                    config.min_support,
                    max_length=config.max_length,
                    candidate_store=store,
                    num_partitions=config.num_partitions,
                    ctx=ctx,
                )
                try:
                    return miner.result()
                finally:
                    miner.ctx = None
                    entry.miners[mkey] = miner
            if miner.n_transactions > len(txns):
                return None
            miner.ctx = ctx
            try:
                delta = txns[miner.n_transactions :]
                if delta:
                    miner.append(delta)
                return miner.result()
            finally:
                miner.ctx = None

    def _finish_locked(
        self,
        job: Job,
        state: JobState,
        *,
        result=None,
        error: str | None = None,
        via: str | None = None,
    ) -> None:
        """Transition ``job`` to a terminal state (caller holds the lock)
        and settle its followers."""
        if job.is_terminal:
            return
        self._dequeue_account_locked(job)
        if job._dataset_entry is not None:
            # Lock order here is service lock -> entry lock; safe because
            # no path acquires the service lock while holding an entry
            # lock (dataset mutation never touches the queue).
            entry = job._dataset_entry
            job._dataset_entry = None
            entry.release_version(job.dataset_version)
        job._txns = None
        job.state = state
        job.result = result
        job.error = error
        job.finished_s = time.monotonic()
        if job.started_s is not None:
            self.run_time_hist.record(job.finished_s - job.started_s)
        counts = self._tenant_counts.setdefault(
            job.request.tenant, {"submitted": 0}
        )
        counts[state.value] = counts.get(state.value, 0) + 1
        if via is not None:
            job.via = via
        if self.on_job_finished is not None:
            try:
                self.on_job_finished(job)
            except Exception:  # noqa: BLE001 - observers must not kill workers
                pass
        key = job.result_key
        followers: list[Job] = []
        if self._inflight.get(key) is job:
            del self._inflight[key]
            followers = self._followers.pop(key, [])
        if state is JobState.DONE and via is None:
            config = job.request.config
            if config.approx:
                self.results.put_approx(
                    key, result,
                    exact_key=(job.dataset_fingerprint, config.exact_twin().cache_key()),
                )
            else:
                self.results.put(key, result)
        job.done_event.set()
        if state is JobState.DONE:
            for follower in followers:
                self._finish_locked(follower, JobState.DONE, result=result)
        elif self._shutdown:
            # Workers exit as soon as they see the shutdown flag and the
            # pending-cancel sweep has already run, so a re-queued follower
            # would stay PENDING forever — settle it now instead.
            for follower in followers:
                self._finish_locked(
                    follower, JobState.CANCELLED, error="service shut down"
                )
        else:
            # The primary did not produce a result — promote followers to
            # independent runs rather than failing them for someone else's
            # timeout/cancellation.
            for follower in followers:
                if follower.is_terminal:
                    continue
                follower.via = "run"
                follower.coalesced_with = None
                self._inflight[key] = follower
                # Promotion bypasses admission control: the follower never
                # held a queue slot, and it inherits the one its primary
                # just freed.
                self._enqueue_locked(follower)
                break  # first follower becomes the new primary; rest re-attach
            else:
                return
            new_primary = self._inflight[key]
            for follower in followers:
                if follower is new_primary or follower.is_terminal:
                    continue
                follower.coalesced_with = new_primary.job_id
                self._followers.setdefault(key, []).append(follower)
