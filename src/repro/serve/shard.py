"""Consistent-hash ring and the shard unit the router spreads load over.

A :class:`Shard` is one named :class:`~repro.serve.service.MiningService`
plus the router-side counters for it (accepted / spilled-in / rejected).
:class:`HashRing` maps dataset fingerprints to shards with virtual nodes,
so cache affinity survives shard add/remove: each physical shard owns
``replicas`` points on a 2^64 ring, a key belongs to the first point at
or after its own hash, and removing a shard only reassigns the keys that
shard owned — every other dataset keeps its warm
``DatasetCache``/``ContextPool``/``ResultCache``.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.serve.jobs import Job, RejectedError, ServeError
from repro.serve.service import MiningService


def _ring_hash(key: str) -> int:
    """Stable 64-bit ring position (sha256-derived; not Python ``hash``,
    which is salted per process and would re-route every restart)."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent hashing with virtual nodes.

    ``node_for(key)`` is deterministic across processes and stable under
    membership change; ``preference(key)`` returns every node in ring
    order starting at the key's home — the router's spill order when the
    home shard is saturated.
    """

    def __init__(self, nodes=(), replicas: int = 64):
        if replicas < 1:
            raise ServeError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []  # sorted (position, node)
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            bisect.insort(self._points, (_ring_hash(f"{node}#{i}"), node))

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(pos, n) for pos, n in self._points if n != node]

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def node_for(self, key: str) -> str:
        """The key's home node (first virtual node at/after its hash)."""
        if not self._points:
            raise ServeError("hash ring is empty")
        idx = bisect.bisect_left(self._points, (_ring_hash(key), ""))
        if idx == len(self._points):
            idx = 0  # wrap around
        return self._points[idx][1]

    def preference(self, key: str, n: int | None = None) -> list[str]:
        """Distinct nodes in ring order from the key's home — index 0 is
        ``node_for(key)``, the rest are the spill-over sequence."""
        if not self._points:
            raise ServeError("hash ring is empty")
        want = len(self._nodes) if n is None else min(n, len(self._nodes))
        idx = bisect.bisect_left(self._points, (_ring_hash(key), ""))
        out: list[str] = []
        for step in range(len(self._points)):
            node = self._points[(idx + step) % len(self._points)][1]
            if node not in out:
                out.append(node)
                if len(out) == want:
                    break
        return out


class Shard:
    """One service behind the router, with per-shard routing counters."""

    def __init__(self, name: str, service: MiningService):
        self.name = name
        self.service = service
        self.jobs_home = 0  # accepted as the fingerprint's home shard
        self.jobs_spilled_in = 0  # accepted for a saturated neighbour
        self.jobs_rejected = 0  # admission refusals at this shard

    def submit(self, transactions, config, *, home: bool, **submit_kwargs) -> Job:
        """Submit to this shard's service; tracks home/spill acceptance."""
        try:
            job = self.service.submit(transactions, config, **submit_kwargs)
        except RejectedError:
            self.jobs_rejected += 1
            raise
        if home:
            self.jobs_home += 1
        else:
            self.jobs_spilled_in += 1
        return job

    def queue_depth(self) -> int:
        return self.service.queue_depth()

    def utilization(self) -> float:
        """Queue fullness in [0, 1]; 0.0 when the queue is unbounded."""
        limit = self.service.queue_limit
        if not limit:
            return 0.0
        return min(1.0, self.service.queue_depth() / limit)

    def stats(self) -> dict:
        return {
            "name": self.name,
            "jobs_home": self.jobs_home,
            "jobs_spilled_in": self.jobs_spilled_in,
            "jobs_rejected": self.jobs_rejected,
            "queue_depth": self.queue_depth(),
            "queue_limit": self.service.queue_limit,
        }


__all__ = ["HashRing", "Shard"]
