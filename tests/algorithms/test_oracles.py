"""Tests for the single-node reference miners (Apriori, Eclat, FP-Growth)."""

import math
from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    apriori,
    by_level,
    eclat,
    fpgrowth,
    generate_candidates,
    max_level,
    normalize_transactions,
    support_threshold,
    vertical_layout,
)
from repro.common.errors import MiningError

CLASSIC = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
]


def brute_force(txns, min_support):
    txns = normalize_transactions(txns)
    thr = math.ceil(min_support * len(txns) - 1e-9)
    items = sorted({i for t in txns for i in t})
    out = {}
    for k in range(1, len(items) + 1):
        found_any = False
        for cand in combinations(items, k):
            cnt = sum(1 for t in txns if set(cand) <= set(t))
            if cnt >= max(1, thr):
                out[cand] = cnt
                found_any = True
        if not found_any:
            break
    return out


MINERS = {"apriori": apriori, "eclat": eclat, "fpgrowth": fpgrowth}


@pytest.mark.parametrize("miner", sorted(MINERS))
class TestAgainstBruteForce:
    def test_classic_basket(self, miner):
        assert MINERS[miner](CLASSIC, 0.6) == brute_force(CLASSIC, 0.6)

    def test_support_one(self, miner):
        got = MINERS[miner]([["a", "b"], ["a", "b"]], 1.0)
        assert got == {("a",): 2, ("b",): 2, ("a", "b"): 2}

    def test_nothing_frequent(self, miner):
        got = MINERS[miner]([["a"], ["b"], ["c"], ["d"]], 0.5)
        assert got == {}

    def test_single_transaction(self, miner):
        got = MINERS[miner]([["x", "y"]], 0.5)
        assert got == {("x",): 1, ("y",): 1, ("x", "y"): 1}

    def test_duplicate_items_in_transaction(self, miner):
        got = MINERS[miner]([["a", "a", "b"], ["a", "b"]], 1.0)
        assert got[("a", "b")] == 2

    def test_max_length_caps_output(self, miner):
        got = MINERS[miner](CLASSIC, 0.6, max_length=1)
        assert got and all(len(k) == 1 for k in got)

    def test_empty_database_raises(self, miner):
        with pytest.raises(MiningError):
            MINERS[miner]([], 0.5)

    def test_int_items(self, miner):
        txns = [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]]
        assert MINERS[miner](txns, 0.6) == brute_force(txns, 0.6)


transactions_strategy = st.lists(
    st.lists(st.integers(0, 8), min_size=1, max_size=6),
    min_size=1,
    max_size=25,
)


class TestOraclesAgreeProperty:
    @settings(max_examples=60, deadline=None)
    @given(transactions_strategy, st.floats(0.05, 1.0))
    def test_three_way_agreement(self, txns, sup):
        a = apriori(txns, sup)
        assert a == eclat(txns, sup)
        assert a == fpgrowth(txns, sup)

    @settings(max_examples=30, deadline=None)
    @given(transactions_strategy, st.floats(0.1, 1.0))
    def test_matches_brute_force(self, txns, sup):
        assert apriori(txns, sup) == brute_force(txns, sup)

    @settings(max_examples=40, deadline=None)
    @given(transactions_strategy, st.floats(0.05, 1.0))
    def test_downward_closure(self, txns, sup):
        frequent = fpgrowth(txns, sup)
        for itemset, count in frequent.items():
            for r in range(1, len(itemset)):
                for sub in combinations(itemset, r):
                    assert sub in frequent
                    assert frequent[sub] >= count  # support anti-monotone

    @settings(max_examples=30, deadline=None)
    @given(transactions_strategy, st.floats(0.05, 0.5), st.floats(0.5, 1.0))
    def test_monotone_in_support(self, txns, lo, hi):
        assert set(fpgrowth(txns, hi)) <= set(fpgrowth(txns, lo))


class TestHelpers:
    def test_generate_candidates_pairs(self):
        l2 = {("a", "b"): 3, ("a", "c"): 3, ("b", "c"): 3}
        assert generate_candidates(l2) == {("a", "b", "c")}

    def test_generate_candidates_prunes(self):
        l2 = {("a", "b"): 3, ("a", "c"): 3}  # (b, c) missing
        assert generate_candidates(l2) == set()

    def test_by_level_and_max_level(self):
        itemsets = {("a",): 3, ("b",): 2, ("a", "b"): 2}
        levels = by_level(itemsets)
        assert set(levels) == {1, 2}
        assert max_level(itemsets) == 2
        assert max_level({}) == 0

    def test_vertical_layout(self):
        layout = vertical_layout(normalize_transactions([["a", "b"], ["b"]]))
        assert layout == {"a": frozenset({0}), "b": frozenset({0, 1})}

    def test_support_threshold(self):
        assert support_threshold([1, 2, 3, 4], 0.5) == 2
        with pytest.raises(MiningError):
            support_threshold([], 0.5)
