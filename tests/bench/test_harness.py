"""Bench harness tests: paired runs, replays, reporting."""

import pytest

from repro.bench.harness import (
    replay_mr,
    replay_mr_per_pass,
    replay_yafim,
    replay_yafim_per_pass,
    run_comparison,
    sizeup_series,
    speedup_series,
)
from repro.bench.reporting import format_series, format_table, sparkline, speedup_table
from repro.cluster import ClusterSpec
from repro.datasets import medical_cases


@pytest.fixture(scope="module")
def comparison():
    ds = medical_cases(n_cases=250, seed=5)
    return run_comparison(ds, 0.08, num_partitions=2, max_length=4)


class TestRunComparison:
    def test_outputs_match(self, comparison):
        assert comparison.outputs_match
        assert comparison.yafim.itemsets  # non-trivial run

    def test_both_have_iterations(self, comparison):
        assert len(comparison.yafim.iterations) >= 3
        assert len(comparison.mrapriori.iterations) >= 3

    def test_per_pass_rows(self, comparison):
        rows = comparison.per_pass()
        assert rows[0][0] == 1
        for _k, mr_s, ya_s, speedup in rows:
            assert mr_s > 0 and ya_s > 0
            assert speedup == pytest.approx(mr_s / ya_s)

    def test_total_speedup_consistent(self, comparison):
        assert comparison.total_speedup == pytest.approx(
            comparison.mrapriori.total_seconds / comparison.yafim.total_seconds
        )

    def test_mismatch_raises(self):
        ds = medical_cases(n_cases=100, seed=5)
        run = run_comparison(ds, 0.2, num_partitions=2, max_length=2, check_equal=True)
        # sanity: equality check passed; now corrupt and verify detection
        run.yafim.itemsets[("bogus",)] = 1
        assert not run.outputs_match


class TestReplays:
    def test_yafim_replay_positive(self, comparison):
        spec = ClusterSpec(nodes=6)
        assert replay_yafim(comparison.yafim, spec) > 0

    def test_mr_replay_includes_job_startup(self, comparison):
        spec = ClusterSpec(nodes=6)
        total = replay_mr(comparison.mrapriori, spec)
        n_jobs = sum(1 for it in comparison.mrapriori.iterations if it.stage_records)
        assert total >= n_jobs * spec.mr_job_startup_s

    def test_mr_beats_yafim_in_replay(self, comparison):
        """The paper's headline: replayed on the same cluster, MRApriori
        takes far longer than YAFIM."""
        spec = ClusterSpec()
        assert replay_mr(comparison.mrapriori, spec) > 2 * replay_yafim(
            comparison.yafim, spec
        )

    def test_per_pass_replays_sum_to_total(self, comparison):
        spec = ClusterSpec(nodes=4)
        ya = replay_yafim_per_pass(comparison.yafim, spec)
        assert sum(t for _k, t in ya) == pytest.approx(replay_yafim(comparison.yafim, spec))
        mr = replay_mr_per_pass(comparison.mrapriori, spec)
        assert sum(t for _k, t in mr) == pytest.approx(replay_mr(comparison.mrapriori, spec))

    def test_yafim_speedup_with_more_nodes(self, comparison):
        t4 = replay_yafim(comparison.yafim, ClusterSpec(nodes=4))
        t12 = replay_yafim(comparison.yafim, ClusterSpec(nodes=12))
        assert t12 <= t4

    def test_speedup_series_shape(self, comparison):
        series = speedup_series(comparison, ClusterSpec(), [4, 8, 12])
        assert [c for c, _m, _y in series] == [32, 64, 96]
        ya_times = [y for _c, _m, y in series]
        assert ya_times[0] >= ya_times[-1]

    def test_sizeup_series(self):
        spec = ClusterSpec(nodes=6)
        # Scale chosen so the factor-4 run crosses the 48-core wave
        # boundary: that is where MapReduce's per-task overhead starts
        # growing the makespan while YAFIM's stays flat.
        series = sizeup_series(
            lambda: medical_cases(n_cases=1500, seed=5),
            0.08,
            [1, 4],
            spec,
            num_partitions=4,
            max_length=3,
            dfs_block_size=8 * 1024,
        )
        assert [f for f, _m, _y in series] == [1, 4]
        # MR cost grows with data size; YAFIM grows far slower
        (_, mr1, ya1), (_, mr2, ya2) = series
        assert mr2 > mr1
        assert (ya2 - ya1) < (mr2 - mr1)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "n"], [["a", 1], ["bb", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len({len(ln) for ln in lines[2:]}) >= 1

    def test_sparkline_monotone(self):
        line = sparkline([0, 1, 2, 4, 8])
        assert len(line) == 5
        assert line[0] == " " and line[-1] == "█"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_format_series(self):
        text = format_series("lbl", [1, 2], [0.5, 1.0])
        assert "lbl" in text and "1" in text

    def test_speedup_table(self):
        text = speedup_table([1, 2], [10.0, 20.0], [1.0, 2.0])
        assert "speedup" in text
        assert "10.00" in text
