"""Cluster spec and replay simulation tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ClusterModelError
from repro.cluster import (
    ClusterSpec,
    StageRecord,
    list_schedule_makespan,
    simulate_mr_job,
    simulate_mr_run,
    simulate_spark_run,
    simulate_spark_stage,
    speedup_curve,
)


class TestClusterSpec:
    def test_total_cores(self):
        assert ClusterSpec(nodes=12, cores_per_node=8).total_cores == 96

    def test_with_nodes(self):
        spec = ClusterSpec(nodes=12).with_nodes(4)
        assert spec.nodes == 4
        assert spec.cores_per_node == 8

    def test_invalid_nodes(self):
        with pytest.raises(ClusterModelError):
            ClusterSpec(nodes=0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ClusterModelError):
            ClusterSpec(disk_read_mbps=0)

    def test_byte_costs_scale_with_nodes(self):
        small = ClusterSpec(nodes=4)
        big = ClusterSpec(nodes=8)
        nbytes = 100 * 1024 * 1024
        assert small.disk_read_seconds(nbytes) == pytest.approx(
            2 * big.disk_read_seconds(nbytes)
        )
        assert small.network_seconds(nbytes) > big.network_seconds(nbytes)

    def test_write_pays_replication(self):
        spec = ClusterSpec(nodes=1, disk_read_mbps=100, disk_write_mbps=100, hdfs_replication=2)
        assert spec.disk_write_seconds(10**6) == pytest.approx(2 * spec.disk_read_seconds(10**6))


class TestListSchedule:
    def test_single_worker_is_sum(self):
        assert list_schedule_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_workers_is_max(self):
        assert list_schedule_makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)

    def test_empty(self):
        assert list_schedule_makespan([], 4) == 0.0

    def test_two_workers(self):
        # order: w0=[1], w1=[2], w0 gets 3 at t=1 -> finishes 4
        assert list_schedule_makespan([1.0, 2.0, 3.0], 2) == pytest.approx(4.0)

    def test_invalid_workers(self):
        with pytest.raises(ClusterModelError):
            list_schedule_makespan([1.0], 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ClusterModelError):
            list_schedule_makespan([-1.0], 2)

    @given(
        st.lists(st.floats(0.0, 10.0), max_size=50),
        st.integers(1, 16),
    )
    def test_bounds(self, durs, n):
        ms = list_schedule_makespan(durs, n)
        total = sum(durs)
        longest = max(durs, default=0.0)
        # makespan is between the trivial lower bounds and the serial time
        assert ms >= max(longest, total / n) - 1e-9
        assert ms <= total + 1e-9

    @given(st.lists(st.floats(0.01, 5.0), min_size=1, max_size=40))
    def test_monotone_in_workers(self, durs):
        times = [list_schedule_makespan(durs, n) for n in (1, 2, 4, 8)]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))


class TestReplay:
    def make_record(self, n_tasks=10, dur=1.0, **kw):
        return StageRecord(label="s", task_durations=[dur] * n_tasks, **kw)

    def test_spark_stage_components(self):
        spec = ClusterSpec(nodes=2, cores_per_node=2)
        rec = self.make_record(n_tasks=8, input_bytes=10**7, shuffle_bytes=10**6)
        sim = simulate_spark_stage(rec, spec)
        assert sim.compute_s == pytest.approx(2.0)  # 8 tasks / 4 cores
        assert sim.io_s > 0
        assert sim.network_s > 0
        assert sim.total_s > sim.compute_s

    def test_mr_job_includes_startup(self):
        spec = ClusterSpec()
        run = simulate_mr_job(self.make_record(), self.make_record(), spec)
        assert run.total_s >= spec.mr_job_startup_s

    def test_mr_run_chains_jobs(self):
        spec = ClusterSpec()
        jobs = [(self.make_record(), self.make_record())] * 3
        run = simulate_mr_run(jobs, spec)
        assert run.total_s >= 3 * spec.mr_job_startup_s

    def test_mr_task_overhead_dominates_tiny_tasks(self):
        spec = ClusterSpec(nodes=1, cores_per_node=1)
        rec = self.make_record(n_tasks=10, dur=0.001)
        sim_mr = simulate_mr_job(rec, StageRecord("r", []), spec)
        # 10 tasks x (0.001 + 0.15) + startup
        assert sim_mr.total_s >= 10 * spec.mr_task_overhead_s

    def test_speedup_curve_monotone(self):
        rec = self.make_record(n_tasks=96, dur=1.0)
        curve = speedup_curve(
            lambda spec: simulate_spark_run([rec], spec),
            ClusterSpec(),
            [4, 6, 8, 10, 12],
        )
        cores = [c for c, _ in curve]
        times = [t for _, t in curve]
        assert cores == [32, 48, 64, 80, 96]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_near_linear_speedup_for_cpu_bound(self):
        # 960 equal CPU-bound tasks: doubling cores should nearly halve time.
        rec = StageRecord(label="cpu", task_durations=[0.5] * 960)
        t4 = simulate_spark_run([rec], ClusterSpec(nodes=4)).total_s
        t8 = simulate_spark_run([rec], ClusterSpec(nodes=8)).total_s
        assert t4 / t8 == pytest.approx(2.0, rel=0.1)

    def test_stage_totals_grouping(self):
        spec = ClusterSpec()
        recs = [
            StageRecord(label="a", task_durations=[1.0]),
            StageRecord(label="a", task_durations=[1.0]),
            StageRecord(label="b", task_durations=[2.0]),
        ]
        run = simulate_spark_run(recs, spec)
        totals = run.stage_totals()
        assert set(totals) == {"a", "b"}
        assert totals["a"] > totals["b"] * 0.9  # 2x1s vs 1x2s, plus overheads
