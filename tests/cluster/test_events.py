"""Discrete-event simulator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, list_schedule_makespan
from repro.cluster.events import (
    SimTask,
    simulate_stage_events,
    straggler_sensitivity,
)
from repro.common.errors import ClusterModelError


def make_tasks(durations, **kw):
    return [SimTask(duration_s=d, **kw) for d in durations]


class TestBasics:
    def test_empty(self):
        stats = simulate_stage_events([], ClusterSpec())
        assert stats.makespan_s == 0.0

    def test_single_task(self):
        stats = simulate_stage_events(make_tasks([2.5]), ClusterSpec(nodes=2, cores_per_node=2))
        assert stats.makespan_s == pytest.approx(2.5)

    def test_serial_on_one_core(self):
        spec = ClusterSpec(nodes=1, cores_per_node=1)
        stats = simulate_stage_events(make_tasks([1.0, 2.0, 3.0]), spec)
        assert stats.makespan_s == pytest.approx(6.0)

    def test_parallel_when_cores_suffice(self):
        spec = ClusterSpec(nodes=2, cores_per_node=2)
        stats = simulate_stage_events(make_tasks([1.0, 1.0, 1.0, 1.0]), spec)
        assert stats.makespan_s == pytest.approx(1.0)

    def test_invalid_task(self):
        with pytest.raises(ClusterModelError):
            SimTask(duration_s=-1.0)

    def test_invalid_params(self):
        with pytest.raises(ClusterModelError):
            simulate_stage_events(make_tasks([1.0]), ClusterSpec(), straggler_factor=0.5)
        with pytest.raises(ClusterModelError):
            simulate_stage_events(make_tasks([1.0]), ClusterSpec(), straggler_rate=1.5)

    def test_utilization_bounds(self):
        spec = ClusterSpec(nodes=2, cores_per_node=2)
        stats = simulate_stage_events(make_tasks([1.0] * 8), spec)
        assert 0.0 < stats.utilization <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.floats(0.01, 5.0), min_size=1, max_size=40),
        st.integers(1, 4),
        st.integers(1, 4),
    )
    def test_agrees_with_list_schedule_without_stragglers(self, durs, nodes, cores):
        """No stragglers, no I/O: event simulation == greedy list schedule."""
        spec = ClusterSpec(nodes=nodes, cores_per_node=cores)
        got = simulate_stage_events(make_tasks(durs), spec).makespan_s
        want = list_schedule_makespan(durs, nodes * cores)
        assert got == pytest.approx(want, rel=1e-9)


class TestStragglers:
    def test_deterministic(self):
        spec = ClusterSpec(nodes=2, cores_per_node=2)
        tasks = make_tasks([1.0] * 20)
        a = simulate_stage_events(tasks, spec, straggler_rate=0.2, straggler_factor=4, seed=3)
        b = simulate_stage_events(tasks, spec, straggler_rate=0.2, straggler_factor=4, seed=3)
        assert a.makespan_s == b.makespan_s
        assert a.straggled_tasks == b.straggled_tasks

    def test_stragglers_stretch_makespan(self):
        spec = ClusterSpec(nodes=2, cores_per_node=2)
        tasks = make_tasks([1.0] * 40)
        clean = simulate_stage_events(tasks, spec).makespan_s
        slow = simulate_stage_events(
            tasks, spec, straggler_rate=0.3, straggler_factor=5, seed=1
        )
        assert slow.makespan_s > clean
        assert slow.straggled_tasks > 0

    def test_sensitivity_curve_monotone_overall(self):
        spec = ClusterSpec(nodes=2, cores_per_node=4)
        tasks = make_tasks([0.5] * 64)
        curve = straggler_sensitivity(tasks, spec, [0.0, 0.2, 0.6, 1.0], seed=2)
        times = [t for _r, t in curve]
        assert times[0] < times[-1]
        assert times[-1] == pytest.approx(times[0] * 5, rel=0.2)  # all tasks x5


class TestLocality:
    def test_local_read_free_remote_pays(self):
        spec = ClusterSpec(nodes=2, cores_per_node=1, network_mbps=1.0)
        nbytes = 10**6  # 1 s over the 1 MB/s network
        local = simulate_stage_events(
            [SimTask(1.0, input_bytes=nbytes, preferred_nodes=(0,))], spec
        )
        remote = simulate_stage_events(
            [SimTask(1.0, input_bytes=nbytes, preferred_nodes=(99,))], spec
        )
        assert local.makespan_s == pytest.approx(1.0)
        assert remote.makespan_s == pytest.approx(2.0)
        assert local.locality_hits == 1 and remote.locality_misses == 1

    def test_scheduler_prefers_local_node(self):
        spec = ClusterSpec(nodes=3, cores_per_node=1, network_mbps=1.0)
        tasks = [
            SimTask(1.0, input_bytes=10**6, preferred_nodes=(i % 3,)) for i in range(9)
        ]
        stats = simulate_stage_events(tasks, spec)
        assert stats.locality_rate == 1.0  # every task found its node

    def test_locality_rate_with_no_io(self):
        stats = simulate_stage_events(make_tasks([1.0] * 3), ClusterSpec())
        assert stats.locality_rate == 1.0  # vacuous

    def test_busy_local_node_falls_back_to_remote(self):
        spec = ClusterSpec(nodes=2, cores_per_node=1, network_mbps=1.0)
        # both tasks prefer node 0; the second must go remote
        tasks = [
            SimTask(5.0, input_bytes=10**6, preferred_nodes=(0,)),
            SimTask(1.0, input_bytes=10**6, preferred_nodes=(0,)),
        ]
        stats = simulate_stage_events(tasks, spec)
        assert stats.locality_hits == 1
        assert stats.locality_misses == 1
        assert stats.makespan_s == pytest.approx(5.0)  # remote task: 1+1=2 < 5
