"""Unit tests for canonical itemset helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import itemset as its


class TestCanonical:
    def test_sorts_and_dedupes(self):
        assert its.canonical([3, 1, 2, 3]) == (1, 2, 3)

    def test_empty(self):
        assert its.canonical([]) == ()

    def test_strings(self):
        assert its.canonical(["b", "a", "b"]) == ("a", "b")

    def test_transaction_alias(self):
        assert its.canonical_transaction([5, 5, 1]) == (1, 5)

    @given(st.lists(st.integers(-50, 50)))
    def test_always_canonical(self, xs):
        assert its.is_canonical(its.canonical(xs))

    @given(st.lists(st.integers(-50, 50)))
    def test_idempotent(self, xs):
        c = its.canonical(xs)
        assert its.canonical(c) == c


class TestIsCanonical:
    def test_ascending_true(self):
        assert its.is_canonical((1, 2, 9))

    def test_duplicate_false(self):
        assert not its.is_canonical((1, 1, 2))

    def test_descending_false(self):
        assert not its.is_canonical((3, 2))

    def test_empty_and_singleton(self):
        assert its.is_canonical(())
        assert its.is_canonical((7,))


class TestSubsets:
    def test_k_minus_1_of_triple(self):
        assert its.subsets_k_minus_1((1, 2, 3)) == [(2, 3), (1, 3), (1, 2)]

    def test_k_minus_1_of_pair(self):
        assert its.subsets_k_minus_1((4, 9)) == [(9,), (4,)]

    @given(st.sets(st.integers(0, 30), min_size=1, max_size=6))
    def test_count_and_membership(self, s):
        iset = its.canonical(s)
        subs = its.subsets_k_minus_1(iset)
        assert len(subs) == len(iset)
        for sub in subs:
            assert len(sub) == len(iset) - 1
            assert set(sub) <= set(iset)
        assert len(set(subs)) == len(subs)


class TestJoinPrefix:
    def test_joins_shared_prefix(self):
        assert its.join_prefix((1, 2), (1, 3)) == (1, 2, 3)

    def test_rejects_unordered_last(self):
        assert its.join_prefix((1, 3), (1, 2)) is None

    def test_rejects_different_prefix(self):
        assert its.join_prefix((1, 2), (2, 3)) is None

    def test_singletons(self):
        assert its.join_prefix((1,), (2,)) == (1, 2)
        assert its.join_prefix((2,), (1,)) is None


class TestContains:
    def test_positive(self):
        assert its.contains((1, 2, 3, 7, 9), (2, 9))

    def test_negative(self):
        assert not its.contains((1, 2, 3), (2, 4))

    def test_empty_candidate(self):
        assert its.contains((1, 2), ())

    def test_candidate_longer_than_transaction(self):
        assert not its.contains((1,), (1, 2))

    @given(
        st.sets(st.integers(0, 40), max_size=15),
        st.sets(st.integers(0, 40), max_size=6),
    )
    def test_matches_set_semantics(self, txn, cand):
        t, c = its.canonical(txn), its.canonical(cand)
        assert its.contains(t, c) == (set(c) <= set(t))


class TestSupportMath:
    def test_fraction(self):
        assert its.support_fraction(3, 4) == pytest.approx(0.75)

    def test_fraction_rejects_zero_n(self):
        with pytest.raises(ValueError):
            its.support_fraction(1, 0)

    def test_min_count_exact(self):
        # 35% of 200 = 70 exactly
        assert its.min_support_count(0.35, 200) == 70

    def test_min_count_rounds_up(self):
        assert its.min_support_count(0.5, 5) == 3

    def test_min_count_at_least_one(self):
        assert its.min_support_count(0.0001, 10) == 1

    def test_min_count_rejects_zero_support(self):
        with pytest.raises(ValueError):
            its.min_support_count(0.0, 10)
        with pytest.raises(ValueError):
            its.min_support_count(1.5, 10)

    @given(
        st.floats(0.001, 1.0),
        st.integers(1, 10_000),
    )
    def test_threshold_consistent(self, sup, n):
        thr = its.min_support_count(sup, n)
        assert 1 <= thr <= n + 1
        # counts >= thr really have relative support >= sup (up to fp dust)
        assert thr / n >= sup - 1e-6
        # thr is minimal: one less would fall below the threshold
        if thr > 1:
            assert (thr - 1) / n < sup + 1e-9

    def test_ceil_behaviour_matches_math(self):
        for n in (1, 7, 100, 8124):
            for sup in (0.25, 1 / 3, 0.85):
                assert its.min_support_count(sup, n) == max(
                    1, math.ceil(sup * n - 1e-9)
                )
