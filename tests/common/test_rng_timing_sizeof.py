"""Unit tests for RNG helpers, timers and size estimation."""

import pickle
import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import make_rng, spawn, stable_hash
from repro.common.sizeof import estimate_size, pickled_size
from repro.common.timing import PhaseTimer, Stopwatch


class TestRng:
    def test_same_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert a.integers(0, 1 << 30, 10).tolist() == b.integers(0, 1 << 30, 10).tolist()

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_spawn_children_independent(self):
        kids = spawn(make_rng(7), 3)
        seqs = [k.integers(0, 1 << 30, 8).tolist() for k in kids]
        assert len({tuple(s) for s in seqs}) == 3

    def test_spawn_deterministic(self):
        a = [k.integers(0, 100, 4).tolist() for k in spawn(make_rng(5), 2)]
        b = [k.integers(0, 100, 4).tolist() for k in spawn(make_rng(5), 2)]
        assert a == b


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_salt_changes_value(self):
        assert stable_hash("abc", salt=1) != stable_hash("abc", salt=2)

    def test_distinct_tuples_differ(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    @given(st.text(max_size=40))
    def test_in_64bit_range(self, s):
        h = stable_hash(s)
        assert 0 <= h < (1 << 64)

    def test_known_stability_anchor(self):
        # Pin one value so cross-process regressions are caught.
        assert stable_hash("anchor") == stable_hash("anchor", salt=0)
        assert isinstance(stable_hash(("a", 3)), int)


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw.running():
            time.sleep(0.002)
        first = sw.elapsed
        with sw.running():
            time.sleep(0.002)
        assert sw.elapsed > first > 0

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw.running():
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestPhaseTimer:
    def test_records_phases_in_order(self):
        pt = PhaseTimer()
        with pt.phase("one"):
            pass
        with pt.phase("two"):
            pass
        assert [label for label, _ in pt.phases] == ["one", "two"]

    def test_total_is_sum(self):
        pt = PhaseTimer()
        pt.record("a", 1.5)
        pt.record("b", 2.5)
        assert pt.total == pytest.approx(4.0)

    def test_as_dict_accumulates_duplicates(self):
        pt = PhaseTimer()
        pt.record("k", 1.0)
        pt.record("k", 2.0)
        assert pt.as_dict() == {"k": 3.0}


class TestSizeof:
    def test_pickled_size_exact(self):
        obj = {"a": 1}
        assert pickled_size(obj) == len(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))

    def test_estimate_small_list_exact(self):
        xs = list(range(10))
        assert estimate_size(xs) == pickled_size(xs)

    def test_estimate_large_list_close(self):
        xs = [(i, i * 2) for i in range(20_000)]
        est = estimate_size(xs)
        actual = pickled_size(xs)
        assert 0.5 * actual < est < 2.0 * actual

    def test_estimate_monotone_in_length(self):
        small = estimate_size([(i, "x" * 8) for i in range(1_000)])
        big = estimate_size([(i, "x" * 8) for i in range(50_000)])
        assert big > small

    def test_small_inputs_are_exact(self):
        for obj in (list(range(1023)), {i: i for i in range(500)}, set(range(500))):
            assert estimate_size(obj) == pickled_size(obj)

    def test_sampled_relative_error_bounded_homogeneous(self):
        # Homogeneous data is the estimator's contract case: an evenly
        # spaced sample extrapolated by marginal per-element cost must
        # land within 15% of the exact pickled size.
        cases = [
            [(i, i * 2, "payload") for i in range(30_000)],
            list(range(50_000)),
            ["w%06d" % i for i in range(20_000)],
            {i: "v%d" % i for i in range(25_000)},
            set(range(25_000)),
        ]
        for obj in cases:
            est = estimate_size(obj)
            actual = pickled_size(obj)
            assert abs(est - actual) / actual < 0.15, type(obj)

    def test_sampling_does_not_walk_every_element(self):
        _LoudPickle.reduces = 0
        xs = [_LoudPickle() for _ in range(10_000)]
        estimate_size(xs)
        # Two sample pickles (full + half), each ~256 elements max.
        assert _LoudPickle.reduces < 1_000


class _LoudPickle:
    """Counts how many instances the pickler actually visits."""

    reduces = 0

    def __reduce__(self):
        _LoudPickle.reduces += 1
        return (_LoudPickle, ())
