"""Unified API tests (`mine_frequent_itemsets`)."""

import pytest

from repro import mine_frequent_itemsets
from repro.algorithms import apriori
from repro.common.errors import MiningError

TXNS = [
    [1, 2],
    [1, 3, 4, 5],
    [2, 3, 4, 6],
    [1, 2, 3, 4],
    [1, 2, 3, 6],
] * 6

ORACLE = apriori(TXNS, 0.4)


class TestDispatch:
    @pytest.mark.parametrize(
        "algorithm", ["yafim", "apriori", "eclat", "fpgrowth", "mrapriori"]
    )
    def test_all_algorithms_agree(self, algorithm):
        got = mine_frequent_itemsets(TXNS, 0.4, algorithm=algorithm, backend="serial")
        assert got.itemsets == ORACLE
        assert got.algorithm == algorithm
        assert got.n_transactions == len(TXNS)

    def test_default_is_yafim(self):
        got = mine_frequent_itemsets(TXNS, 0.4, backend="serial")
        assert got.algorithm == "yafim"

    def test_unknown_algorithm(self):
        with pytest.raises(MiningError):
            mine_frequent_itemsets(TXNS, 0.4, algorithm="magic")

    def test_max_length_forwarded(self):
        got = mine_frequent_itemsets(TXNS, 0.4, algorithm="yafim", backend="serial", max_length=1)
        assert got.max_level == 1

    def test_mrapriori_restores_int_items(self):
        got = mine_frequent_itemsets(TXNS, 0.4, algorithm="mrapriori")
        assert all(isinstance(i, int) for k in got.itemsets for i in k)

    def test_num_itemsets_property(self):
        got = mine_frequent_itemsets(TXNS, 0.4, algorithm="apriori")
        assert got.num_itemsets == len(ORACLE)

    def test_threads_backend(self):
        got = mine_frequent_itemsets(TXNS, 0.4, backend="threads", parallelism=3)
        assert got.itemsets == ORACLE

    def test_package_level_reexport(self):
        import repro

        assert repro.mine_frequent_itemsets is mine_frequent_itemsets
        assert repro.MiningResult is not None
