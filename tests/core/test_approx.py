"""Multi-sample approximate miner (repro.core.approx) tests."""

import pytest

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core.approx import ApproxMiner, ApproxResult
from repro.core.registry import MiningConfig, run_algorithm
from repro.datasets import medical_cases, mushroom_like
from repro.engine.context import Context

TXNS = [
    ["a", "b", "c"],
    ["a", "b"],
    ["b", "c"],
    ["a", "c"],
    ["d"],
] * 20  # big enough that a 25% sample is representative


@pytest.fixture(scope="module")
def ctx():
    with Context(backend="threads", parallelism=4) as c:
        yield c


class TestApproxMiner:
    def test_matches_oracle_when_verified(self, ctx):
        result = ApproxMiner(ctx, n_samples=4, sample_frac=0.5, seed=1).run(TXNS, 0.3)
        assert isinstance(result, ApproxResult)
        assert result.verified_exact
        assert result.border_violations == []
        assert result.itemsets == apriori(TXNS, 0.3)

    def test_full_sample_always_exact(self, ctx):
        # sample_frac=1: every sample IS the database; the union of any
        # sample's family and border covers the lattice by construction
        result = ApproxMiner(ctx, n_samples=2, sample_frac=1.0, seed=0).run(TXNS, 0.3)
        assert result.verified_exact
        assert result.itemsets == apriori(TXNS, 0.3)

    def test_counts_are_exact_not_sampled(self, ctx):
        result = ApproxMiner(ctx, n_samples=3, sample_frac=0.4, seed=2).run(TXNS, 0.3)
        oracle = apriori(TXNS, 0.3)
        for iset, count in result.itemsets.items():
            assert count == oracle[iset]  # precision 1.0: no false positives

    def test_provenance_fields(self, ctx):
        result = ApproxMiner(ctx, n_samples=3, sample_frac=0.25, ratio=0.7,
                             seed=5).run(TXNS, 0.3)
        assert result.n_samples == 3
        assert result.sample_frac == 0.25
        assert result.ratio == 0.7
        assert result.seed == 5
        assert result.sample_sizes == [25, 25, 25]
        assert result.candidates_verified >= result.num_itemsets
        assert len(result.iterations) == 2
        assert [it.k for it in result.iterations] == [1, 2]
        assert "approx" in result.summary()

    def test_deterministic_for_fixed_seed(self, ctx):
        a = ApproxMiner(ctx, n_samples=3, sample_frac=0.3, seed=11).run(TXNS, 0.3)
        b = ApproxMiner(ctx, n_samples=3, sample_frac=0.3, seed=11).run(TXNS, 0.3)
        assert a.itemsets == b.itemsets
        assert a.sample_sizes == b.sample_sizes
        assert a.border_violations == b.border_violations
        assert a.verified_exact == b.verified_exact
        assert a.candidates_verified == b.candidates_verified

    def test_max_length_caps_output(self, ctx):
        result = ApproxMiner(ctx, n_samples=2, sample_frac=0.5, seed=1).run(
            TXNS, 0.3, max_length=1
        )
        assert result.itemsets
        assert all(len(i) == 1 for i in result.itemsets)

    def test_store_choice_changes_nothing(self, ctx):
        base = ApproxMiner(ctx, n_samples=2, sample_frac=0.5, seed=3).run(TXNS, 0.3)
        for store in ("bitmap", "trie", "flatdict", "linear"):
            other = ApproxMiner(
                ctx, n_samples=2, sample_frac=0.5, seed=3, candidate_store=store
            ).run(TXNS, 0.3)
            assert other.itemsets == base.itemsets, store

    def test_borders_span_full_universe_not_just_samples(self, ctx):
        # "z" is in the full database universe but absent from the sample:
        # its singleton must still enter the sample's negative border, or
        # a globally frequent item missed by every sample would never be
        # verified and verified_exact could be falsely claimed
        miner = ApproxMiner(ctx, n_samples=1, sample_frac=0.5, seed=0,
                            use_broadcast=False)
        samples = [[("a",), ("a", "b")]]
        per_sample = miner._mine_samples(samples, ["a", "b", "z"], 0.5, None, [])
        ((_, _, border),) = per_sample
        assert ("z",) in border

    def test_validation(self, ctx):
        with pytest.raises(MiningError):
            ApproxMiner(ctx, n_samples=0)
        with pytest.raises(MiningError):
            ApproxMiner(ctx, ratio=0.0)
        with pytest.raises(MiningError):
            ApproxMiner(ctx, sample_frac=1.5)
        with pytest.raises(ValueError):
            ApproxMiner(ctx, candidate_store="nope")
        with pytest.raises(MiningError):
            ApproxMiner(ctx).run(TXNS, 0.0)
        with pytest.raises(MiningError):
            ApproxMiner(ctx).run([], 0.5)


class TestOracleParityGrid:
    """Negative-border completeness: whenever no border violation occurs,
    the approx result equals the exact miner's itemsets — across
    backends (the guarantee is engine-independent)."""

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_backend_grid(self, backend):
        ds = medical_cases(n_cases=400, seed=3)
        oracle = apriori(ds.transactions, 0.08)
        with Context(backend=backend, parallelism=2) as ctx:
            result = ApproxMiner(
                ctx, n_samples=4, sample_frac=0.5, seed=4
            ).run(ds.transactions, 0.08)
        assert result.verified_exact, result.border_violations
        assert result.itemsets == oracle

    def test_dense_dataset(self):
        ds = mushroom_like(scale=0.04, seed=1)
        oracle = apriori(ds.transactions, 0.4)
        with Context(backend="threads", parallelism=4) as ctx:
            result = ApproxMiner(
                ctx, n_samples=4, sample_frac=0.25, seed=7, candidate_store="bitmap"
            ).run(ds.transactions, 0.4)
        assert result.verified_exact, result.border_violations
        assert result.itemsets == oracle


class TestConfigDispatch:
    def test_run_algorithm_dispatches_on_flag(self):
        config = MiningConfig(
            min_support=0.3, approx=True, sample_frac=0.5, backend="serial",
            options={"seed": 1},
        )
        result = run_algorithm(TXNS, config)
        assert isinstance(result, ApproxResult)
        assert result.algorithm == "approx"
        assert result.trace is not None
        assert result.engine_metrics is not None

    def test_run_algorithm_deterministic(self):
        config = MiningConfig(
            min_support=0.3, approx=True, sample_frac=0.4, backend="serial"
        )
        a = run_algorithm(TXNS, config)
        b = run_algorithm(TXNS, config)
        assert a.itemsets == b.itemsets
        assert a.sample_sizes == b.sample_sizes

    def test_approx_overrides_non_engine_algorithm(self):
        # approx replaces the configured algorithm wholesale, even a
        # sequential oracle that normally never touches the engine
        config = MiningConfig(
            min_support=0.3, algorithm="apriori", approx=True,
            sample_frac=0.5, backend="serial",
        )
        result = run_algorithm(TXNS, config)
        assert isinstance(result, ApproxResult)

    def test_config_validation(self):
        with pytest.raises(MiningError):
            MiningConfig(min_support=0.3, approx_samples=0)
        with pytest.raises(MiningError):
            MiningConfig(min_support=0.3, approx_ratio=1.5)
        with pytest.raises(MiningError):
            MiningConfig(min_support=0.3, sample_frac=0.0)

    def test_knobs_participate_in_cache_key(self):
        exact = MiningConfig(min_support=0.3)
        base = MiningConfig(min_support=0.3, approx=True)
        assert base.cache_key() != exact.cache_key()
        for knob in (
            {"approx_samples": 8}, {"approx_ratio": 0.5}, {"sample_frac": 0.2}
        ):
            assert (
                MiningConfig(min_support=0.3, approx=True, **knob).cache_key()
                != base.cache_key()
            ), knob

    def test_knobs_inert_on_exact_configs(self):
        # sampling knobs do nothing when approx=False, so they must not
        # perturb an exact config's identity (else an exact run could not
        # upgrade the approx entry indexed under its twin's key)
        base = MiningConfig(min_support=0.3)
        carried = MiningConfig(
            min_support=0.3, approx_samples=8, approx_ratio=0.5, sample_frac=0.2
        )
        assert carried.cache_key() == base.cache_key()

    def test_exact_twin_strips_every_approx_knob(self):
        config = MiningConfig(
            min_support=0.3, approx=True, approx_samples=8, approx_ratio=0.5,
            sample_frac=0.2, backend="serial", candidate_store="bitmap",
        )
        twin = config.exact_twin()
        assert not twin.approx
        assert twin.cache_key() == MiningConfig(
            min_support=0.3, backend="serial", candidate_store="bitmap"
        ).cache_key()
        # idempotent, and exact configs are their own twin
        assert twin.exact_twin() == twin
