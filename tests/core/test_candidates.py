"""Tests for apriori_gen (join + prune)."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import apriori_gen, join_step, prune_step


class TestJoinStep:
    def test_shared_prefix_joins(self):
        assert join_step([(1, 2), (1, 3)]) == [(1, 2, 3)]

    def test_different_prefix_does_not_join(self):
        assert join_step([(1, 2), (2, 3)]) == []

    def test_group_of_three(self):
        got = join_step([(1, 2), (1, 3), (1, 4)])
        assert got == [(1, 2, 3), (1, 2, 4), (1, 3, 4)]

    def test_empty(self):
        assert join_step([]) == []


class TestPruneStep:
    def test_keeps_closed_candidate(self):
        prev = {(1, 2), (1, 3), (2, 3)}
        assert prune_step([(1, 2, 3)], prev) == [(1, 2, 3)]

    def test_drops_open_candidate(self):
        prev = {(1, 2), (1, 3)}
        assert prune_step([(1, 2, 3)], prev) == []


class TestAprioriGen:
    def test_level2_is_all_pairs(self):
        got = apriori_gen([(1,), (3,), (2,)])
        assert got == [(1, 2), (1, 3), (2, 3)]

    def test_triangle(self):
        assert apriori_gen([(1, 2), (1, 3), (2, 3)]) == [(1, 2, 3)]

    def test_pruned_triangle(self):
        assert apriori_gen([(1, 2), (1, 3), (2, 4)]) == []

    def test_empty_input(self):
        assert apriori_gen([]) == []

    def test_mixed_lengths_rejected(self):
        with pytest.raises(ValueError):
            apriori_gen([(1,), (1, 2)])

    def test_string_items(self):
        got = apriori_gen([("a", "b"), ("a", "c"), ("b", "c")])
        assert got == [("a", "b", "c")]

    def test_output_sorted_and_unique(self):
        prev = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]
        got = apriori_gen(prev)
        assert got == sorted(set(got))

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=20))
    def test_completeness_property(self, raw):
        """Every k-set whose (k-1)-subsets are all in the input must be
        generated — the guarantee Apriori's correctness rests on."""
        prev = sorted({tuple(sorted(set(p))) for p in raw if len(set(p)) == 2})
        if not prev:
            return
        got = set(apriori_gen(prev))
        prev_set = set(prev)
        items = sorted({i for p in prev for i in p})
        for cand in combinations(items, 3):
            closed = all(sub in prev_set for sub in combinations(cand, 2))
            assert (cand in got) == closed

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 12), min_size=1, max_size=8))
    def test_full_lattice_level(self, items):
        """If EVERY (k-1)-set over `items` is frequent, apriori_gen must
        produce exactly every k-set."""
        items = sorted(items)
        for k in range(2, min(len(items), 4) + 1):
            prev = list(combinations(items, k - 1))
            got = apriori_gen(prev)
            assert got == list(combinations(items, k))
