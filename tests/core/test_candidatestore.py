"""The pluggable candidate-store API.

Two properties carry the whole redesign:

* the **at-most-once contract** — ``count_into`` adds ``weight`` per
  contained candidate at most once per transaction, for duplicate
  transaction items and duplicate candidate inserts alike — which is
  what makes the stores behaviorally interchangeable;
* **counting parity** — every registered store produces the counts of a
  brute-force containment scan, weighted or not, streamed per
  transaction or batched per partition.
"""

import random
import warnings

import pytest

from repro.core.candidatestore import (
    BitmapStore,
    CandidateStore,
    FlatDictStore,
    LinearStore,
    TrieStore,
    _set_bit_run,
    get_store,
    make_store,
    register_store,
    store_names,
    unregister_store,
)
from repro.core.hashtree import HashTree

ALL_STORES = ["hashtree", "trie", "flatdict", "bitmap", "linear"]

CANDIDATES = [
    (1, 2, 3), (1, 2, 4), (1, 3, 5), (2, 3, 4), (2, 4, 6), (3, 5, 7),
    (4, 5, 6), (5, 6, 7), (1, 4, 7), (2, 5, 7),
]

TXNS = [
    (1, 2, 3, 4), (1, 3, 5, 7), (2, 4, 6), (1, 2, 3, 4, 5, 6, 7),
    (5, 6, 7), (3,), (), (2, 3, 4, 7), (1, 4, 7),
]


def brute_counts(candidates, txns, weights=None):
    counts = {}
    weights = weights or [1] * len(txns)
    for txn, w in zip(txns, weights):
        tset = set(txn)
        for cand in candidates:
            if tset.issuperset(cand):
                counts[cand] = counts.get(cand, 0) + w
    return counts


def random_case(seed, n_txns=60, n_items=12, k=3, n_cands=25):
    rng = random.Random(seed)
    cands = set()
    while len(cands) < n_cands:
        cands.add(tuple(sorted(rng.sample(range(n_items), k))))
    txns = [
        tuple(sorted(rng.sample(range(n_items), rng.randint(1, n_items - 2))))
        for _ in range(n_txns)
    ]
    return sorted(cands), txns


# ---------------------------------------------------------------------------
# Registry + factory
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_STORES) <= set(store_names())

    def test_store_names_sorted(self):
        assert store_names() == sorted(store_names())

    def test_unknown_store_error_lists_names(self):
        with pytest.raises(ValueError, match="registered stores"):
            get_store("btree")
        with pytest.raises(ValueError, match="bitmap.*hashtree|hashtree"):
            make_store("btree")

    def test_make_store_builds_each(self):
        for name in ALL_STORES:
            store = make_store(name, CANDIDATES)
            assert len(store) == len(CANDIDATES)
            assert sorted(store) == sorted(CANDIDATES)

    def test_register_and_unregister_custom_store(self):
        class MyStore(LinearStore):
            pass

        register_store("mystore", MyStore)
        try:
            assert "mystore" in store_names()
            assert isinstance(make_store("mystore", CANDIDATES), MyStore)
            with pytest.raises(ValueError, match="already registered"):
                register_store("mystore", MyStore)
            register_store("mystore", MyStore, overwrite=True)
        finally:
            unregister_store("mystore")
        assert "mystore" not in store_names()

    def test_hashtree_is_virtual_store(self):
        assert isinstance(HashTree(CANDIDATES), CandidateStore)
        assert isinstance(make_store("trie", CANDIDATES), CandidateStore)

    def test_legacy_keyword_shim_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="hash_tree_fanout"):
            store = make_store("hashtree", CANDIDATES, hash_tree_fanout=8)
        assert store.fanout == 8
        with pytest.warns(DeprecationWarning, match="hash_tree_leaf_size"):
            store = make_store("hashtree", CANDIDATES, hash_tree_leaf_size=4)
        assert store.max_leaf_size == 4

    def test_no_warning_for_current_keywords(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store = make_store("hashtree", CANDIDATES, fanout=16, max_leaf_size=8)
        assert store.fanout == 16


# ---------------------------------------------------------------------------
# The interface contract, per store
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ALL_STORES)
class TestStoreContract:
    def test_counts_match_brute_force(self, name):
        store = make_store(name, CANDIDATES)
        counts = {}
        for txn in TXNS:
            store.count_into(counts, txn)
        assert counts == brute_counts(CANDIDATES, TXNS)

    def test_randomized_counting_parity(self, name):
        for seed in range(5):
            cands, txns = random_case(seed)
            store = make_store(name, cands)
            counts = {}
            for txn in txns:
                store.count_into(counts, txn)
            assert counts == brute_counts(cands, txns), f"seed {seed}"

    def test_at_most_once_per_transaction_with_duplicate_items(self, name):
        store = make_store(name, [(1, 2, 3)])
        counts = {}
        store.count_into(counts, (1, 1, 2, 2, 3, 3, 3))
        assert counts == {(1, 2, 3): 1}

    def test_duplicate_insert_is_idempotent(self, name):
        store = make_store(name, [(1, 2, 3), (1, 2, 3), (2, 3, 4)])
        store.insert((2, 3, 4))
        assert len(store) == 2
        counts = {}
        store.count_into(counts, (1, 2, 3, 4))
        assert counts == {(1, 2, 3): 1, (2, 3, 4): 1}
        assert sorted(store.candidate_index().values()) == [0, 1]

    def test_weighted_counting(self, name):
        store = make_store(name, CANDIDATES)
        counts = {}
        weights = [(i % 3) + 1 for i in range(len(TXNS))]
        for txn, w in zip(TXNS, weights):
            store.count_into(counts, txn, w)
        assert counts == brute_counts(CANDIDATES, TXNS, weights)

    def test_count_partition_unweighted(self, name):
        store = make_store(name, CANDIDATES)
        counter = getattr(store, "count_partition", None)
        if counter is None:  # HashTree predates the batch hook
            pytest.skip(f"{name} has no count_partition")
        assert counter(iter(TXNS)) == brute_counts(CANDIDATES, TXNS)

    def test_count_partition_weighted(self, name):
        store = make_store(name, CANDIDATES)
        counter = getattr(store, "count_partition", None)
        if counter is None:
            pytest.skip(f"{name} has no count_partition")
        weights = [(i % 4) + 1 for i in range(len(TXNS))]
        got = counter(iter(zip(TXNS, weights)), weighted=True)
        assert got == brute_counts(CANDIDATES, TXNS, weights)

    def test_subset_matches_count_into(self, name):
        store = make_store(name, CANDIDATES)
        for txn in TXNS:
            counts = {}
            store.count_into(counts, txn)
            assert sorted(store.subset(txn)) == sorted(counts)

    def test_short_transaction_matches_nothing(self, name):
        store = make_store(name, CANDIDATES)
        counts = {}
        store.count_into(counts, (1, 2))
        store.count_into(counts, ())
        assert counts == {}
        assert store.subset((1,)) == []

    def test_candidate_index_is_insertion_order(self, name):
        store = make_store(name, CANDIDATES)
        index = store.candidate_index()
        assert index == {c: i for i, c in enumerate(CANDIDATES)}

    def test_mixed_length_insert_rejected(self, name):
        store = make_store(name, [(1, 2, 3)])
        with pytest.raises(ValueError):
            store.insert((1, 2))
        with pytest.raises(ValueError):
            make_store(name, [()])

    def test_stats_reports_candidates(self, name):
        stats = make_store(name, CANDIDATES).stats()
        assert stats["candidates"] == len(CANDIDATES)

    def test_non_integer_items(self, name):
        cands = [("a", "b"), ("a", "c"), ("b", "d")]
        txns = [("a", "b", "c"), ("b", "d"), ("a",), ("a", "b", "c", "d")]
        store = make_store(name, cands)
        counts = {}
        for txn in txns:
            store.count_into(counts, txn)
        assert counts == brute_counts(cands, txns)


# ---------------------------------------------------------------------------
# Store-specific behaviour
# ---------------------------------------------------------------------------
class TestBitmapStore:
    def test_set_bit_run(self):
        for pos, width in [(0, 1), (7, 1), (3, 5), (5, 9), (0, 16), (9, 23), (6, 2)]:
            buf = bytearray((pos + width + 7) // 8)
            _set_bit_run(buf, pos, width)
            val = int.from_bytes(buf, "little")
            assert val == ((1 << width) - 1) << pos, (pos, width)
            assert val.bit_count() == width

    def test_weighted_run_encoding_is_exact(self):
        # compaction multiplicities: (txn, w) occupies a run of w tids, so
        # one popcount of the AND is already the weighted support
        store = BitmapStore([(0, 1), (0, 2), (1, 2)])
        part = [((0, 1, 2), 1000), ((0, 1), 7), ((1, 2), 1), ((0, 2), 90)]
        got = store.count_partition(iter(part), weighted=True)
        assert got == {(0, 1): 1007, (0, 2): 1090, (1, 2): 1001}

    def test_partition_skips_irrelevant_items(self):
        store = BitmapStore([(1, 2)])
        got = store.count_partition(iter([(1, 2, 99), (3, 4), (1, 2)]))
        assert got == {(1, 2): 2}

    def test_empty_partition(self):
        assert BitmapStore([(1, 2)]).count_partition(iter([])) == {}
        assert BitmapStore().count_partition(iter([(1, 2)])) == {}

    def test_prefix_cached_intersection_matches_brute(self):
        for seed in (3, 4):
            cands, txns = random_case(seed, k=4, n_cands=40, n_items=14)
            store = BitmapStore(cands)
            got = store.count_partition(iter(txns))
            assert got == brute_counts(cands, txns)

    def test_insert_after_count_invalidates_order(self):
        store = BitmapStore([(1, 2)])
        assert store.count_partition(iter([(1, 2)])) == {(1, 2): 1}
        store.insert((2, 3))
        got = store.count_partition(iter([(1, 2, 3)]))
        assert got == {(1, 2): 1, (2, 3): 1}

    def test_stats_items(self):
        assert BitmapStore(CANDIDATES).stats()["items"] == 7


class TestTrieStore:
    def test_stats_nodes(self):
        stats = TrieStore(CANDIDATES).stats()
        assert stats["nodes"] >= 1
        assert stats["candidates"] == len(CANDIDATES)


class TestFlatDictStore:
    def test_dense_transaction_falls_back_to_scan(self):
        # C(|t|, k) >> |C| flips the probe direction; counts are identical
        cands = [(0, 1, 2)]
        store = FlatDictStore(cands)
        txn = tuple(range(40))
        counts = {}
        store.count_into(counts, txn)
        assert counts == {(0, 1, 2): 1}


class TestHashTreeContract:
    def test_duplicate_insert_not_double_counted(self):
        tree = HashTree([(1, 2, 3)] * 5)
        assert len(tree) == 1
        counts = {}
        tree.count_into(counts, (1, 2, 3, 4))
        assert counts == {(1, 2, 3): 1}
        assert tree.subset((1, 2, 3)) == [(1, 2, 3)]
