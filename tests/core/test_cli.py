"""CLI tests (`python -m repro ...`)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_requires_support(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "--dataset", "chess"])

    def test_mine_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "--dataset", "chess", "--support", "0.5", "--algorithm", "nope"]
            )

    def test_mine_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "--dataset", "chess", "--support", "0.5",
                 "--backend", "thraeds"]
            )

    def test_backend_choices_come_from_engine(self):
        from repro.engine.executors import BACKENDS

        for backend in BACKENDS:
            args = build_parser().parse_args(
                ["mine", "--dataset", "chess", "--support", "0.5",
                 "--backend", backend]
            )
            assert args.backend == backend

    def test_mine_rejects_unknown_candidate_store(self):
        # unknown store names die at argparse time, not mid-run
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "--dataset", "chess", "--support", "0.5",
                 "--candidate-store", "btree"]
            )

    def test_candidate_store_choices_come_from_registry(self):
        from repro.core.candidatestore import store_names

        for cmd in (["mine", "--dataset", "chess", "--support", "0.5"],
                    ["compare", "--dataset", "chess", "--support", "0.5"]):
            for name in store_names():
                args = build_parser().parse_args(cmd + ["--candidate-store", name])
                assert args.candidate_store == name

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.port == 0 and args.workers == 4
        assert args.func.__name__ == "cmd_serve"

    def test_submit_parser(self):
        args = build_parser().parse_args(
            ["submit", "--url", "http://127.0.0.1:9", "--dataset", "chess",
             "--support", "0.85", "--no-wait"]
        )
        assert args.url == "http://127.0.0.1:9" and args.no_wait
        assert args.func.__name__ == "cmd_submit"

    def test_submit_unreachable_server_is_clean_error(self, capsys):
        rc = main(
            ["submit", "--url", "http://127.0.0.1:1", "--dataset", "chess",
             "--scale", "0.02", "--support", "0.85"]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_round_trip_against_live_server(self, capsys):
        from repro.serve import MiningServer

        with MiningServer(port=0, n_workers=1) as server:
            rc = main(
                ["submit", "--url", server.url, "--dataset", "medical",
                 "--scale", "0.05", "--support", "0.2", "--backend", "serial",
                 "--top", "3"]
            )
            assert rc == 0
            out = capsys.readouterr().out
            assert "submitted job-" in out
            assert "frequent itemsets" in out

    def test_algorithm_choices_come_from_registry(self):
        from repro.core.registry import algorithm_names, register_algorithm, unregister_algorithm

        register_algorithm("parser_probe", lambda txns, cfg: None)
        try:
            args = build_parser().parse_args(
                ["mine", "--dataset", "chess", "--support", "0.5",
                 "--algorithm", "parser_probe"]
            )
            assert args.algorithm == "parser_probe"
            assert "parser_probe" in algorithm_names()
        finally:
            unregister_algorithm("parser_probe")


class TestMine:
    def test_mine_generated_dataset(self, capsys):
        rc = main(
            [
                "mine",
                "--dataset", "medical",
                "--scale", "0.05",
                "--support", "0.2",
                "--backend", "serial",
                "--top", "5",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "frequent itemsets" in out

    def test_mine_input_file(self, tmp_path, capsys):
        data = tmp_path / "t.dat"
        data.write_text("a b\na b c\nb c\n")
        rc = main(
            ["mine", "--input", str(data), "--support", "0.5", "--backend", "serial"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "b" in out

    def test_mine_with_rules(self, tmp_path, capsys):
        data = tmp_path / "t.dat"
        data.write_text("a b\na b\na b\nb\n")
        rc = main(
            [
                "mine", "--input", str(data), "--support", "0.5",
                "--backend", "serial", "--rules", "0.8",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "=>" in out

    def test_mine_num_partitions(self, tmp_path, capsys):
        data = tmp_path / "t.dat"
        data.write_text("a b\na b c\nb c\na b\n")
        rc = main(
            [
                "mine", "--input", str(data), "--support", "0.5",
                "--backend", "serial", "--num-partitions", "3",
            ]
        )
        assert rc == 0

    def test_mine_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        data = tmp_path / "t.dat"
        data.write_text("a b\na b c\nb c\na b\n")
        trace = tmp_path / "trace.json"
        rc = main(
            [
                "mine", "--input", str(data), "--support", "0.5",
                "--backend", "serial", "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        assert "wrote chrome://tracing JSON" in capsys.readouterr().out
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert any(n.startswith("job-") for n in names)
        assert any(n.startswith("broadcast_publish") for n in names)
        assert any(n.startswith("store_build") for n in names)

    def test_mine_without_source_exits(self):
        with pytest.raises(SystemExit):
            main(["mine", "--support", "0.5"])

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["mine", "--dataset", "nope", "--support", "0.5"])


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "chess.dat"
        rc = main(
            ["generate", "--dataset", "chess", "--scale", "0.07", "--out", str(out_file)]
        )
        assert rc == 0
        lines = out_file.read_text().splitlines()
        assert len(lines) >= 200
        assert all(line.strip() for line in lines)

    def test_generated_file_is_minable(self, tmp_path, capsys):
        out_file = tmp_path / "m.dat"
        main(["generate", "--dataset", "mushroom", "--scale", "0.03", "--out", str(out_file)])
        rc = main(
            [
                "mine", "--input", str(out_file), "--support", "0.6",
                "--algorithm", "fpgrowth",
            ]
        )
        assert rc == 0


class TestCompare:
    def test_compare_prints_table(self, capsys):
        rc = main(
            [
                "compare", "--dataset", "medical", "--scale", "0.05",
                "--support", "0.15", "--max-length", "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" in out
        assert "outputs identical: True" in out

    def test_compare_trace_out_holds_both_systems(self, tmp_path, capsys):
        trace = tmp_path / "both.json"
        rc = main(
            [
                "compare", "--dataset", "medical", "--scale", "0.05",
                "--support", "0.15", "--max-length", "2",
                "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert len(pids) == 2  # one trace process per system
