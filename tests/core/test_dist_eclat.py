"""DistEclat (parallel Eclat extension) tests."""

import pytest

from repro.algorithms import apriori
from repro.common.errors import MiningError
from repro.core.dist_eclat import DistEclat
from repro.datasets import medical_cases, mushroom_like, quest_generator
from repro.engine import Context

TXNS = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
] * 6


@pytest.fixture()
def ctx():
    with Context(backend="serial") as c:
        yield c


class TestCorrectness:
    def test_matches_oracle(self, ctx):
        got = DistEclat(ctx).run(TXNS, 0.4)
        assert got.itemsets == apriori(TXNS, 0.4)

    def test_matches_yafim_on_generated_data(self, ctx):
        from repro.core import Yafim

        ds = mushroom_like(scale=0.03, seed=5)
        want = Yafim(ctx).run(ds.transactions, 0.4).itemsets
        got = DistEclat(ctx).run(ds.transactions, 0.4).itemsets
        assert got == want

    def test_quest_data(self, ctx):
        ds = quest_generator(n_transactions=300, n_items=50, seed=5)
        assert DistEclat(ctx).run(ds.transactions, 0.05).itemsets == apriori(
            ds.transactions, 0.05
        )

    def test_max_length(self, ctx):
        got = DistEclat(ctx).run(TXNS, 0.4, max_length=2)
        want = {k: v for k, v in apriori(TXNS, 0.4).items() if len(k) <= 2}
        assert got.itemsets == want

    def test_max_length_one(self, ctx):
        got = DistEclat(ctx).run(TXNS, 0.4, max_length=1)
        assert all(len(k) == 1 for k in got.itemsets)

    def test_empty_raises(self, ctx):
        with pytest.raises(MiningError):
            DistEclat(ctx).run([], 0.5)

    def test_invalid_support(self, ctx):
        with pytest.raises(MiningError):
            DistEclat(ctx).run(TXNS, 0.0)

    def test_nothing_frequent(self, ctx):
        got = DistEclat(ctx).run([["a"], ["b"], ["c"]], 0.9)
        assert got.itemsets == {}


class TestParallelStructure:
    def test_exactly_one_shuffle(self, ctx):
        """Dist-Eclat's selling point: no per-level synchronisation."""
        DistEclat(ctx).run(TXNS, 0.4)
        shuffle_stages = {
            t.stage_id for t in ctx.event_log.tasks if t.kind == "shuffle_map"
        }
        assert len(shuffle_stages) == 1

    def test_threads_backend(self):
        with Context(backend="threads", parallelism=4) as ctx:
            got = DistEclat(ctx).run(TXNS, 0.4).itemsets
        assert got == apriori(TXNS, 0.4)

    def test_medical_cross_check(self, ctx):
        ds = medical_cases(n_cases=250, seed=9)
        got = DistEclat(ctx, num_partitions=6).run(ds.transactions, 0.08)
        assert got.itemsets == apriori(ds.transactions, 0.08)
        assert len(got.iterations) == 2  # singleton phase + one DFS phase

    def test_broadcast_used_for_tidsets(self, ctx):
        DistEclat(ctx).run(TXNS, 0.4)
        assert ctx.broadcast_manager.transfers > 0
