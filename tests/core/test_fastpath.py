"""The counting fast path: dictionary encoding, in-tree weighted counting,
and cross-pass transaction compaction.

The contract under test everywhere: the fast path is a *performance*
feature — flipping any combination of its knobs must never change the
mined itemsets, on any backend.
"""

import random

import pytest

from repro.algorithms import apriori
from repro.common.encoding import ItemDictionary
from repro.core import HashTree, RApriori, Yafim
from repro.core.one_phase import OnePhaseMR, SubsetEnumerationMapper
from repro.core.yafim import _LinearMatcher
from repro.engine import Context
from repro.engine.executors import BACKENDS
from repro.hdfs import MiniDfs
from repro.mapreduce import JobRunner
from repro.mapreduce.counters import GROUP_TASK, MAP_OUTPUT_RECORDS

TXNS = [
    ["bread", "milk"],
    ["bread", "diaper", "beer", "eggs"],
    ["milk", "diaper", "beer", "cola"],
    ["bread", "milk", "diaper", "beer"],
    ["bread", "milk", "diaper", "cola"],
] * 6

#: Seed shape: all three fast-path knobs off.
PAPER_SHAPE = dict(
    use_dict_encoding=False, use_in_tree_counting=False, use_compaction=False
)


def random_transactions(n=120, n_items=14, seed=11):
    rng = random.Random(seed)
    return [
        rng.sample(range(n_items), rng.randint(2, min(8, n_items)))
        for _ in range(n)
    ]


@pytest.fixture()
def ctx():
    with Context(backend="serial") as c:
        yield c


# ---------------------------------------------------------------------------
# ItemDictionary
# ---------------------------------------------------------------------------
class TestItemDictionary:
    COUNTS = {"a": 5, "b": 9, "c": 5, "d": 2}

    def test_codes_ordered_by_descending_support(self):
        d = ItemDictionary.from_counts(self.COUNTS)
        # b(9) -> 0, then the a/c tie breaks on the item itself, then d(2)
        assert [d.code("b"), d.code("a"), d.code("c"), d.code("d")] == [0, 1, 2, 3]
        assert len(d) == 4
        assert "b" in d and "z" not in d

    def test_code_item_round_trip(self):
        d = ItemDictionary.from_counts(self.COUNTS)
        for item in self.COUNTS:
            assert d.item(d.code(item)) == item

    def test_encode_transaction_drops_infrequent_and_sorts(self):
        d = ItemDictionary.from_counts(self.COUNTS)
        codes = d.encode_transaction(["d", "z", "b", "a"])  # z unknown
        assert list(codes) == sorted(codes)
        assert list(codes) == [d.code("b"), d.code("a"), d.code("d")]

    def test_itemset_round_trip_restores_canonical_order(self):
        d = ItemDictionary.from_counts(self.COUNTS)
        enc = d.encode_itemset(("a", "c", "d"))
        assert enc == tuple(sorted(enc))
        assert d.decode_itemset(enc) == ("a", "c", "d")

    def test_encode_itemset_rejects_infrequent_member(self):
        d = ItemDictionary.from_counts(self.COUNTS)
        with pytest.raises(KeyError):
            d.encode_itemset(("a", "zzz"))


# ---------------------------------------------------------------------------
# In-tree counting kernels
# ---------------------------------------------------------------------------
def _matchers(candidates):
    return [
        HashTree(candidates, fanout=4, max_leaf_size=2),
        _LinearMatcher(candidates),
    ]


class TestCountInto:
    CANDS = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4)]

    def test_matches_subset_semantics(self):
        txns = [sorted(t) for t in random_transactions(n=60, n_items=6, seed=3)]
        for matcher in _matchers(self.CANDS):
            counted: dict = {}
            expected: dict = {}
            for txn in txns:
                matcher.count_into(counted, txn)
                for c in matcher.subset(txn):
                    expected[c] = expected.get(c, 0) + 1
            assert counted == expected

    def test_weight_multiplies(self):
        for matcher in _matchers(self.CANDS):
            once: dict = {}
            matcher.count_into(once, [0, 1, 2])
            thrice: dict = {}
            matcher.count_into(thrice, [0, 1, 2], weight=3)
            assert thrice == {c: 3 * n for c, n in once.items()}

    def test_candidate_index_is_insertion_order(self):
        for matcher in _matchers(self.CANDS):
            index = matcher.candidate_index()
            assert index == {c: i for i, c in enumerate(self.CANDS)}
            assert matcher.candidate_index() is index  # built once


# ---------------------------------------------------------------------------
# Output equivalence across knobs and backends
# ---------------------------------------------------------------------------
KNOB_GRID = [
    dict(use_dict_encoding=e, use_in_tree_counting=t, use_compaction=c)
    for e in (True, False)
    for t in (True, False)
    for c in (True, False)
]


class TestKnobEquivalence:
    @pytest.fixture(scope="class")
    def oracle(self):
        return apriori(TXNS, 0.3)

    @pytest.mark.parametrize("knobs", KNOB_GRID)
    def test_every_knob_combination_matches_oracle(self, ctx, knobs, oracle):
        result = Yafim(ctx, num_partitions=4, **knobs).run(TXNS, 0.3)
        assert result.itemsets == oracle

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fastpath_identical_across_backends(self, backend, oracle):
        txns = random_transactions()
        with Context(backend=backend, parallelism=2) as c:
            fast = Yafim(c, num_partitions=4).run(txns, 0.2)
        with Context(backend=backend, parallelism=2) as c:
            base = Yafim(c, num_partitions=4, **PAPER_SHAPE).run(txns, 0.2)
        assert fast.itemsets == base.itemsets
        assert fast.itemsets == apriori(txns, 0.2)

    @pytest.mark.parametrize("knobs", KNOB_GRID)
    def test_rapriori_matches_oracle_under_every_knob(self, ctx, knobs, oracle):
        result = RApriori(ctx, num_partitions=4, **knobs).run(TXNS, 0.3)
        assert result.itemsets == oracle

    def test_max_length_respected_on_fastpath(self, ctx, oracle):
        result = Yafim(ctx, num_partitions=4).run(TXNS, 0.3, max_length=2)
        assert result.itemsets == {k: v for k, v in oracle.items() if len(k) <= 2}


# ---------------------------------------------------------------------------
# CompactionStats and metrics plumbing
# ---------------------------------------------------------------------------
class TestCompactionStats:
    def test_encode_round_recorded_on_pass_one(self, ctx):
        result = Yafim(ctx, num_partitions=4).run(TXNS, 0.3)
        stats = result.iterations[0].compaction
        assert stats is not None and stats.kind == "encode"
        assert stats.txns_before == len(TXNS)
        assert stats.dict_items == result.iterations[0].n_frequent
        assert stats.dict_broadcast_bytes > 0
        # dedupe collapsed the x6 repetition but conserved total weight
        assert stats.txns_after < stats.txns_before
        assert stats.weight_after == len(TXNS)

    def test_compact_rounds_shrink_monotonically(self, ctx):
        result = Yafim(ctx, num_partitions=4).run(TXNS, 0.3)
        compacts = [
            it.compaction for it in result.iterations[1:] if it.compaction is not None
        ]
        assert compacts, "no between-pass compaction recorded"
        for stats in compacts:
            assert stats.kind == "compact"
            assert stats.txns_after <= stats.txns_before
            assert stats.items_after <= stats.items_before

    def test_engine_metrics_fold_and_summary(self, ctx):
        result = Yafim(ctx, num_partitions=4).run(TXNS, 0.3)
        m = result.engine_metrics
        n_rounds = sum(1 for it in result.iterations if it.compaction is not None)
        assert m.compaction_rounds == n_rounds > 0
        assert m.compaction_txns_dropped > 0
        assert "compaction=" in m.summary()

    def test_paper_shape_records_no_compaction(self, ctx):
        result = Yafim(ctx, num_partitions=4, **PAPER_SHAPE).run(TXNS, 0.3)
        assert all(it.compaction is None for it in result.iterations)
        assert result.engine_metrics.compaction_rounds == 0
        assert "compaction=" not in result.engine_metrics.summary()

    def test_trace_has_compaction_spans(self, ctx):
        result = Yafim(ctx, num_partitions=4).run(TXNS, 0.3)
        spans = [s for s in result.trace.spans if s.category == "compaction"]
        assert any(s.name == "encode k=1" for s in spans)
        assert any(s.name.startswith("compact k=") for s in spans)
        for s in spans:
            assert s.args["txns_after"] <= s.args["txns_before"]
        # the spans survive the chrome export
        doc = result.trace.to_chrome_trace()
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "compaction" in cats


class TestShuffleAccounting:
    def test_fastpath_ships_fewer_records_and_bytes(self, ctx):
        fast = Yafim(ctx, num_partitions=4).run(TXNS, 0.3)
        with Context(backend="serial") as c2:
            base = Yafim(c2, num_partitions=4, **PAPER_SHAPE).run(TXNS, 0.3)
        assert fast.itemsets == base.itemsets
        # Phase I merges on the driver: nothing crosses a shuffle at all.
        assert fast.iterations[0].shuffle_bytes == 0
        assert base.iterations[0].shuffle_bytes > 0
        for f_it, b_it in zip(fast.iterations[1:], base.iterations[1:]):
            assert f_it.shuffle_bytes < b_it.shuffle_bytes
        total = lambda r, field: sum(getattr(it, field) for it in r.iterations)  # noqa: E731
        assert total(fast, "shuffle_records") < total(base, "shuffle_records")
        # counting_records = pairs allocated before the map-side combine;
        # the in-tree walk allocates per distinct candidate, the seed per match
        assert 0 < total(fast, "counting_records") < total(base, "counting_records")


# ---------------------------------------------------------------------------
# One-phase in-mapper combine (satellite of the same fast path)
# ---------------------------------------------------------------------------
class TestOnePhaseInMapperCombine:
    @pytest.fixture()
    def dfs(self, tmp_path):
        with MiniDfs(
            root_dir=str(tmp_path), n_datanodes=2, block_size=512, replication=1
        ) as d:
            d.write_lines("/t.txt", (" ".join(sorted(set(t))) for t in TXNS))
            yield d

    def test_mapper_emits_one_record_per_distinct_subset(self):
        def run(combine):
            mapper = SubsetEnumerationMapper(2, in_mapper_combine=combine)
            mapper.setup({})
            out = []
            emit = lambda k, v: out.append((k, v))  # noqa: E731
            for t in TXNS:
                mapper.map(0, " ".join(sorted(set(t))), emit)
            mapper.cleanup(emit)
            totals: dict = {}
            for k, v in out:
                totals[k] = totals.get(k, 0) + v
            return out, totals

        combined, combined_totals = run(True)
        plain, plain_totals = run(False)
        assert combined_totals == plain_totals  # same counts either way
        assert len(combined) < len(plain)  # far fewer physical records
        assert len(combined) == len(combined_totals)  # one per distinct key

    def test_combine_parity_and_map_output_records_reduced(self, dfs):
        from repro.core.mrapriori import SumCombiner, SumReducer, _format_itemset_line
        from repro.mapreduce.job import JobSpec

        runner = JobRunner(dfs)
        itemsets, records = {}, {}
        for combine in (True, False):
            one = OnePhaseMR(
                runner,
                max_length=2,
                in_mapper_combine=combine,
                work_dir=f"/onephase-{combine}",
            )
            itemsets[combine] = one.run("/t.txt", 0.4).itemsets
            spec = JobSpec(
                name=f"onephase-{combine}",
                input_paths=["/t.txt"],
                output_path=f"/out-{combine}",
                mapper_factory=lambda c=combine: SubsetEnumerationMapper(
                    2, in_mapper_combine=c
                ),
                reducer_factory=SumReducer,
                combiner_factory=SumCombiner,
                num_reducers=2,
                output_formatter=_format_itemset_line,
            )
            records[combine] = runner.run(spec).counters.value(
                GROUP_TASK, MAP_OUTPUT_RECORDS
            )
        assert itemsets[True] == itemsets[False]
        assert records[True] < records[False]
