"""Hash-tree unit and property tests."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.itemset import contains
from repro.core.hashtree import HashTree


def brute_subset(candidates, txn):
    return sorted(c for c in candidates if contains(tuple(txn), c))


class TestConstruction:
    def test_empty_tree(self):
        tree = HashTree()
        assert len(tree) == 0
        assert tree.subset((1, 2, 3)) == []

    def test_insert_and_len(self):
        tree = HashTree([(1, 2), (3, 4)])
        assert len(tree) == 2
        assert set(tree) == {(1, 2), (3, 4)}

    def test_mixed_length_rejected(self):
        tree = HashTree([(1, 2)])
        with pytest.raises(ValueError):
            tree.insert((1, 2, 3))

    def test_empty_itemset_rejected(self):
        with pytest.raises(ValueError):
            HashTree([()])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HashTree(fanout=1)
        with pytest.raises(ValueError):
            HashTree(max_leaf_size=0)

    def test_split_on_overflow(self):
        cands = list(combinations(range(12), 3))
        tree = HashTree(cands, fanout=4, max_leaf_size=4)
        stats = tree.stats()
        assert stats["candidates"] == len(cands)
        assert stats["max_depth"] >= 1
        assert set(tree) == set(cands)

    def test_contains_candidate(self):
        cands = list(combinations(range(10), 2))
        tree = HashTree(cands, fanout=4, max_leaf_size=3)
        for c in cands:
            assert tree.contains_candidate(c)
        assert not tree.contains_candidate((99, 100))


class TestSubset:
    def test_simple_match(self):
        tree = HashTree([(1, 2), (2, 3), (4, 5)])
        assert tree.subset((1, 2, 3)) == brute_subset([(1, 2), (2, 3), (4, 5)], (1, 2, 3))

    def test_short_transaction(self):
        tree = HashTree([(1, 2, 3)])
        assert tree.subset((1, 2)) == []

    def test_no_duplicates_with_colliding_items(self):
        # items 2 and 10 collide mod 8 — the historical duplicate bug
        tree = HashTree([(2, 5)], fanout=8)
        got = tree.subset((2, 5, 10))
        assert got == [(2, 5)]

    def test_string_items(self):
        tree = HashTree([("a", "b"), ("b", "c")])
        assert sorted(tree.subset(("a", "b", "c"))) == [("a", "b"), ("b", "c")]

    @settings(max_examples=60, deadline=None)
    @given(
        cands=st.sets(
            st.tuples(st.integers(0, 20), st.integers(0, 20), st.integers(0, 20)),
            max_size=40,
        ),
        txn=st.sets(st.integers(0, 20), max_size=12),
        fanout=st.sampled_from([2, 4, 8, 64]),
        leaf=st.sampled_from([1, 2, 8]),
    )
    def test_matches_brute_force_property(self, cands, txn, fanout, leaf):
        cands = {tuple(sorted(set(c))) for c in cands}
        cands = {c for c in cands if len(c) == 3}
        if not cands:
            return
        tree = HashTree(cands, fanout=fanout, max_leaf_size=leaf)
        txn_sorted = tuple(sorted(txn))
        assert sorted(tree.subset(txn_sorted)) == brute_subset(cands, txn_sorted)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_iteration_preserves_all_candidates(self, data):
        k = data.draw(st.integers(1, 4))
        cands = data.draw(
            st.sets(
                st.tuples(*[st.integers(0, 15)] * k).map(
                    lambda t: tuple(sorted(set(t)))
                ),
                max_size=30,
            )
        )
        cands = {c for c in cands if len(c) == k}
        if not cands:
            return
        tree = HashTree(cands, fanout=4, max_leaf_size=2)
        assert set(tree) == cands
        assert len(tree) == len(cands)

    def test_subset_of_full_transaction_returns_everything(self):
        cands = list(combinations(range(8), 3))
        tree = HashTree(cands, fanout=4, max_leaf_size=4)
        assert sorted(tree.subset(tuple(range(8)))) == cands


class TestStats:
    def test_stats_keys(self):
        tree = HashTree(list(combinations(range(10), 2)), fanout=4, max_leaf_size=3)
        stats = tree.stats()
        assert stats["candidates"] == 45
        assert stats["leaves"] >= 1
        assert stats["largest_leaf"] >= 1
        assert 0 <= stats["mean_leaf_depth"] <= stats["max_depth"]
